//! Facade crate re-exporting the EvalImpLSTS workspace.
//!
//! See [`tsdata`], [`compression`], [`neural`], [`forecast`], [`analysis`],
//! [`evalcore`] and [`serve`] for the individual subsystems, and
//! `DESIGN.md` for the system inventory.
pub use analysis;
pub use compression;
pub use evalcore;
pub use forecast;
pub use neural;
pub use serve;
pub use tsdata;
