//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the workspace vendors the small slice of `rand`'s API it
//! actually uses: a seedable deterministic generator ([`rngs::StdRng`]),
//! uniform sampling via [`RngExt::random`], and Fisher–Yates shuffling via
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded through
//! SplitMix64 — high-quality, fast, and stable across runs, which the
//! seeded-training determinism tests rely on.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `state` via
    /// SplitMix64 (distinct seeds give statistically independent streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire's
    /// rejection method).
    fn random_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty sampling range");
        let bound = bound as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias of [`RngExt`] so `use rand::Rng` keeps working.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{RngCore, RngExt};

    /// In-place random reordering and choice for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_below(i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_below(self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let trues = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((trues as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn random_below_is_in_range_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.random_below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice untouched");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
