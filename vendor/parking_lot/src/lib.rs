//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock — a panic while holding the guard — is recovered rather than
//! propagated, matching `parking_lot`'s behavior of not poisoning at all.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
