//! Offline stand-in for `criterion`.
//!
//! Provides the benchmark-harness API surface this workspace uses
//! (`criterion_group!` / `criterion_main!`, groups, `Bencher::iter`,
//! throughput annotation, `black_box`) over a simple wall-clock
//! measurement loop: each benchmark is warmed up, calibrated to a batch
//! size large enough to dwarf timer overhead, then sampled repeatedly.
//! Results are printed as a table and can be exported as JSON via
//! [`Criterion::save_json`] for committing summaries alongside the code.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units-of-work annotation attached to measurements so rates can be
/// reported alongside raw times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name, empty for ungrouped benchmarks.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed sample mean, nanoseconds.
    pub min_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
    /// Optional units-of-work annotation.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    fn label(&self) -> String {
        if self.group.is_empty() {
            self.id.clone()
        } else {
            format!("{}/{}", self.group, self.id)
        }
    }

    fn rate(&self) -> Option<String> {
        let per_iter = match self.throughput? {
            Throughput::Bytes(b) => {
                return Some(format!(
                    "{:.1} MiB/s",
                    b as f64 / self.mean_ns * 1e9 / (1024.0 * 1024.0)
                ))
            }
            Throughput::Elements(e) => e as f64,
        };
        Some(format!("{:.3} Melem/s", per_iter / self.mean_ns * 1e9 / 1e6))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Measurement state handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<(f64, f64, u64)>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics. The routine's
    /// return value is passed through [`black_box`] so its computation
    /// cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: time single calls until we know roughly
        // how expensive one iteration is.
        let calib_start = Instant::now();
        black_box(routine());
        let mut one = calib_start.elapsed();
        if one < Duration::from_micros(1) {
            // Too fast to time alone; batch 1000 calls for the estimate.
            let start = Instant::now();
            for _ in 0..1000 {
                black_box(routine());
            }
            one = start.elapsed() / 1000;
        }
        let one_ns = one.as_nanos().max(1) as u64;

        // Batch size targeting ~2 ms per sample, samples capped so a
        // single benchmark stays near ~200 ms total wall clock.
        let batch = (2_000_000 / one_ns).clamp(1, 1_000_000);
        let budget_ns: u64 = 200_000_000;
        let est_sample_ns = batch * one_ns;
        let max_samples = (budget_ns / est_sample_ns.max(1)).clamp(3, 50) as usize;
        let samples = self.sample_size.clamp(3, max_samples);

        let mut total_ns = 0u64;
        let mut min_sample = f64::INFINITY;
        let mut iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            total_ns += elapsed;
            iters += batch;
            let per_iter = elapsed as f64 / batch as f64;
            if per_iter < min_sample {
                min_sample = per_iter;
            }
        }
        self.result = Some((total_ns as f64 / iters as f64, min_sample, iters));
    }
}

/// Top-level benchmark harness; collects every measurement it runs.
pub struct Criterion {
    sample_size: usize,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, records: Vec::new() }
    }
}

impl Criterion {
    /// Sets the default number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 3, "sample_size must be at least 3");
        self.sample_size = n;
        self
    }

    /// Runs a standalone (ungrouped) benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(String::new(), id.to_string(), None, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    /// All measurements recorded so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Serializes every recorded measurement as a JSON array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            let (tp_kind, tp_value) = match r.throughput {
                Some(Throughput::Bytes(b)) => ("\"bytes\"", b as i64),
                Some(Throughput::Elements(e)) => ("\"elements\"", e as i64),
                None => ("null", -1),
            };
            let _ = writeln!(
                out,
                "  {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"iters\": {}, \"throughput_kind\": {}, \"throughput_per_iter\": {}}}{}",
                escape(&r.group),
                escape(&r.id),
                r.mean_ns,
                r.min_ns,
                r.iters,
                tp_kind,
                tp_value,
                sep,
            );
        }
        out.push_str("]\n");
        out
    }

    /// Writes [`Criterion::to_json`] to `path`.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: String,
        id: String,
        sample_size: Option<usize>,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher =
            Bencher { sample_size: sample_size.unwrap_or(self.sample_size), result: None };
        f(&mut bencher);
        let (mean_ns, min_ns, iters) =
            bencher.result.expect("benchmark closure must call Bencher::iter");
        let record = BenchRecord { group, id, mean_ns, min_ns, iters, throughput };
        let rate = record.rate().map(|r| format!("  ({r})")).unwrap_or_default();
        println!(
            "bench {:<48} {:>12}/iter  (min {:>12}, {} iters){}",
            record.label(),
            fmt_ns(record.mean_ns),
            fmt_ns(record.min_ns),
            record.iters,
            rate,
        );
        self.records.push(record);
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 3, "sample_size must be at least 3");
        self.sample_size = Some(n);
        self
    }

    /// Annotates subsequent benchmarks with units of work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.criterion.run_one(self.name.clone(), id.id, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input handed to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; groups have no teardown).
    pub fn finish(self) {}
}

/// Declares a benchmark group runner: a function invoking each target
/// with a shared [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_json() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3).throughput(Throughput::Elements(64));
            g.bench_function(BenchmarkId::from_parameter(64), |b| {
                b.iter(|| (0..64u64).map(black_box).sum::<u64>())
            });
            g.finish();
        }
        c.bench_function("plain", |b| b.iter(|| black_box(2u64).pow(10)));
        assert_eq!(c.records().len(), 2);
        assert!(c.records()[0].mean_ns > 0.0);
        assert!(c.records()[0].iters > 0);
        let json = c.to_json();
        assert!(json.contains("\"group\": \"demo\""));
        assert!(json.contains("\"id\": \"plain\""));
        assert!(json.contains("\"throughput_per_iter\": 64"));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("matmul", 128).id, "matmul/128");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
