//! Offline stand-in for `crossbeam`'s scoped threads and bounded
//! channels.
//!
//! Implements `crossbeam::scope` on top of `std::thread::scope` (stable
//! since Rust 1.63). The shim preserves crossbeam's two API differences
//! from std: spawn closures receive the scope as an argument (so nested
//! spawns are possible), and `scope` returns a `Result` that captures
//! worker panics instead of propagating them. The [`channel`] module
//! provides the bounded MPMC channel slice of `crossbeam-channel` that
//! the serving front end's scheduler queues are built on.

pub mod channel;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A scope handle passed to [`scope`]'s closure and to every spawned
/// worker.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (`Err` holds
    /// the panic payload if the worker panicked).
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker inside the scope. The closure receives the scope,
    /// mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
    }
}

/// Creates a scope in which threads can borrow from the enclosing stack
/// frame. All spawned threads are joined before `scope` returns. Returns
/// `Err` with the first panic payload if the closure or any
/// not-explicitly-joined worker panicked.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| thread::scope(|s| f(&Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_returns_worker_value() {
        let out = scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().expect("worker ok")
        })
        .expect("no panics");
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let res = scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(res.is_err());
    }
}
