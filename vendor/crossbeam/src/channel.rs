//! Offline stand-in for `crossbeam-channel`'s bounded MPMC channel.
//!
//! Implements the API slice the workspace uses — [`bounded`] with
//! blocking [`Sender::send`]/[`Receiver::recv`], non-blocking
//! [`Sender::try_send`], and deadline-aware [`Receiver::recv_timeout`] —
//! on a mutex-protected ring with two condvars. Like the real crate,
//! both ends are cloneable, capacity counts buffered messages, and an
//! operation fails with a `Disconnected` error once every handle on the
//! other side has been dropped.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error from [`Sender::send`]: every receiver has been dropped. The
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error from [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The buffer is at capacity; the message is handed back.
    Full(T),
    /// Every receiver has been dropped; the message is handed back.
    Disconnected(T),
}

/// Error from [`Receiver::recv`]: the buffer is empty and every sender
/// has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error from [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The buffer is currently empty.
    Empty,
    /// The buffer is empty and every sender has been dropped.
    Disconnected,
}

/// Error from [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The buffer is empty and every sender has been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    cap: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a bounded channel with room for `cap` buffered messages.
/// `cap` must be at least 1 (the rendezvous channel of the real crate is
/// not implemented — nothing in the workspace uses it).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "bounded channel capacity must be at least 1");
    let inner = Arc::new(Inner {
        cap,
        state: Mutex::new(State { queue: VecDeque::with_capacity(cap), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

/// The sending half; cloneable for multi-producer use.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; cloneable for multi-consumer use.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Blocks until the message is buffered, or fails when every
    /// receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.inner.cap {
                state.queue.push_back(msg);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).unwrap();
        }
    }

    /// Buffers the message if there is room right now — the admission-
    /// control primitive: a full buffer reports `Full` instead of
    /// blocking the caller.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.queue.len() >= self.inner.cap {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's fixed buffer capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or fails when the buffer is empty
    /// and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).unwrap();
        }
    }

    /// Pops a message if one is buffered right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocks until a message arrives or `timeout` elapses — the batching
    /// scheduler's bounded-wait primitive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, result) = self.inner.not_empty.wait_timeout(state, deadline - now).unwrap();
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's fixed buffer capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            drop(state);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn capacity_is_reported_on_both_ends() {
        let (tx, rx) = bounded::<u8>(3);
        assert_eq!(tx.capacity(), 3);
        assert_eq!(rx.capacity(), 3);
    }

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!((0..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full_then_recovers() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn drop_of_all_senders_disconnects() {
        let (tx, rx) = bounded(2);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn drop_of_all_receivers_disconnects() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        assert_eq!(tx.try_send(5), Err(TrySendError::Disconnected(5)));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn multi_producer_multi_consumer_drains_everything() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
        assert_eq!(total, 200);
    }
}
