//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest's API this workspace uses: the
//! [`Strategy`] trait over ranges / tuples / `Just` / [`collection::vec`] /
//! [`any`], weighted unions via [`prop_oneof!`], and the [`proptest!`]
//! macro with `prop_assert!`-style failure reporting. Inputs are sampled
//! from a deterministic per-test stream (seeded from the test's module
//! path), so failures reproduce across runs. Unlike real proptest there is
//! no shrinking: a failing case reports the exact inputs instead.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a test case.
pub type TestRng = StdRng;

/// Error returned by `prop_assert!` / `prop_assert_eq!` on failure.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic RNG for one test case. Public for the
/// [`proptest!`] macro expansion, not intended for direct use.
#[doc(hidden)]
pub fn case_rng(test_path: &str, case: u32) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (used by weighted unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let u: f32 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + rng.random_below(span as usize) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty inclusive range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                self.start() + rng.random_below(span as usize) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.random_below(span as usize) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty inclusive range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.random_below(span as usize) as i128) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

// `u64` spans can exceed `random_below`'s usize bound on 32-bit targets,
// but this workspace only targets 64-bit; keep the same shape.
int_range_strategy!(u64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for f64 {
    /// Finite, sign-symmetric, spanning many magnitudes (no NaN/inf:
    /// the numeric code under test treats those as input errors).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = 10f64.powf((-12.0..15.0f64).sample(rng));
        if rng.random::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

/// Weighted choice between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.random_below(total as usize) as u64;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    //! Strategies for collections.

    use std::ops::Range;

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`fn@vec`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element
    /// strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.random_below(span.max(1));
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, via one glob import.

    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced re-exports matching `proptest::prop::*` usage.
        pub use crate::collection;
    }
}

/// Fails the enclosing property if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} ({})",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+),
            )));
        }
    };
}

/// Fails the enclosing property if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?} == {:?}` ({})",
                left,
                right,
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                left,
                right,
            )));
        }
    }};
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `cases` random inputs
/// (from the optional `#![proptest_config(...)]` header, default 64).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __path = ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(__path, __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = ::std::format!(
                    ::std::concat!($("  ", ::std::stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    ::std::panic!(
                        "property {} failed on case {}/{}: {}\ninputs:\n{}",
                        __path,
                        __case + 1,
                        __config.cases,
                        __err,
                        __inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::case_rng("ranges", 0);
        for _ in 0..1_000 {
            let f = (-2.0..3.0f64).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (5..9usize).sample(&mut rng);
            assert!((5..9).contains(&u));
            let i = (-7i64..-3).sample(&mut rng);
            assert!((-7..-3).contains(&i));
            let b = (1..=64u8).sample(&mut rng);
            assert!((1..=64).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::case_rng("vec", 0);
        let strat = prop::collection::vec(0.0..1.0f64, 2..10);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = crate::case_rng("oneof", 0);
        let strat = prop_oneof![
            3 => Just(1u32),
            1 => Just(2u32),
        ];
        let mut ones = 0usize;
        for _ in 0..10_000 {
            if strat.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn cases_are_deterministic_per_test() {
        let a = crate::case_rng("t", 3);
        let b = crate::case_rng("t", 3);
        let c = crate::case_rng("t", 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_checks(x in prop::collection::vec(-1.0..1.0f64, 1..20), k in 0..5usize) {
            prop_assert!(!x.is_empty());
            prop_assert!(k < 5, "k = {k}");
            let doubled: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
            prop_assert_eq!(doubled.len(), x.len());
        }

        #[test]
        fn tuples_and_any(pair in (any::<u64>(), 1..=64u8)) {
            prop_assert!(pair.1 >= 1 && pair.1 <= 64);
        }
    }
}
