//! The paper's §5 research directions, implemented: train a TFE-predictor
//! and let it *recommend* a compression configuration under an accuracy
//! budget (CompressionAdvisor), watch a decompressed stream for
//! characteristic drift (CharacteristicsMonitor), and combine an accurate
//! model with a resilient one (Ensemble).
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use evalimplsts::analysis::features::FeatureOptions;
use evalimplsts::analysis::monitor::{CharacteristicsMonitor, MonitorConfig};
use evalimplsts::compression::Method;
use evalimplsts::evalcore::advisor::CompressionAdvisor;
use evalimplsts::evalcore::experiments::{characteristics_exp, forecasting_exp};
use evalimplsts::evalcore::grid::GridConfig;
use evalimplsts::forecast::ensemble::{Combine, Ensemble};
use evalimplsts::forecast::model::{Forecaster, ModelKind};
use evalimplsts::forecast::{build_model, BuildOptions};
use evalimplsts::tsdata::datasets::{generate, generate_univariate, DatasetKind, GenOptions};
use evalimplsts::tsdata::split::{split, SplitSpec};

fn main() {
    // ------------------------------------------------------------------
    // 1. CompressionAdvisor: learn TFE from a small evaluation grid, then
    //    recommend (method, eps) for a NEW series under a 5% TFE budget.
    // ------------------------------------------------------------------
    println!("== 1. Compression advisor (paper §5: impact prediction) ==");
    let mut cfg = GridConfig::smoke();
    cfg.len = Some(2_000);
    cfg.error_bounds = vec![0.01, 0.05, 0.1, 0.2, 0.4];
    cfg.models = vec![ModelKind::GBoost];
    eprintln!("training the TFE predictor on a smoke-scale grid...");
    let grid = forecasting_exp::run(&cfg);
    let chars = characteristics_exp::run(&grid);
    let features = FeatureOptions { period: Some(96), shift_window: 48, cap: Some(4_000) };
    let advisor = CompressionAdvisor::train(&chars, features).expect("enough grid rows");

    let new_series = generate_univariate(
        DatasetKind::ETTm2,
        GenOptions { len: Some(2_000), channels: None, seed: 999 },
    );
    for budget in [0.02, 0.05, 0.15] {
        match advisor
            .recommend(&new_series, &cfg.methods, &cfg.error_bounds, budget)
            .expect("advisor runs")
        {
            Some(rec) => println!(
                "  TFE budget {:>4.0}% -> {} @ eps {} (predicted TFE {:+.2}%, CR {:.1})",
                budget * 100.0,
                rec.method.name(),
                rec.epsilon,
                rec.predicted_tfe * 100.0,
                rec.cr
            ),
            None => println!("  TFE budget {:>4.0}% -> no configuration fits", budget * 100.0),
        }
    }

    // ------------------------------------------------------------------
    // 2. CharacteristicsMonitor: §4.3.3 thresholds on a live stream.
    // ------------------------------------------------------------------
    println!("\n== 2. Characteristics monitor (paper §4.3.3 guidance) ==");
    let monitor =
        CharacteristicsMonitor::new(new_series.values(), MonitorConfig::paper_defaults(features));
    for (label, eps) in [("mild", 0.05), ("aggressive", 0.8)] {
        let (decompressed, _) =
            Method::Pmc.compressor().transform(&new_series, eps).expect("compresses");
        let alerts = monitor.check(decompressed.values());
        println!("  PMC @ {eps} ({label}): {} alert(s)", alerts.len());
        for a in alerts.iter().take(3) {
            println!(
                "    [{:?}] {} deviated {:.1}% (threshold {:.0}%)",
                a.severity, a.characteristic, a.deviation_pct, a.threshold_pct
            );
        }
    }

    // ------------------------------------------------------------------
    // 3. Ensemble: accurate + resilient members (paper §5).
    // ------------------------------------------------------------------
    println!("\n== 3. Accurate+resilient ensemble (paper §5) ==");
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(4_000));
    let s = split(&data, SplitSpec::default()).expect("splits");
    let opts = BuildOptions { input_len: 96, horizon: 24, season: Some(96), ..Default::default() };
    let mut ensemble = Ensemble::new(
        vec![build_model(ModelKind::NBeats, opts), build_model(ModelKind::Arima, opts)],
        Combine::InverseValidationError,
    );
    ensemble.fit(&s.train, &s.val).expect("fits");
    println!(
        "  learned weights: NBeats {:.2}, Arima {:.2}",
        ensemble.weights()[0],
        ensemble.weights()[1]
    );
    let window = s.test.target().values()[..96].to_vec();
    let pred = ensemble.predict(&[window]).expect("predicts");
    println!(
        "  24-step forecast head: {:?}",
        &pred[..4].iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
}
