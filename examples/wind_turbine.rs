//! The paper's §1 motivating scenario, end to end: a wind turbine
//! compresses its 2-second active-power stream before sending it to the
//! cloud; operators forecast from the decompressed stream and must pick a
//! compression method and error bound that do not wreck accuracy.
//!
//! This example sweeps error bounds for each method, reports the
//! bandwidth saved vs the forecasting accuracy lost, and applies the
//! paper's elbow analysis to recommend an operating point.
//!
//! ```text
//! cargo run --release --example wind_turbine
//! ```

use evalimplsts::analysis::kneedle::{kneedle, Shape};
use evalimplsts::compression::{all_lossy, raw_compressed_size};
use evalimplsts::evalcore::scenario::evaluate_scenario;
use evalimplsts::forecast::{build_model, BuildOptions, ModelKind};
use evalimplsts::tsdata::datasets::{generate, DatasetKind, GenOptions};
use evalimplsts::tsdata::metrics::{compression_ratio, nrmse, tfe};
use evalimplsts::tsdata::split::{split, SplitSpec};

fn main() {
    // 10 days of 2-second sensor data in the paper; a slice here.
    let data = generate(
        DatasetKind::Wind,
        GenOptions { len: Some(12_000), channels: Some(1), seed: 0x5EED },
    );
    let target = data.target();
    let raw_gz = raw_compressed_size(target);
    println!(
        "wind turbine: {} samples at 2s ({} hours), raw gzipped size {} KiB",
        target.len(),
        target.len() * 2 / 3600,
        raw_gz / 1024
    );

    // Train the operators' model once on raw history (Algorithm 1).
    let s = split(&data, SplitSpec::default()).expect("enough data to split");
    let mut model = build_model(
        ModelKind::GBoost,
        BuildOptions { input_len: 96, horizon: 24, ..Default::default() },
    );
    let error_bounds = [0.01, 0.05, 0.1, 0.2, 0.4];
    let outcome = evaluate_scenario(
        model.as_mut(),
        &s.train,
        &s.val,
        &s.test,
        &all_lossy(),
        &error_bounds,
        16,
        64,
    )
    .expect("scenario runs");
    println!("forecaster: {} | baseline RMSE {:.4}\n", model.name(), outcome.baseline.rmse);

    println!("{:<6} {:>5} {:>9} {:>11} {:>9}", "method", "eps", "CR", "TE(NRMSE)", "TFE");
    for compressor in all_lossy() {
        let mut tes = Vec::new();
        let mut tfes = Vec::new();
        for &eps in &error_bounds {
            let (d, frame) = compressor.transform(target, eps).expect("turbine data compresses");
            let te = nrmse(target.values(), d.values());
            let metrics = outcome
                .transformed
                .iter()
                .find(|(m, e, _)| *m == compressor.name() && (*e - eps).abs() < 1e-9)
                .map(|(_, _, metrics)| *metrics)
                .expect("evaluated above");
            let t = tfe(outcome.baseline.rmse, metrics.rmse);
            println!(
                "{:<6} {:>5} {:>9.2} {:>11.4} {:>8.2}%",
                compressor.name(),
                eps,
                compression_ratio(raw_gz, frame.size_bytes()),
                te,
                100.0 * t,
            );
            tes.push(te);
            tfes.push(t);
        }
        // Elbow: the TE past which accuracy degrades quickly (§4.3.2).
        match kneedle(&tes, &tfes, Shape::ConvexIncreasing, 1.0) {
            Some(k) => println!(
                "  -> recommended operating point for {}: eps = {} (elbow at TE {:.4})\n",
                compressor.name(),
                error_bounds[k],
                tes[k]
            ),
            None => println!("  -> no clear elbow for {}\n", compressor.name()),
        }
    }
}
