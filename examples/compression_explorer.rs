//! Compression deep-dive: how the three PEBLC methods trade error bound,
//! transformation error, compression ratio and segment structure on every
//! dataset — the RQ1 experiments as a library-usage example, including the
//! Table-3 regression and the Gorilla/gzip baselines.
//!
//! ```text
//! cargo run --release --example compression_explorer
//! ```

use evalimplsts::analysis::regress::linear_fit;
use evalimplsts::compression::{
    raw_bytes, raw_compressed_size, Gorilla, PeblcCompressor, ALL_METHODS,
};
use evalimplsts::tsdata::datasets::{generate_univariate, GenOptions, ALL_DATASETS};
use evalimplsts::tsdata::metrics::{compression_ratio, nrmse};

fn main() {
    let error_bounds = [0.01, 0.05, 0.1, 0.2, 0.4, 0.8];
    for dataset in ALL_DATASETS {
        let series = generate_univariate(dataset, GenOptions::with_len(6_000));
        let stats = dataset.paper_stats();
        let raw = raw_bytes(&series).len();
        let raw_gz = raw_compressed_size(&series);
        let gorilla = Gorilla.compress(&series, 0.0).expect("gorilla is total");
        println!(
            "\n=== {} (rIQD {:.0}%) — raw {} KiB, gzip {:.2}x, GORILLA {:.2}x (vs raw) ===",
            stats.name,
            stats.riqd,
            raw / 1024,
            raw as f64 / raw_gz as f64,
            compression_ratio(raw, gorilla.size_bytes()),
        );
        println!("{:<6} {:>5} {:>9} {:>11} {:>9}", "method", "eps", "CR", "TE(NRMSE)", "segments");
        for method in ALL_METHODS {
            let compressor = method.compressor();
            let mut tes = Vec::new();
            let mut crs = Vec::new();
            for &eps in &error_bounds {
                let (decompressed, frame) =
                    compressor.transform(&series, eps).expect("compresses cleanly");
                let te = nrmse(series.values(), decompressed.values());
                let cr = compression_ratio(raw_gz, frame.size_bytes());
                println!(
                    "{:<6} {:>5} {:>9.2} {:>11.4} {:>9}",
                    method.name(),
                    eps,
                    cr,
                    te,
                    frame.num_segments
                );
                tes.push(te);
                crs.push(cr);
            }
            // Table-3 style regression: expected CR gain per unit of TE.
            if let Ok(fit) = linear_fit(&tes, &crs) {
                println!(
                    "   CR = {:.1}*TE + {:.2}  (SE {:.1}/{:.2}, R2 {:.2}) -> +{:.2}x CR per 0.01 TE",
                    fit.slope,
                    fit.intercept,
                    fit.se_slope,
                    fit.se_intercept,
                    fit.r2,
                    fit.slope * 0.01
                );
            }
        }
    }
    println!(
        "\nReading guide: SZ leads at small eps; PMC's constant segments gain the most \
         from the final DEFLATE pass as eps grows; Swing pays for its two coefficients \
         per segment (paper §4.2). Weather's tiny rIQD produces the CR anomaly."
    );
}
