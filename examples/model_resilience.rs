//! RQ3 as an example: which forecasting models tolerate lossy compression
//! best? Trains a simple model (Arima) and a deep model (NBeats) on the
//! same dataset, sweeps error bounds, and compares their TFE curves —
//! reproducing the paper's finding that trend-oriented simple models are
//! more resilient than models that exploit short-term fluctuations.
//!
//! Also demonstrates the characteristics toolkit: the max KL shift of the
//! decompressed series (the paper's top TFE predictor) printed next to
//! each TFE so the correlation is visible directly.
//!
//! ```text
//! cargo run --release --example model_resilience
//! ```

use evalimplsts::analysis::features::{extract, FeatureOptions};
use evalimplsts::compression::{all_lossy, Method};
use evalimplsts::evalcore::scenario::evaluate_scenario;
use evalimplsts::forecast::{build_model, BuildOptions, ModelKind};
use evalimplsts::tsdata::datasets::{generate, DatasetKind, GenOptions};
use evalimplsts::tsdata::metrics::tfe;
use evalimplsts::tsdata::split::{split, SplitSpec};

fn main() {
    let dataset = DatasetKind::ETTm2;
    let data = generate(dataset, GenOptions::with_len(6_000));
    let s = split(&data, SplitSpec::default()).expect("splits 70/10/20");
    let error_bounds = [0.05, 0.1, 0.2, 0.4];
    let season = dataset.samples_per_day() as usize;

    // Characteristics of the decompressed test data (PMC), per error bound.
    let opts = FeatureOptions { period: Some(season), shift_window: 48, cap: Some(4_000) };
    let original = extract(s.test.target().values(), opts);

    println!("dataset: {} | models: Arima vs NBeats | methods averaged\n", dataset.name());
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>14}",
        "model", "eps", "TFE(Arima)", "TFE(NBeats)", "d(max_kl_shift)"
    );

    let mut results: Vec<(ModelKind, Vec<f64>)> = Vec::new();
    for kind in [ModelKind::Arima, ModelKind::NBeats] {
        let mut model =
            build_model(kind, BuildOptions { season: Some(season), ..Default::default() });
        let outcome = evaluate_scenario(
            model.as_mut(),
            &s.train,
            &s.val,
            &s.test,
            &all_lossy(),
            &error_bounds,
            16,
            64,
        )
        .expect("scenario runs");
        // Mean TFE across the three methods per error bound.
        let tfes: Vec<f64> = error_bounds
            .iter()
            .map(|&eps| {
                let vals: Vec<f64> = outcome
                    .transformed
                    .iter()
                    .filter(|(_, e, _)| (*e - eps).abs() < 1e-9)
                    .map(|(_, _, m)| tfe(outcome.baseline.rmse, m.rmse))
                    .collect();
                vals.iter().sum::<f64>() / vals.len() as f64
            })
            .collect();
        results.push((kind, tfes));
    }

    let pmc = Method::Pmc.compressor();
    for (i, &eps) in error_bounds.iter().enumerate() {
        let (d, _) = pmc.transform(s.test.target(), eps).expect("compresses");
        let transformed = extract(d.values(), opts);
        let kl_diff = (transformed.get("max_kl_shift") - original.get("max_kl_shift")).abs();
        println!(
            "{:<8} {:>6} {:>11.2}% {:>11.2}% {:>14.3}",
            "",
            eps,
            100.0 * results[0].1[i],
            100.0 * results[1].1[i],
            kl_diff,
        );
    }

    let arima_mean: f64 = results[0].1.iter().sum::<f64>() / results[0].1.len() as f64;
    let nbeats_mean: f64 = results[1].1.iter().sum::<f64>() / results[1].1.len() as f64;
    println!(
        "\nmean TFE — Arima: {:+.2}%, NBeats: {:+.2}%",
        100.0 * arima_mean,
        100.0 * nbeats_mean
    );
    println!(
        "{}",
        if arima_mean <= nbeats_mean {
            "-> the simple, trend-oriented model is more resilient (paper RQ3.2)."
        } else {
            "-> on this run the deep model was more resilient; the paper finds this \
             varies per dataset (Table 7), with Arima leading overall."
        }
    );
}
