//! Quickstart: compress a time series with each lossy method, check the
//! error bound, train a forecaster, and measure the impact of compression
//! on its accuracy (the paper's TFE).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evalimplsts::compression::{all_lossy, find_bound_violation, raw_compressed_size};
use evalimplsts::evalcore::scenario::{evaluate_scenario, transform_series};
use evalimplsts::evalcore::{decode_state, encode_state};
use evalimplsts::forecast::{build_model, BuildOptions, ModelKind};
use evalimplsts::tsdata::datasets::{generate, DatasetKind, GenOptions};
use evalimplsts::tsdata::metrics::{compression_ratio, nrmse, tfe};
use evalimplsts::tsdata::split::{split, SplitSpec};

fn main() {
    // 1. A dataset: the synthetic ETTm1 recreation (8k points for speed).
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(8_000));
    let target = data.target();
    println!("dataset: ETTm1, {} points, target '{}'", data.len(), data.names()[0]);

    // 2. Compress the target channel with each method at ε = 0.1.
    let epsilon = 0.1;
    let raw = raw_compressed_size(target);
    println!("\nlossy compression at relative error bound {epsilon}:");
    for compressor in all_lossy() {
        let (decompressed, frame) =
            compressor.transform(target, epsilon).expect("generated data compresses cleanly");
        assert!(
            find_bound_violation(target.values(), decompressed.values(), epsilon, 1e-9).is_none(),
            "PEBLC guarantee must hold"
        );
        println!(
            "  {:<6} CR = {:>6.2}   TE(NRMSE) = {:.4}   segments = {}",
            compressor.name(),
            compression_ratio(raw, frame.size_bytes()),
            nrmse(target.values(), decompressed.values()),
            frame.num_segments,
        );
    }

    // 3. Train a forecaster on the raw training subset and evaluate it on
    //    raw and lossy-transformed test data (Algorithm 1).
    let s = split(&data, SplitSpec::default()).expect("dataset splits 70/10/20");
    let mut model = build_model(ModelKind::GBoost, BuildOptions::default());
    println!("\ntraining {} (input 96 -> horizon 24)...", model.name());
    let outcome = evaluate_scenario(
        model.as_mut(),
        &s.train,
        &s.val,
        &s.test,
        &all_lossy(),
        &[0.05, 0.2],
        8,
        64,
    )
    .expect("scenario runs");
    println!("baseline RMSE (scaled): {:.4}", outcome.baseline.rmse);
    println!("\nimpact of lossy compression on forecasting (TFE, Eq. 2):");
    for (method, eps, metrics) in &outcome.transformed {
        println!(
            "  {:<6} eps = {:<4} RMSE = {:.4}  TFE = {:>+.2}%",
            method,
            eps,
            metrics.rmse,
            100.0 * tfe(outcome.baseline.rmse, metrics.rmse),
        );
    }

    // 4. The transformation itself is reusable: here is the decompressed
    //    test subset a downstream system would see.
    let transformed =
        transform_series(&s.test, all_lossy()[0].as_ref(), 0.2).expect("transformation succeeds");
    println!(
        "\nfirst 5 raw vs decompressed test values (PMC @ 0.2):\n  raw: {:?}\n  dec: {:?}",
        &s.test.target().values()[..5],
        &transformed.target().values()[..5],
    );

    // 5. Checkpointing: the fitted model serializes to the versioned
    //    artifact format, and a fresh model reloaded from those bytes
    //    predicts bit-identically (this is what `repro --artifacts`
    //    relies on to resume a killed run without refitting).
    let bytes = encode_state(&model.save_state().expect("fitted model exports state"))
        .expect("state encodes");
    let path = std::env::temp_dir().join("quickstart-gboost.state");
    std::fs::write(&path, &bytes).expect("artifact writes");
    println!("\nsaved fitted {} state: {} bytes -> {}", model.name(), bytes.len(), path.display());

    let restored = decode_state(&std::fs::read(&path).expect("artifact reads back"))
        .expect("artifact decodes");
    let mut reloaded = build_model(ModelKind::GBoost, BuildOptions::default());
    reloaded.load_state(&restored).expect("state loads into an identically built model");
    let window = vec![s.test.target().values()[..96].to_vec()];
    let before = model.predict(&window).expect("original predicts");
    let after = reloaded.predict(&window).expect("reloaded predicts");
    assert_eq!(before, after, "reloaded model must predict bit-identically");
    println!("reloaded model predicts bit-identically (first value {:.4})", after[0]);
    let _ = std::fs::remove_file(&path);
}
