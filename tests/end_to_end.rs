//! End-to-end integration: the full Algorithm-1 pipeline over real crates
//! boundaries — generated dataset → split → model fit → compression →
//! TFE — plus the analysis toolchain on the outputs.

use evalimplsts::analysis::features::{extract, FeatureOptions};
use evalimplsts::analysis::kneedle::{kneedle, Shape};
use evalimplsts::compression::{all_lossy, Method, PeblcCompressor};
use evalimplsts::evalcore::grid::GridConfig;
use evalimplsts::evalcore::scenario::evaluate_scenario;
use evalimplsts::evalcore::{run_compression_grid, run_forecast_grid};
use evalimplsts::forecast::{build_model, BuildOptions, ModelKind};
use evalimplsts::tsdata::datasets::{generate, DatasetKind, GenOptions};
use evalimplsts::tsdata::metrics::tfe;
use evalimplsts::tsdata::split::{split, SplitSpec};

fn smoke_config() -> GridConfig {
    let mut cfg = GridConfig::smoke();
    cfg.len = Some(1_500);
    cfg.error_bounds = vec![0.05, 0.3];
    cfg.models = vec![ModelKind::GBoost];
    cfg
}

#[test]
fn algorithm1_produces_low_tfe_at_small_bounds() {
    let data = generate(DatasetKind::ETTm2, GenOptions::with_len(3_000));
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut model = build_model(
        ModelKind::DLinear,
        BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
    );
    let outcome =
        evaluate_scenario(model.as_mut(), &s.train, &s.val, &s.test, &all_lossy(), &[0.01], 8, 64)
            .expect("scenario runs");
    // RQ2: tiny error bounds barely affect forecasting accuracy.
    for (method, _, metrics) in &outcome.transformed {
        let t = tfe(outcome.baseline.rmse, metrics.rmse);
        assert!(t.abs() < 0.15, "{method} @ 0.01 has TFE {t}");
    }
}

#[test]
fn grids_agree_on_dimensions() {
    let cfg = smoke_config();
    let comp = run_compression_grid(&cfg);
    assert_eq!(comp.len(), cfg.methods.len() * cfg.error_bounds.len());
    let fore = run_forecast_grid(&cfg);
    // 1 model x 1 seed x (1 baseline + methods x eps records)
    assert_eq!(fore.len(), 1 + cfg.methods.len() * cfg.error_bounds.len());
}

#[test]
fn features_distinguish_raw_from_heavily_compressed() {
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(3_000));
    let target = data.target();
    let opts = FeatureOptions { period: Some(96), shift_window: 48, cap: None };
    let original = extract(target.values(), opts);
    let pmc = Method::Pmc.compressor();
    let (heavy, _) = pmc.transform(target, 0.8).expect("compresses");
    let compressed = extract(heavy.values(), opts);
    // Heavy PMC averaging flattens the series: fewer crossings, more flat
    // spots, lower variance.
    assert!(compressed.get("flat_spots") > original.get("flat_spots"));
    assert!(compressed.get("var") < original.get("var"));
}

#[test]
fn elbow_detection_on_real_tfe_curve() {
    // Build a genuine TFE-vs-TE curve from the pipeline and locate an
    // elbow on it.
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(2_500));
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut model = build_model(
        ModelKind::GBoost,
        BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
    );
    let bounds = [0.01, 0.05, 0.1, 0.2, 0.4, 0.8];
    let pmc: Vec<Box<dyn evalimplsts::compression::PeblcCompressor>> =
        vec![Box::new(evalimplsts::compression::Pmc)];
    let outcome =
        evaluate_scenario(model.as_mut(), &s.train, &s.val, &s.test, &pmc, &bounds, 8, 64)
            .expect("scenario runs");
    let mut tes = Vec::new();
    let mut tfes = Vec::new();
    for (i, (_, _, metrics)) in outcome.transformed.iter().enumerate() {
        let (d, _) = evalimplsts::compression::Pmc
            .transform(s.test.target(), bounds[i])
            .expect("compresses");
        tes.push(evalimplsts::tsdata::metrics::nrmse(s.test.target().values(), d.values()));
        tfes.push(tfe(outcome.baseline.rmse, metrics.rmse));
    }
    // The curve is monotone-ish in TE; kneedle should find a point.
    let k = kneedle(&tes, &tfes, Shape::ConvexIncreasing, 1.0);
    assert!(k.is_some(), "no elbow on TE {tes:?} TFE {tfes:?}");
}

#[test]
fn seed_averaging_changes_deep_but_not_simple_counts() {
    let mut cfg = smoke_config();
    cfg.models = vec![ModelKind::GBoost, ModelKind::DLinear];
    cfg.seeds_deep = 2;
    cfg.seeds_simple = 1;
    assert_eq!(cfg.seeds_for(ModelKind::GBoost).len(), 1);
    assert_eq!(cfg.seeds_for(ModelKind::DLinear).len(), 2);
    let fore = run_forecast_grid(&cfg);
    // GBoost: 1 seed x 7 records; DLinear: 2 seeds x 7 records.
    assert_eq!(fore.len(), 7 + 14);
}
