//! Property-based integration tests of the lossless substrate: DEFLATE and
//! Huffman must round-trip arbitrary byte streams, and compression must
//! actually compress the workloads this repo produces.

use evalimplsts::compression::bitstream::{BitReader, BitWriter};
use evalimplsts::compression::deflate::{compress, compressed_size, decompress};
use evalimplsts::compression::huffman::CanonicalCode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_deflate_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).expect("own output decodes"), data);
    }

    #[test]
    fn prop_deflate_roundtrip_structured(
        pattern in prop::collection::vec(any::<u8>(), 1..32),
        repeats in 1..200usize,
    ) {
        // Repetitive data: must round-trip AND shrink.
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).cloned().collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).expect("decodes"), data.clone());
        if data.len() > 512 {
            prop_assert!(c.len() < data.len(), "{} !< {}", c.len(), data.len());
        }
    }

    #[test]
    fn prop_huffman_roundtrip(
        symbols in prop::collection::vec(0..64usize, 1..2000),
    ) {
        let mut freqs = vec![0u64; 64];
        for &s in &symbols {
            freqs[s] += 1;
        }
        let code = CanonicalCode::from_freqs(&freqs).expect("nonzero freqs");
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(code.decode(&mut r).expect("valid stream"), s);
        }
    }

    #[test]
    fn prop_bitstream_roundtrip(
        chunks in prop::collection::vec((any::<u64>(), 1..=64u8), 0..100),
    ) {
        let mut w = BitWriter::new();
        for &(v, n) in &chunks {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write_bits(masked, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &chunks {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read_bits(n).expect("sized"), masked);
        }
    }
}

#[test]
fn corrupted_streams_never_panic() {
    // Bit-flip every byte of a valid stream one at a time: decompression
    // must either fail cleanly or produce some output, never panic.
    let data: Vec<u8> = (0..500u32).flat_map(|i| (i as f64).to_le_bytes()).collect();
    let c = compress(&data);
    for i in 0..c.len() {
        let mut bad = c.clone();
        bad[i] ^= 0xFF;
        let _ = decompress(&bad);
    }
}

#[test]
fn compresses_the_actual_workloads() {
    // PMC-style constant stream.
    let constants: Vec<u8> = (0..2000).flat_map(|_| 13.5f32.to_le_bytes()).collect();
    assert!(compressed_size(&constants) < constants.len() / 20);
    // Quantized sensor stream.
    let sensor: Vec<u8> = (0..2000)
        .flat_map(|i| ((((i as f64) * 0.1).sin() * 10.0).round() / 10.0).to_le_bytes())
        .collect();
    assert!(compressed_size(&sensor) < sensor.len() / 2);
}
