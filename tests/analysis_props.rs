//! Property tests on the analysis toolkit: invariances the paper's
//! statistics must satisfy regardless of input.

use evalimplsts::analysis::acf::{acf, pacf};
use evalimplsts::analysis::correlation::{ranks, spearman};
use evalimplsts::analysis::features::{extract, FeatureOptions, NUM_FEATURES};
use evalimplsts::analysis::kneedle::{kneedle, Shape};
use evalimplsts::analysis::regress::linear_fit;
use evalimplsts::analysis::rolling::{crossing_points, flat_spots, max_level_shift};
use evalimplsts::analysis::shap::{expected_value, tree_shap};
use evalimplsts::forecast::tree::{RegressionTree, TreeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn acf_and_pacf_bounded(x in prop::collection::vec(-100.0..100.0f64, 10..200)) {
        for r in acf(&x, 10) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "acf {r}");
        }
        for p in pacf(&x, 5) {
            prop_assert!(p.is_finite(), "pacf {p}");
            prop_assert!((-1.5..=1.5).contains(&p), "pacf {p} out of range");
        }
    }

    #[test]
    fn spearman_bounded_and_monotone_invariant(
        x in prop::collection::vec(-100.0..100.0f64, 3..80),
    ) {
        // Spearman against any strictly monotone transform of x is 1
        // (ties aside, which the float strategy almost never produces).
        let y: Vec<f64> = x.iter().map(|v| v.exp().min(1e300)).collect();
        let s = spearman(&x, &y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        let distinct = {
            let mut v = x.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v.windows(2).all(|w| w[0] != w[1])
        };
        if distinct {
            prop_assert!((s - 1.0).abs() < 1e-9, "monotone transform spearman {s}");
        }
    }

    #[test]
    fn ranks_are_a_permutation_mean(x in prop::collection::vec(-100.0..100.0f64, 1..60)) {
        let r = ranks(&x);
        let n = x.len() as f64;
        let sum: f64 = r.iter().sum();
        // Ranks always sum to n(n+1)/2, ties or not.
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_residual_orthogonality(
        pts in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 3..60),
    ) {
        let x: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pts.iter().map(|p| p.1).collect();
        // Degenerate all-equal x has no unique fit.
        if x.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9) {
            return Ok(());
        }
        let f = linear_fit(&x, &y).expect("non-degenerate");
        // OLS residuals sum ~ 0 and are ~orthogonal to x.
        let resid: Vec<f64> =
            x.iter().zip(&y).map(|(xi, yi)| yi - (f.intercept + f.slope * xi)).collect();
        let sum: f64 = resid.iter().sum();
        let dot: f64 = resid.iter().zip(&x).map(|(r, xi)| r * xi).sum();
        let scale = 1.0 + y.iter().map(|v| v.abs()).fold(0.0, f64::max);
        prop_assert!(sum.abs() < 1e-4 * scale * x.len() as f64, "residual sum {sum}");
        prop_assert!(dot.abs() < 1e-3 * scale * x.len() as f64 * 10.0, "residual dot {dot}");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f.r2));
    }

    #[test]
    fn kneedle_returns_valid_index(
        y in prop::collection::vec(0.0..100.0f64, 3..40),
    ) {
        let x: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
        for shape in [Shape::ConcaveIncreasing, Shape::ConvexIncreasing] {
            if let Some(k) = kneedle(&x, &y, shape, 1.0) {
                prop_assert!(k < y.len());
            }
        }
    }

    #[test]
    fn rolling_features_shift_invariant(
        x in prop::collection::vec(-50.0..50.0f64, 60..200),
        shift in -100.0..100.0f64,
    ) {
        // Level/crossing/flat-spot structure is invariant to adding a
        // constant (flat spots use value deciles, which shift with the
        // data).
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        let a = max_level_shift(&x, 10);
        let b = max_level_shift(&shifted, 10);
        prop_assert!((a.max - b.max).abs() < 1e-6, "{} vs {}", a.max, b.max);
        prop_assert_eq!(crossing_points(&x), crossing_points(&shifted));
        prop_assert_eq!(flat_spots(&x), flat_spots(&shifted));
    }

    #[test]
    fn all_42_features_finite_on_arbitrary_series(
        x in prop::collection::vec(-1e3..1e3f64, 64..300),
    ) {
        let f = extract(&x, FeatureOptions { period: Some(12), shift_window: 16, cap: None });
        prop_assert_eq!(f.values().len(), NUM_FEATURES);
        for (name, v) in evalimplsts::analysis::features::FEATURE_NAMES.iter().zip(f.values()) {
            prop_assert!(v.is_finite(), "{name} not finite: {v}");
        }
    }

    #[test]
    fn treeshap_local_accuracy_random_trees(
        data in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64, -10.0..10.0f64), 20..80),
    ) {
        let nf = 3;
        let mut features = Vec::with_capacity(data.len() * nf);
        let mut targets = Vec::with_capacity(data.len());
        for &(a, b, c) in &data {
            features.extend_from_slice(&[a, b, c]);
            targets.push(a * 0.5 + if b > 0.0 { c } else { -c });
        }
        let tree = RegressionTree::fit(
            &features,
            &targets,
            nf,
            TreeConfig { max_depth: 4, min_samples_leaf: 2 },
        );
        let sample = &features[..nf];
        let phi = tree_shap(&tree, sample);
        let e0 = expected_value(&tree, sample, &[false; 3]);
        let fx = tree.predict(sample);
        let total: f64 = phi.iter().sum();
        prop_assert!(
            (total - (fx - e0)).abs() < 1e-8,
            "local accuracy violated: {total} vs {}",
            fx - e0
        );
    }
}
