//! Contract tests every forecaster must satisfy: trainable on all
//! datasets, horizon-length finite predictions, window validation, and the
//! not-fitted error.

use evalimplsts::forecast::model::{ForecastError, ALL_MODELS};
use evalimplsts::forecast::{build_model, BuildOptions};
use evalimplsts::tsdata::datasets::{generate, DatasetKind, GenOptions};
use evalimplsts::tsdata::split::{split, SplitSpec};

fn options() -> BuildOptions {
    BuildOptions { input_len: 32, horizon: 8, season: Some(96), ..Default::default() }
}

#[test]
fn all_models_fit_and_predict_on_a_common_dataset() {
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(1_200));
    let s = split(&data, SplitSpec::default()).expect("splits");
    for kind in ALL_MODELS {
        let mut model = build_model(kind, options());
        model
            .fit(&s.train, &s.val)
            .unwrap_or_else(|e| panic!("{} failed to fit: {e}", kind.name()));
        let window = s.test.target().values()[..32].to_vec();
        let pred = model
            .predict(&[window])
            .unwrap_or_else(|e| panic!("{} failed to predict: {e}", kind.name()));
        assert_eq!(pred.len(), 8, "{} horizon", kind.name());
        assert!(
            pred.iter().all(|v| v.is_finite()),
            "{} produced non-finite forecast {pred:?}",
            kind.name()
        );
        // Forecasts should stay within a generous multiple of the data
        // range (no exploding recursions).
        let stats = DatasetKind::ETTm1.paper_stats();
        let span = stats.max - stats.min;
        assert!(
            pred.iter().all(|v| *v > stats.min - span && *v < stats.max + span),
            "{} forecast out of range: {pred:?}",
            kind.name()
        );
    }
}

#[test]
fn predict_before_fit_is_an_error_for_every_model() {
    for kind in ALL_MODELS {
        let model = build_model(kind, options());
        assert!(
            matches!(model.predict(&[vec![0.0; 32]]), Err(ForecastError::NotFitted)),
            "{} should report NotFitted",
            kind.name()
        );
    }
}

#[test]
fn wrong_window_length_is_an_error_for_every_model() {
    let data = generate(DatasetKind::ETTm2, GenOptions::with_len(1_000));
    let s = split(&data, SplitSpec::default()).expect("splits");
    for kind in ALL_MODELS {
        let mut model = build_model(kind, options());
        model.fit(&s.train, &s.val).expect("fits");
        assert!(
            matches!(model.predict(&[vec![0.0; 5]]), Err(ForecastError::BadWindow { .. })),
            "{} should reject short windows",
            kind.name()
        );
    }
}

#[test]
fn deterministic_predictions_given_seed() {
    let data = generate(DatasetKind::Weather, GenOptions::with_len(1_000));
    let s = split(&data, SplitSpec::default()).expect("splits");
    for kind in ALL_MODELS {
        let run = || {
            let mut model = build_model(kind, options());
            model.fit(&s.train, &s.val).expect("fits");
            model.predict(&[s.test.target().values()[..32].to_vec()]).expect("predicts")
        };
        assert_eq!(run(), run(), "{} not deterministic", kind.name());
    }
}
