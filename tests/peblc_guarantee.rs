//! Cross-crate integration tests: the pointwise error-bound guarantee
//! (Definition 4) must hold for every compressor on every dataset at every
//! error bound, including property-based random series.

use evalimplsts::compression::{
    all_lossy, find_bound_violation, Gorilla, PeblcCompressor, ERROR_BOUNDS,
};
use evalimplsts::tsdata::datasets::{generate_univariate, GenOptions, ALL_DATASETS};
use evalimplsts::tsdata::series::RegularTimeSeries;
use proptest::prelude::*;

#[test]
fn every_method_respects_bounds_on_every_dataset() {
    for dataset in ALL_DATASETS {
        let series = generate_univariate(dataset, GenOptions::with_len(2_500));
        for compressor in all_lossy() {
            for &eps in &[ERROR_BOUNDS[0], 0.1, ERROR_BOUNDS[12]] {
                let (decompressed, frame) =
                    compressor.transform(&series, eps).unwrap_or_else(|e| {
                        panic!("{} on {} @ {eps}: {e}", compressor.name(), dataset.name())
                    });
                assert_eq!(decompressed.len(), series.len());
                assert_eq!(decompressed.start(), series.start());
                assert_eq!(decompressed.interval(), series.interval());
                assert!(
                    find_bound_violation(series.values(), decompressed.values(), eps, 1e-9)
                        .is_none(),
                    "{} violates eps {eps} on {}",
                    compressor.name(),
                    dataset.name()
                );
                assert!(frame.num_segments >= 1);
            }
        }
    }
}

#[test]
fn gorilla_is_lossless_on_every_dataset() {
    for dataset in ALL_DATASETS {
        let series = generate_univariate(dataset, GenOptions::with_len(2_000));
        let frame = Gorilla.compress(&series, 0.0).expect("gorilla is total");
        let decompressed = Gorilla.decompress(&frame).expect("valid frame");
        let got: Vec<u64> = decompressed.values().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = series.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "gorilla not bit-exact on {}", dataset.name());
    }
}

#[test]
fn compression_is_deterministic() {
    let series = generate_univariate(ALL_DATASETS[0], GenOptions::with_len(1_000));
    for compressor in all_lossy() {
        let a = compressor.compress(&series, 0.1).expect("compresses");
        let b = compressor.compress(&series, 0.1).expect("compresses");
        assert_eq!(a.bytes, b.bytes, "{} nondeterministic", compressor.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random series of mixed signs, zeros and magnitudes: every method
    /// must round-trip within the bound.
    #[test]
    fn prop_bound_holds_on_random_series(
        values in prop::collection::vec(
            prop_oneof![
                3 => -1000.0..1000.0f64,
                1 => Just(0.0f64),
                1 => -0.001..0.001f64,
            ],
            2..300,
        ),
        eps_idx in 0..13usize,
    ) {
        let eps = ERROR_BOUNDS[eps_idx];
        let series = RegularTimeSeries::new(0, 60, values.clone()).expect("non-empty");
        for compressor in all_lossy() {
            let (decompressed, _) = compressor
                .transform(&series, eps)
                .expect("random series compresses");
            prop_assert!(
                find_bound_violation(&values, decompressed.values(), eps, 1e-9).is_none(),
                "{} violates eps {eps}",
                compressor.name()
            );
        }
    }

    /// Gorilla round-trips arbitrary finite doubles bit-exactly.
    #[test]
    fn prop_gorilla_lossless(
        values in prop::collection::vec(-1e15..1e15f64, 1..200),
    ) {
        let series = RegularTimeSeries::new(0, 1, values.clone()).expect("non-empty");
        let frame = Gorilla.compress(&series, 0.0).expect("total");
        let decompressed = Gorilla.decompress(&frame).expect("valid");
        let got: Vec<u64> = decompressed.values().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
    }
}
