//! Property tests on the data substrate: metrics identities, scaler
//! round-trips, window coverage, CSV round-trips, and statistics bounds.

use evalimplsts::tsdata::csv::{parse_multiseries, to_csv};
use evalimplsts::tsdata::metrics::{nrmse, pearson, rmse, rse, tfe};
use evalimplsts::tsdata::scaler::StandardScaler;
use evalimplsts::tsdata::series::{MultiSeries, RegularTimeSeries};
use evalimplsts::tsdata::split::make_windows;
use evalimplsts::tsdata::stats::{percentile, summarize};
use proptest::prelude::*;

fn finite_vec(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rmse_is_symmetric_and_nonnegative(x in finite_vec(1..100), shift in -10.0..10.0f64) {
        let y: Vec<f64> = x.iter().map(|v| v + shift).collect();
        let e = rmse(&x, &y);
        prop_assert!(e >= 0.0);
        prop_assert!((e - rmse(&y, &x)).abs() < 1e-9);
        // Constant shift: RMSE equals |shift|.
        prop_assert!((e - shift.abs()).abs() < 1e-6);
    }

    #[test]
    fn metrics_zero_iff_identical(x in finite_vec(2..100)) {
        prop_assert_eq!(rmse(&x, &x), 0.0);
        prop_assert_eq!(nrmse(&x, &x), 0.0);
        prop_assert_eq!(rse(&x, &x), 0.0);
    }

    #[test]
    fn pearson_in_unit_interval(x in finite_vec(2..100), y in finite_vec(2..100)) {
        let n = x.len().min(y.len());
        let r = pearson(&x[..n], &y[..n]);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r), "r = {r}");
    }

    #[test]
    fn pearson_affine_invariance(x in finite_vec(3..50), a in 0.1..10.0f64, b in -5.0..5.0f64) {
        let y: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        let r = pearson(&x, &y);
        // Unless x is constant, correlation with a positive-affine image is 1.
        let constant = x.iter().all(|&v| v == x[0]);
        if !constant {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }

    #[test]
    fn tfe_identities(base in 0.001..100.0f64, factor in 0.0..5.0f64) {
        let t = tfe(base, base * factor);
        prop_assert!((t - (factor - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn scaler_roundtrip(x in finite_vec(2..200)) {
        let sc = StandardScaler::fit_single(&x);
        let back = sc.inverse(0, &sc.transform(0, &x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn percentile_monotone(x in finite_vec(1..100), p1 in 0.0..1.0f64, p2 in 0.0..1.0f64) {
        let mut sorted = x.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(percentile(&sorted, lo) <= percentile(&sorted, hi) + 1e-12);
    }

    #[test]
    fn summary_bounds(x in finite_vec(1..200)) {
        let s = summarize(&x);
        prop_assert!(s.min <= s.q1 + 1e-12);
        prop_assert!(s.q1 <= s.q3 + 1e-12);
        prop_assert!(s.q3 <= s.max + 1e-12);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn windows_cover_and_align(n in 30..200usize, k in 2..10usize, h in 1..6usize, stride in 1..8usize) {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let data = MultiSeries::univariate(
            "x",
            RegularTimeSeries::new(0, 60, vals).expect("non-empty"),
        );
        let windows = make_windows(&data, k, h, stride);
        let expected = if n >= k + h { (n - k - h) / stride + 1 } else { 0 };
        prop_assert_eq!(windows.len(), expected);
        for w in &windows {
            // Input is contiguous and the target continues it immediately.
            prop_assert_eq!(w.inputs[0][0] as usize, w.start);
            prop_assert_eq!(w.target[0] as usize, w.start + k);
            prop_assert_eq!(w.inputs[0].len(), k);
            prop_assert_eq!(w.target.len(), h);
        }
    }

    #[test]
    fn csv_roundtrip(vals in prop::collection::vec(-1e4..1e4f64, 2..60), interval in 1i64..3600) {
        let series = RegularTimeSeries::new(1000, interval, vals.clone()).expect("non-empty");
        let data = MultiSeries::univariate("v", series);
        let text = to_csv(&data);
        let back = parse_multiseries(&text, Some("v")).expect("own output parses");
        prop_assert_eq!(back.len(), vals.len());
        prop_assert_eq!(back.target().interval(), interval);
        for (a, b) in vals.iter().zip(back.target().values()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
