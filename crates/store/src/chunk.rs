//! Sealed chunks and their versioned wire format.
//!
//! A sealed chunk is an immutable, self-delimiting frame:
//!
//! ```text
//! magic "TSCK" | version u8 | codec u8 | flags u16 (reserved, 0)
//! count u32    | num_segments u32
//! start_ts i64 | end_ts i64 | interval i64
//! eps_bits u64 | payload_len u32 | payload_crc32 u32
//! payload bytes...
//! ```
//!
//! All integers are little-endian. `end_ts` is redundant with
//! `start_ts + (count - 1) * interval` and is verified on decode, as is the
//! CRC32 (shared with the artifact format via [`compression::crc`]).
//! Decoding goes through [`compression::ByteReader`] and is *total*:
//! malformed bytes produce [`StoreError`], never a panic, and no
//! allocation is sized from unvalidated header fields.

use compression::bitstream::BitReader;
use compression::codec::CompressedSeries;
use compression::crc::crc32;
use compression::reader::ByteReader;
use compression::{gorilla, timestamps, Method};
use tsdata::series::RegularTimeSeries;

use crate::StoreError;

/// Chunk frame magic bytes.
pub const CHUNK_MAGIC: [u8; 4] = *b"TSCK";
/// Current chunk format version.
pub const CHUNK_VERSION: u8 = 1;
/// Fixed header size in bytes (before the payload).
pub const CHUNK_HEADER_LEN: usize = 56;

/// The codec a chunk's payload is encoded with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkCodec {
    /// Lossless delta-of-delta timestamps + XOR values (the ingest
    /// staging codec).
    Gorilla,
    /// PMC-Mean constant segments (error-bounded).
    Pmc,
    /// Swing filter line segments (error-bounded).
    Swing,
    /// SZ block quantization (error-bounded).
    Sz,
}

impl ChunkCodec {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            ChunkCodec::Gorilla => 0,
            ChunkCodec::Pmc => 1,
            ChunkCodec::Swing => 2,
            ChunkCodec::Sz => 3,
        }
    }

    /// Inverse of [`ChunkCodec::tag`].
    pub fn from_tag(tag: u8) -> Result<Self, StoreError> {
        match tag {
            0 => Ok(ChunkCodec::Gorilla),
            1 => Ok(ChunkCodec::Pmc),
            2 => Ok(ChunkCodec::Swing),
            3 => Ok(ChunkCodec::Sz),
            other => Err(StoreError::Corrupt(format!("unknown chunk codec tag {other}"))),
        }
    }

    /// Telemetry / display label.
    pub fn name(self) -> &'static str {
        match self {
            ChunkCodec::Gorilla => "GORILLA",
            ChunkCodec::Pmc => "PMC",
            ChunkCodec::Swing => "SWING",
            ChunkCodec::Sz => "SZ",
        }
    }

    /// The error-bounded [`Method`] behind a lossy chunk codec, if any.
    pub fn method(self) -> Option<Method> {
        match self {
            ChunkCodec::Gorilla => None,
            ChunkCodec::Pmc => Some(Method::Pmc),
            ChunkCodec::Swing => Some(Method::Swing),
            ChunkCodec::Sz => Some(Method::Sz),
        }
    }
}

/// An immutable, decoded-on-demand chunk of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedChunk {
    codec: ChunkCodec,
    count: u32,
    num_segments: u32,
    start_ts: i64,
    interval: i64,
    eps_bits: u64,
    payload: Vec<u8>,
}

impl SealedChunk {
    /// Assembles a chunk from parts the append path produced. `count` must
    /// be nonzero and describe exactly the points in `payload`.
    pub(crate) fn from_parts(
        codec: ChunkCodec,
        count: usize,
        num_segments: usize,
        start_ts: i64,
        interval: i64,
        eps: f64,
        payload: Vec<u8>,
    ) -> SealedChunk {
        debug_assert!(count > 0, "sealed chunks are never empty");
        SealedChunk {
            codec,
            count: count as u32,
            num_segments: num_segments as u32,
            start_ts,
            interval,
            eps_bits: eps.to_bits(),
            payload,
        }
    }

    /// The payload codec.
    pub fn codec(&self) -> ChunkCodec {
        self.codec
    }

    /// Number of points in the chunk.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Sealed chunks are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Segment count of the payload (1 for Gorilla).
    pub fn num_segments(&self) -> usize {
        self.num_segments as usize
    }

    /// Timestamp of the first point.
    pub fn start_ts(&self) -> i64 {
        self.start_ts
    }

    /// Timestamp of the last point.
    pub fn end_ts(&self) -> i64 {
        self.start_ts + (self.count as i64 - 1) * self.interval
    }

    /// Sampling interval in seconds.
    pub fn interval(&self) -> i64 {
        self.interval
    }

    /// The error bound the payload was encoded under (0 for lossless).
    pub fn eps(&self) -> f64 {
        f64::from_bits(self.eps_bits)
    }

    /// Encoded payload size in bytes (without the header).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Full wire size: header plus payload.
    pub fn wire_len(&self) -> usize {
        CHUNK_HEADER_LEN + self.payload.len()
    }

    /// Serializes the chunk into its self-delimiting wire frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CHUNK_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&CHUNK_MAGIC);
        out.push(CHUNK_VERSION);
        out.push(self.codec.tag());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.num_segments.to_le_bytes());
        out.extend_from_slice(&self.start_ts.to_le_bytes());
        out.extend_from_slice(&self.end_ts().to_le_bytes());
        out.extend_from_slice(&self.interval.to_le_bytes());
        out.extend_from_slice(&self.eps_bits.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one chunk frame, leaving the reader at the first byte past
    /// it. Total: every malformed input is an error.
    pub fn from_bytes(r: &mut ByteReader<'_>) -> Result<SealedChunk, StoreError> {
        let truncated = |_| StoreError::Corrupt("chunk header truncated".into());
        let magic = r.read_bytes(4).map_err(truncated)?;
        if magic != CHUNK_MAGIC {
            return Err(StoreError::Corrupt(format!("bad chunk magic {magic:02x?}")));
        }
        let version = r.read_u8().map_err(truncated)?;
        if version != CHUNK_VERSION {
            return Err(StoreError::Corrupt(format!(
                "chunk format version {version} (this build reads {CHUNK_VERSION})"
            )));
        }
        let codec = ChunkCodec::from_tag(r.read_u8().map_err(truncated)?)?;
        let flags = r.read_u16_le().map_err(truncated)?;
        if flags != 0 {
            return Err(StoreError::Corrupt(format!("reserved chunk flags {flags:#06x} set")));
        }
        let count = r.read_u32_le().map_err(truncated)?;
        if count == 0 {
            return Err(StoreError::Corrupt("empty chunk".into()));
        }
        let num_segments = r.read_u32_le().map_err(truncated)?;
        let start_ts = r.read_u64_le().map_err(truncated)? as i64;
        let end_ts = r.read_u64_le().map_err(truncated)? as i64;
        let interval = r.read_u64_le().map_err(truncated)? as i64;
        if interval <= 0 {
            return Err(StoreError::Corrupt(format!("chunk interval {interval} must be > 0")));
        }
        // Checked arithmetic: a hostile (count, interval) pair must not
        // overflow into a "consistent" end timestamp.
        let span = (count as i64 - 1)
            .checked_mul(interval)
            .and_then(|s| start_ts.checked_add(s))
            .ok_or_else(|| StoreError::Corrupt("chunk time range overflows i64".into()))?;
        if span != end_ts {
            return Err(StoreError::Corrupt(format!(
                "chunk time range mismatch: header says {start_ts}..={end_ts}, \
                 {count} points at interval {interval} end at {span}"
            )));
        }
        let eps_bits = r.read_u64_le().map_err(truncated)?;
        let payload_len = r.read_u32_le().map_err(truncated)? as usize;
        let stored_crc = r.read_u32_le().map_err(truncated)?;
        // `read_bytes` borrows from the input, so a hostile payload_len
        // cannot demand an allocation beyond the input's own size.
        let payload = r
            .read_bytes(payload_len)
            .map_err(|_| StoreError::Corrupt("chunk payload truncated".into()))?;
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(StoreError::Corrupt(format!(
                "chunk checksum mismatch: header {stored_crc:#010x}, payload {computed:#010x}"
            )));
        }
        Ok(SealedChunk {
            codec,
            count,
            num_segments,
            start_ts,
            interval,
            eps_bits,
            payload: payload.to_vec(),
        })
    }

    /// Decodes the payload into the chunk's series. Total for arbitrary
    /// payload bytes: the codec decoders are length-checked and the result
    /// is validated against the header.
    pub fn decode(&self) -> Result<RegularTimeSeries, StoreError> {
        let started = std::time::Instant::now();
        let series = match self.codec {
            ChunkCodec::Gorilla => {
                let mut r = ByteReader::new(&self.payload);
                let ts = timestamps::decode_stream(&mut r)
                    .map_err(|e| StoreError::Corrupt(format!("chunk timestamps: {e}")))?;
                if ts.len() != self.count as usize {
                    return Err(StoreError::Corrupt(format!(
                        "chunk announces {} points but holds {} timestamps",
                        self.count,
                        ts.len()
                    )));
                }
                if ts[0] != self.start_ts {
                    return Err(StoreError::Corrupt(format!(
                        "chunk timestamps start at {} but header says {}",
                        ts[0], self.start_ts
                    )));
                }
                if let Some(i) =
                    (1..ts.len()).find(|&i| ts[i].checked_sub(ts[i - 1]) != Some(self.interval))
                {
                    return Err(StoreError::Corrupt(format!(
                        "chunk timestamp gap at index {i} differs from interval {}",
                        self.interval
                    )));
                }
                let mut bits = BitReader::new(r.rest());
                let values = gorilla::decompress_values(&mut bits, self.count as usize)
                    .map_err(StoreError::Codec)?;
                RegularTimeSeries::new(self.start_ts, self.interval, values)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))?
            }
            ChunkCodec::Pmc | ChunkCodec::Swing | ChunkCodec::Sz => {
                let method = self.codec.method().expect("lossy codecs map to a method");
                let compressor = method.compressor();
                let frame = CompressedSeries {
                    method: compressor.name(),
                    bytes: self.payload.clone(),
                    num_segments: self.num_segments as usize,
                };
                let series = compressor.decompress(&frame).map_err(StoreError::Codec)?;
                if series.len() != self.count as usize {
                    return Err(StoreError::Corrupt(format!(
                        "chunk announces {} points but payload decodes {}",
                        self.count,
                        series.len()
                    )));
                }
                if series.start() != self.start_ts || series.interval() != self.interval {
                    return Err(StoreError::Corrupt(
                        "chunk payload time axis disagrees with header".into(),
                    ));
                }
                series
            }
        };
        telemetry::observe(
            "store_read_seconds",
            &[("codec", self.codec.name())],
            telemetry::secs(started.elapsed()),
        );
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::append::ActiveChunk;

    fn gorilla_chunk(n: usize) -> SealedChunk {
        let mut a = ActiveChunk::new(ChunkCodec::Gorilla, 0.0);
        for i in 0..n {
            a.push(1_000 + 60 * i as i64, 5.0 + (i % 7) as f64 * 0.5);
        }
        a.seal(60, 0.0).unwrap()
    }

    #[test]
    fn wire_roundtrip() {
        for codec_chunk in [gorilla_chunk(100), {
            let mut a = ActiveChunk::new(ChunkCodec::Pmc, 0.1);
            for i in 0..257 {
                a.push(60 * i as i64, 9.0 + (i % 3) as f64 * 0.1);
            }
            a.seal(60, 0.1).unwrap()
        }] {
            let bytes = codec_chunk.to_bytes();
            assert_eq!(bytes.len(), codec_chunk.wire_len());
            let mut r = ByteReader::new(&bytes);
            let back = SealedChunk::from_bytes(&mut r).unwrap();
            assert!(r.is_empty(), "frame is self-delimiting");
            assert_eq!(back, codec_chunk);
            assert_eq!(back.decode().unwrap(), codec_chunk.decode().unwrap());
        }
    }

    #[test]
    fn header_fields_describe_the_chunk() {
        let c = gorilla_chunk(50);
        assert_eq!(c.len(), 50);
        assert_eq!(c.start_ts(), 1_000);
        assert_eq!(c.end_ts(), 1_000 + 49 * 60);
        assert_eq!(c.interval(), 60);
        assert_eq!(c.codec(), ChunkCodec::Gorilla);
        assert_eq!(c.eps(), 0.0);
        assert_eq!(c.num_segments(), 1);
    }

    #[test]
    fn corrupt_frames_rejected() {
        let bytes = gorilla_chunk(64).to_bytes();
        // Truncations at every prefix.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(SealedChunk::from_bytes(&mut r).is_err(), "cut={cut}");
        }
        // A flipped payload bit must fail the checksum.
        let mut tampered = bytes.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x40;
        assert!(matches!(
            SealedChunk::from_bytes(&mut ByteReader::new(&tampered)),
            Err(StoreError::Corrupt(msg)) if msg.contains("checksum")
        ));
        // Bad magic / version / tag / flags.
        for (offset, value, what) in
            [(0usize, 0x58u8, "magic"), (4, 9, "version"), (5, 7, "tag"), (6, 1, "flags")]
        {
            let mut bad = bytes.clone();
            bad[offset] = value;
            assert!(
                SealedChunk::from_bytes(&mut ByteReader::new(&bad)).is_err(),
                "tampered {what}"
            );
        }
        // Inconsistent time range.
        let mut bad = bytes.clone();
        bad[16..24].copy_from_slice(&123i64.to_le_bytes());
        assert!(SealedChunk::from_bytes(&mut ByteReader::new(&bad)).is_err());
    }
}
