//! The per-series active append chunk.
//!
//! Each series has at most one open chunk accepting points. Gorilla chunks
//! append through the stateful delta-of-delta timestamp and XOR value
//! encoders (`compression::timestamps::StreamAppender`,
//! `compression::gorilla::ValueAppender`); error-bounded chunks run the
//! online PMC/Swing encoders (`compression::streaming`) and keep only the
//! open window plus closed segments, while SZ (block-based) buffers the
//! chunk's values. Sealing drains the encoder into a [`SealedChunk`]
//! payload; the encoders' `drain` methods guarantee a fresh segment after
//! the cut (see the `streaming` regression tests).

use compression::gorilla::ValueAppender;
use compression::pmc::PmcSegment;
use compression::swing::SwingSegment;
use compression::timestamps::StreamAppender;
use compression::{Emit, PeblcCompressor, StreamingPmc, StreamingSwing, Sz};
use tsdata::series::RegularTimeSeries;

use crate::chunk::{ChunkCodec, SealedChunk};
use crate::StoreError;

#[derive(Debug, Clone)]
enum Enc {
    Gorilla { ts: StreamAppender, vals: ValueAppender },
    Pmc { enc: StreamingPmc, segs: Vec<PmcSegment> },
    Swing { enc: StreamingSwing, segs: Vec<SwingSegment> },
    Sz { buf: Vec<f64> },
}

/// One open, append-only chunk. `Clone` so reads can snapshot and seal a
/// copy without disturbing the live encoder.
#[derive(Debug, Clone)]
pub(crate) struct ActiveChunk {
    codec: ChunkCodec,
    start_ts: i64,
    last_ts: i64,
    count: usize,
    enc: Enc,
}

impl ActiveChunk {
    pub(crate) fn new(codec: ChunkCodec, eps: f64) -> ActiveChunk {
        let enc = match codec {
            ChunkCodec::Gorilla => {
                Enc::Gorilla { ts: StreamAppender::new(), vals: ValueAppender::new() }
            }
            ChunkCodec::Pmc => Enc::Pmc { enc: StreamingPmc::new(eps), segs: Vec::new() },
            ChunkCodec::Swing => Enc::Swing { enc: StreamingSwing::new(eps), segs: Vec::new() },
            ChunkCodec::Sz => Enc::Sz { buf: Vec::new() },
        };
        ActiveChunk { codec, start_ts: 0, last_ts: 0, count: 0, enc }
    }

    pub(crate) fn len(&self) -> usize {
        self.count
    }

    pub(crate) fn start_ts(&self) -> i64 {
        self.start_ts
    }

    /// Appends one point. Ordering/regularity is enforced by the owning
    /// shard; the chunk only records.
    pub(crate) fn push(&mut self, ts: i64, value: f64) {
        if self.count == 0 {
            self.start_ts = ts;
        }
        self.last_ts = ts;
        self.count += 1;
        match &mut self.enc {
            Enc::Gorilla { ts: tenc, vals } => {
                tenc.push(ts);
                vals.push(value);
            }
            Enc::Pmc { enc, segs } => {
                if let Emit::Segment(s) = enc.push(value) {
                    segs.push(s);
                }
            }
            Enc::Swing { enc, segs } => {
                if let Emit::Segment(s) = enc.push(value) {
                    segs.push(s);
                }
            }
            Enc::Sz { buf } => buf.push(value),
        }
    }

    /// Drains the encoder and freezes the chunk. `interval` is the series
    /// sampling interval (the shard's authority, since a one-point chunk
    /// cannot infer it).
    pub(crate) fn seal(self, interval: i64, eps: f64) -> Result<SealedChunk, StoreError> {
        debug_assert!(self.count > 0, "sealing an empty chunk");
        let (payload, num_segments) = match self.enc {
            Enc::Gorilla { ts, vals } => {
                let mut payload = ts.into_bytes();
                payload.extend_from_slice(&vals.into_bytes());
                (payload, 1)
            }
            Enc::Pmc { mut enc, mut segs } => {
                // A cap-forced cut means the chunk's segmentation diverged
                // from the batch compressor's, voiding the store's
                // byte-identity contract — surface it instead of sealing a
                // frame that silently differs from `Pmc::compress`.
                if enc.cap_cuts() > 0 {
                    return Err(compression::CodecError::SegmentCap { method: "PMC" }.into());
                }
                segs.extend(enc.drain());
                let n = segs.len();
                (compression::pmc::encode_segments(self.start_ts, interval, &segs)?, n)
            }
            Enc::Swing { mut enc, mut segs } => {
                if enc.cap_cuts() > 0 {
                    return Err(compression::CodecError::SegmentCap { method: "SWING" }.into());
                }
                segs.extend(enc.drain());
                let n = segs.len();
                (compression::swing::encode_segments(self.start_ts, interval, &segs)?, n)
            }
            Enc::Sz { buf } => {
                let series = RegularTimeSeries::new(self.start_ts, interval, buf)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                let frame = Sz.compress(&series, eps)?;
                (frame.bytes, frame.num_segments)
            }
        };
        Ok(SealedChunk::from_parts(
            self.codec,
            self.count,
            num_segments,
            self.start_ts,
            interval,
            eps,
            payload,
        ))
    }
}
