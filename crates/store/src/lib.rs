//! # store — streaming chunked time-series store
//!
//! The Gorilla-shaped ingestion/serving layer (ROADMAP item 1): points are
//! appended one at a time into a per-series *active chunk*, sealed into
//! immutable, CRC-protected [`SealedChunk`]s when the chunk reaches the
//! configured point count or time span, and read back through
//! chunk-at-a-time decoding iterators ([`StoreSeries`] /
//! [`iter::PointIter`]) that implement [`tsdata::series::SeriesSource`] —
//! so everything above (windowers, evaluation scenarios) reads the store
//! without materialising whole series.
//!
//! Each series carries its own codec selection: [`ChunkCodec::Gorilla`]
//! stages raw data losslessly (delta-of-delta timestamps + XOR values),
//! while the paper's error-bounded codecs (PMC/Swing/SZ) encode chunks
//! under a relative bound ε at ingest, reusing the `compression::streaming`
//! online encoders so sealed payloads match the batch codecs' frames.
//!
//! The series map is a single `RwLock<HashMap>` keyed by [`SeriesId`]:
//! lookups are O(1) and appends to different series contend only on the
//! brief read-lock, each shard owning its own mutex.
//!
//! Timestamps must arrive in order at a constant interval (the paper's
//! Definition 2 regularity); the first two appends fix the cadence and
//! later violations are rejected with [`StoreError::OutOfOrder`].

use std::collections::HashMap;
use std::sync::Arc;

use compression::codec::CodecError;
use parking_lot::{Mutex, RwLock};
use tsdata::series::SeriesSource;

pub mod append;
pub mod chunk;
pub mod iter;

pub use chunk::{ChunkCodec, SealedChunk, CHUNK_HEADER_LEN, CHUNK_MAGIC, CHUNK_VERSION};
pub use iter::{ChunkIter, PointIter, StoreSeries};

use append::ActiveChunk;

/// Identifies one series in the store. Callers compose ids however they
/// like (the evaluation grid packs dataset/subset/channel indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u64);

impl std::fmt::Display for SeriesId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The series id is not registered.
    UnknownSeries(SeriesId),
    /// The series id is already registered.
    DuplicateSeries(SeriesId),
    /// An append violated the series' regular cadence.
    OutOfOrder {
        /// The offending series.
        id: SeriesId,
        /// The timestamp that was appended.
        ts: i64,
        /// The timestamp the cadence requires.
        expected: i64,
    },
    /// A codec rejected the data (bad bound, unencodable timestamps, ...).
    Codec(CodecError),
    /// A chunk frame failed structural validation.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownSeries(id) => write!(f, "unknown series {id}"),
            StoreError::DuplicateSeries(id) => write!(f, "series {id} already exists"),
            StoreError::OutOfOrder { id, ts, expected } => {
                write!(f, "series {id}: timestamp {ts} breaks cadence (expected {expected})")
            }
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt chunk: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Seal policy configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Seal the active chunk when it reaches this many points.
    pub max_chunk_points: usize,
    /// Additionally seal when a chunk would span at least this many
    /// seconds (`None` disables the time bound).
    pub chunk_span: Option<i64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        // 4096 points ≈ 43 days of the paper's 15-minute cadence: long
        // enough to amortise the 56-byte header to noise, short enough
        // that reads decode in cache-sized pieces.
        StoreConfig { max_chunk_points: 4096, chunk_span: None }
    }
}

/// Per-series state: codec selection, cadence, sealed chunks, open chunk.
#[derive(Debug)]
struct Shard {
    codec: ChunkCodec,
    eps: f64,
    start_ts: i64,
    last_ts: i64,
    interval: Option<i64>,
    count: usize,
    sealed: Vec<Arc<SealedChunk>>,
    active: Option<ActiveChunk>,
    /// Dirty-generation counter: bumped on every append (and on seal).
    /// Snapshot reads record the generation they sealed at, so repeated
    /// reads of an unchanged series reuse the cached frame instead of
    /// clone-sealing (re-encoding) the open chunk on every call.
    generation: u64,
    /// The cached snapshot-seal of the open chunk, tagged with the
    /// generation it captured.
    snapshot: Option<(u64, Arc<SealedChunk>)>,
}

impl Shard {
    /// The interval used for sealing; a single-point series defaults to 1
    /// (mirroring `TimeSeries::into_regular`).
    fn seal_interval(&self) -> i64 {
        self.interval.unwrap_or(1)
    }
}

/// The chunked store: an O(1) series map in front of per-series shards.
#[derive(Debug, Default)]
pub struct TsStore {
    config: StoreConfig,
    series: RwLock<HashMap<SeriesId, Arc<Mutex<Shard>>>>,
}

impl TsStore {
    /// Creates a store with the given seal policy.
    pub fn new(config: StoreConfig) -> TsStore {
        TsStore { config, series: RwLock::new(HashMap::new()) }
    }

    /// The seal policy in effect.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of registered series.
    pub fn num_series(&self) -> usize {
        self.series.read().len()
    }

    /// Registers a series with its chunk codec and error bound (use
    /// [`ChunkCodec::Gorilla`] with `eps = 0.0` for lossless staging).
    pub fn create_series(
        &self,
        id: SeriesId,
        codec: ChunkCodec,
        eps: f64,
    ) -> Result<(), StoreError> {
        let mut map = self.series.write();
        if map.contains_key(&id) {
            return Err(StoreError::DuplicateSeries(id));
        }
        map.insert(
            id,
            Arc::new(Mutex::new(Shard {
                codec,
                eps,
                start_ts: 0,
                last_ts: 0,
                interval: None,
                count: 0,
                sealed: Vec::new(),
                active: None,
                generation: 0,
                snapshot: None,
            })),
        );
        Ok(())
    }

    fn shard(&self, id: SeriesId) -> Result<Arc<Mutex<Shard>>, StoreError> {
        self.series.read().get(&id).cloned().ok_or(StoreError::UnknownSeries(id))
    }

    /// Appends one point. O(1): a read-locked map probe plus the shard's
    /// own lock.
    pub fn append(&self, id: SeriesId, ts: i64, value: f64) -> Result<(), StoreError> {
        self.append_batch(id, std::iter::once((ts, value)))
    }

    /// Appends many points under one shard lock — the bulk-ingest path.
    pub fn append_batch(
        &self,
        id: SeriesId,
        points: impl IntoIterator<Item = (i64, f64)>,
    ) -> Result<(), StoreError> {
        let shard = self.shard(id)?;
        let mut s = shard.lock();
        for (ts, value) in points {
            // Enforce regular cadence (Definition 2): the first two
            // appends fix start and interval, every later point must land
            // exactly one interval after its predecessor.
            match (s.count, s.interval) {
                (0, _) => s.start_ts = ts,
                (1, None) => {
                    if ts <= s.start_ts {
                        return Err(StoreError::OutOfOrder { id, ts, expected: s.start_ts + 1 });
                    }
                    s.interval = Some(ts - s.start_ts);
                }
                (_, Some(interval)) => {
                    let expected = s.last_ts + interval;
                    if ts != expected {
                        return Err(StoreError::OutOfOrder { id, ts, expected });
                    }
                }
                (_, None) => unreachable!("interval fixed at the second append"),
            }
            // Seal policy: cut before the point that would overflow the
            // chunk's point budget or time span.
            let must_seal = s.active.as_ref().is_some_and(|a| {
                a.len() >= self.config.max_chunk_points
                    || self.config.chunk_span.is_some_and(|span| ts - a.start_ts() >= span)
            });
            if must_seal {
                seal_active(id, &mut s)?;
            }
            let (codec, eps) = (s.codec, s.eps);
            s.active.get_or_insert_with(|| ActiveChunk::new(codec, eps)).push(ts, value);
            s.last_ts = ts;
            s.count += 1;
            s.generation += 1;
        }
        Ok(())
    }

    /// Registers `id` and ingests a whole source in one call (create,
    /// bulk-append, seal). The convenience path the evaluation grid uses
    /// to stage datasets.
    pub fn ingest(
        &self,
        id: SeriesId,
        codec: ChunkCodec,
        eps: f64,
        source: &dyn SeriesSource,
    ) -> Result<(), StoreError> {
        self.create_series(id, codec, eps)?;
        self.append_batch(id, source.iter_points().map(|p| (p.timestamp, p.value)))?;
        self.seal_series(id)
    }

    /// Seals `id`'s active chunk, if any.
    pub fn seal_series(&self, id: SeriesId) -> Result<(), StoreError> {
        let shard = self.shard(id)?;
        let mut s = shard.lock();
        seal_active(id, &mut s)
    }

    /// Seals every series' active chunk.
    pub fn seal_all(&self) -> Result<(), StoreError> {
        let shards: Vec<_> = self.series.read().iter().map(|(id, s)| (*id, s.clone())).collect();
        for (id, shard) in shards {
            seal_active(id, &mut shard.lock())?;
        }
        Ok(())
    }

    /// Total points ingested into `id`.
    pub fn series_len(&self, id: SeriesId) -> Result<usize, StoreError> {
        Ok(self.shard(id)?.lock().count)
    }

    /// Number of sealed chunks behind `id`.
    pub fn num_chunks(&self, id: SeriesId) -> Result<usize, StoreError> {
        Ok(self.shard(id)?.lock().sealed.len())
    }

    /// Sum of sealed wire bytes (header + payload) behind `id`.
    pub fn sealed_bytes(&self, id: SeriesId) -> Result<usize, StoreError> {
        Ok(self.shard(id)?.lock().sealed.iter().map(|c| c.wire_len()).sum())
    }

    /// A read snapshot of `id`. Sealed chunks are shared by reference; an
    /// open chunk is snapshot-sealed (the live encoder is untouched, so
    /// reading does not perturb segmentation).
    pub fn read(&self, id: SeriesId) -> Result<StoreSeries, StoreError> {
        let shard = self.shard(id)?;
        let mut s = shard.lock();
        let mut chunks = s.sealed.clone();
        if s.active.is_some() {
            // Reuse the cached snapshot-seal while the series is clean;
            // re-encode (and re-tag the cache) only after new appends.
            let cached = match &s.snapshot {
                Some((generation, frame)) if *generation == s.generation => Some(frame.clone()),
                _ => None,
            };
            let frame = match cached {
                Some(frame) => frame,
                None => {
                    let active = s.active.clone().expect("checked above");
                    let frame = Arc::new(active.seal(s.seal_interval(), s.eps)?);
                    s.snapshot = Some((s.generation, frame.clone()));
                    frame
                }
            };
            chunks.push(frame);
        }
        Ok(StoreSeries::new(s.start_ts, s.seal_interval(), chunks))
    }
}

/// Seals the shard's active chunk and records the store telemetry
/// (ingest counters flush at seal so the append hot path stays counter
/// free).
fn seal_active(id: SeriesId, s: &mut Shard) -> Result<(), StoreError> {
    let Some(active) = s.active.take() else { return Ok(()) };
    // The cached snapshot covered the open chunk that is being sealed;
    // drop it so the frame's memory is released promptly.
    s.snapshot = None;
    s.generation += 1;
    let started = std::time::Instant::now();
    let points = active.len();
    let interval = s.seal_interval();
    let chunk = match active.seal(interval, s.eps) {
        Ok(c) => c,
        Err(e) => return Err(annotate(id, e)),
    };
    let label = [("codec", chunk.codec().name())];
    telemetry::counter_add("store_points_ingested_total", &[], points as u64);
    telemetry::counter_add("store_chunks_sealed_total", &label, 1);
    telemetry::observe("store_seal_seconds", &label, telemetry::secs(started.elapsed()));
    s.sealed.push(Arc::new(chunk));
    Ok(())
}

fn annotate(id: SeriesId, e: StoreError) -> StoreError {
    match e {
        StoreError::Corrupt(msg) => StoreError::Corrupt(format!("series {id}: {msg}")),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn wave(n: usize) -> Vec<f64> {
        (0..n).map(|i| 40.0 + 10.0 * (i as f64 * 0.13).sin() + (i % 7) as f64 * 0.5).collect()
    }

    #[test]
    fn gorilla_roundtrip_is_lossless_across_chunks() {
        let store = TsStore::new(StoreConfig { max_chunk_points: 64, chunk_span: None });
        let id = SeriesId(7);
        let values = wave(333);
        store.create_series(id, ChunkCodec::Gorilla, 0.0).unwrap();
        store
            .append_batch(id, values.iter().enumerate().map(|(i, &v)| (100 + i as i64 * 60, v)))
            .unwrap();
        store.seal_series(id).unwrap();

        assert_eq!(store.series_len(id).unwrap(), 333);
        assert_eq!(store.num_chunks(id).unwrap(), 6); // ceil(333 / 64)

        let view = store.read(id).unwrap();
        assert_eq!(view.len(), 333);
        assert_eq!(view.start(), 100);
        assert_eq!(view.interval(), 60);
        let decoded: Vec<f64> = view.iter_values().collect();
        assert_eq!(decoded, values);
        let times: Vec<i64> = view.iter_points().map(|p| p.timestamp).collect();
        assert_eq!(times[0], 100);
        assert_eq!(times[332], 100 + 332 * 60);
    }

    #[test]
    fn read_snapshots_the_open_chunk_without_sealing_it() {
        let store = TsStore::new(StoreConfig::default());
        let id = SeriesId(1);
        store.create_series(id, ChunkCodec::Gorilla, 0.0).unwrap();
        store.append_batch(id, (0..10).map(|i| (i * 5, i as f64))).unwrap();

        let view = store.read(id).unwrap();
        assert_eq!(view.len(), 10);
        assert_eq!(view.num_chunks(), 1);
        // The open chunk is still open: nothing was sealed by the read.
        assert_eq!(store.num_chunks(id).unwrap(), 0);

        // Appending after the snapshot keeps working and a later read sees
        // the full series.
        store.append_batch(id, (10..20).map(|i| (i * 5, i as f64))).unwrap();
        let view = store.read(id).unwrap();
        let all: Vec<f64> = view.iter_values().collect();
        assert_eq!(all, (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_snapshots_of_an_unchanged_series_reuse_the_sealed_frame() {
        let store = TsStore::new(StoreConfig::default());
        let id = SeriesId(21);
        store.create_series(id, ChunkCodec::Gorilla, 0.0).unwrap();
        store.append_batch(id, (0..50).map(|i| (i * 30, (i as f64).sin()))).unwrap();

        // Two reads with no intervening appends must share the exact same
        // snapshot-sealed frame (pointer equality through the Arc), i.e.
        // the second read did not re-encode the open chunk.
        let v1 = store.read(id).unwrap();
        let v2 = store.read(id).unwrap();
        let f1 = v1.chunks().last().unwrap();
        let f2 = v2.chunks().last().unwrap();
        assert!(std::ptr::eq(f1, f2), "unchanged series must reuse the cached snapshot frame");

        // An append dirties the generation: the next read re-encodes (a
        // different frame) and sees the new point.
        store.append(id, 50 * 30, 9.25).unwrap();
        let v3 = store.read(id).unwrap();
        let f3 = v3.chunks().last().unwrap();
        assert!(!std::ptr::eq(f1, f3), "append must invalidate the cached snapshot");
        assert_eq!(v3.len(), 51);
        assert_eq!(v3.iter_values().last().unwrap(), 9.25);

        // The refreshed snapshot is itself cached again.
        let v4 = store.read(id).unwrap();
        assert!(std::ptr::eq(f3, v4.chunks().last().unwrap()));

        // Sealing drops the cache; a sealed-only series reads straight
        // from the immutable chunk list.
        store.seal_series(id).unwrap();
        let v5 = store.read(id).unwrap();
        assert_eq!(v5.len(), 51);
        assert_eq!(v5.num_chunks(), 1);
    }

    #[test]
    fn lossy_codecs_respect_their_bound() {
        for codec in [ChunkCodec::Pmc, ChunkCodec::Swing, ChunkCodec::Sz] {
            let eps = 0.05;
            let store = TsStore::new(StoreConfig { max_chunk_points: 100, chunk_span: None });
            let id = SeriesId(9);
            let values = wave(257);
            let series = RegularTimeSeries::new(0, 15, values.clone()).unwrap();
            store.ingest(id, codec, eps, &series).unwrap();

            let view = store.read(id).unwrap();
            assert_eq!(view.len(), values.len());
            let decoded: Vec<f64> = view.iter_values().collect();
            assert!(
                compression::find_bound_violation(&values, &decoded, eps, 1e-9).is_none(),
                "{} violates its bound",
                codec.name()
            );
        }
    }

    #[test]
    fn chunk_span_policy_cuts_by_time() {
        let store = TsStore::new(StoreConfig { max_chunk_points: 10_000, chunk_span: Some(600) });
        let id = SeriesId(3);
        store.create_series(id, ChunkCodec::Gorilla, 0.0).unwrap();
        // 60s cadence, 600s span → 10 points per chunk.
        store.append_batch(id, (0..35).map(|i| (i * 60, i as f64))).unwrap();
        store.seal_series(id).unwrap();
        assert_eq!(store.num_chunks(id).unwrap(), 4);
        let lens: Vec<usize> = store.read(id).unwrap().chunks().map(|c| c.len()).collect();
        assert_eq!(lens, vec![10, 10, 10, 5]);
    }

    #[test]
    fn seal_errors_when_a_segment_hits_the_16bit_cap() {
        // A seal policy lax enough to let one chunk exceed u16::MAX points
        // can force the online encoder to cut a segment at the cap, which
        // breaks the frame byte-identity contract with the batch codecs —
        // sealing must surface the typed error, not silently diverge.
        let store = TsStore::new(StoreConfig { max_chunk_points: 100_000, chunk_span: None });
        let id = SeriesId(11);
        store.create_series(id, ChunkCodec::Pmc, 0.1).unwrap();
        store.append_batch(id, (0..70_000).map(|i| (i * 60, 5.0))).unwrap();
        let err = store.seal_series(id).unwrap_err();
        assert!(
            matches!(err, StoreError::Codec(compression::CodecError::SegmentCap { method: "PMC" })),
            "{err}"
        );
        // The default policy keeps every chunk under the cap, so the
        // error is unreachable without an explicit config override.
        assert!(StoreConfig::default().max_chunk_points <= u16::MAX as usize);
    }

    #[test]
    fn cadence_violations_are_rejected() {
        let store = TsStore::new(StoreConfig::default());
        let id = SeriesId(2);
        store.create_series(id, ChunkCodec::Gorilla, 0.0).unwrap();
        store.append(id, 0, 1.0).unwrap();
        // Second point must move forward.
        assert!(matches!(store.append(id, -5, 2.0), Err(StoreError::OutOfOrder { .. })));
        store.append(id, 10, 2.0).unwrap();
        // Third point must land exactly one interval later.
        let err = store.append(id, 25, 3.0).unwrap_err();
        match err {
            StoreError::OutOfOrder { ts, expected, .. } => {
                assert_eq!(ts, 25);
                assert_eq!(expected, 20);
            }
            other => panic!("unexpected error: {other}"),
        }
        // The shard is still usable after a rejected append.
        store.append(id, 20, 3.0).unwrap();
        assert_eq!(store.series_len(id).unwrap(), 3);
    }

    #[test]
    fn series_management_errors() {
        let store = TsStore::default();
        let id = SeriesId(5);
        assert!(matches!(store.append(id, 0, 1.0), Err(StoreError::UnknownSeries(_))));
        store.create_series(id, ChunkCodec::Gorilla, 0.0).unwrap();
        assert!(matches!(
            store.create_series(id, ChunkCodec::Pmc, 0.1),
            Err(StoreError::DuplicateSeries(_))
        ));
        assert_eq!(store.num_series(), 1);
    }

    #[test]
    fn seal_all_flushes_every_series() {
        let store = TsStore::new(StoreConfig::default());
        for k in 0..4 {
            let id = SeriesId(k);
            store.create_series(id, ChunkCodec::Gorilla, 0.0).unwrap();
            store.append_batch(id, (0..20).map(|i| (i * 30, (k as f64) + i as f64))).unwrap();
        }
        store.seal_all().unwrap();
        for k in 0..4 {
            assert_eq!(store.num_chunks(SeriesId(k)).unwrap(), 1);
            assert!(store.sealed_bytes(SeriesId(k)).unwrap() > CHUNK_HEADER_LEN);
        }
    }

    #[test]
    fn store_view_roundtrips_through_wire_format() {
        let store = TsStore::new(StoreConfig { max_chunk_points: 50, chunk_span: None });
        let id = SeriesId(11);
        let series = RegularTimeSeries::new(0, 60, wave(120)).unwrap();
        store.ingest(id, ChunkCodec::Gorilla, 0.0, &series).unwrap();
        let view = store.read(id).unwrap();
        for chunk in view.chunks() {
            let bytes = chunk.to_bytes();
            let mut r = compression::ByteReader::new(&bytes);
            let back = SealedChunk::from_bytes(&mut r).unwrap();
            assert_eq!(&back, chunk);
        }
    }
}
