//! Chunk-at-a-time decoding readers.
//!
//! [`StoreSeries`] is a read snapshot of one series: an ordered list of
//! sealed chunks (including a snapshot-seal of the open chunk at read
//! time). Its [`PointIter`] decodes one chunk at a time, so iterating a
//! series holds at most one chunk's values in memory — the windowers and
//! the streaming re-encoders consume it through
//! [`tsdata::series::SeriesSource`] without ever materialising the series.

use std::sync::Arc;

use tsdata::series::{DataPoint, SeriesSource};

use crate::chunk::SealedChunk;

/// A read-only, chunk-backed view of one series.
#[derive(Debug, Clone)]
pub struct StoreSeries {
    start: i64,
    interval: i64,
    len: usize,
    chunks: Vec<Arc<SealedChunk>>,
}

impl StoreSeries {
    pub(crate) fn new(start: i64, interval: i64, chunks: Vec<Arc<SealedChunk>>) -> StoreSeries {
        let len = chunks.iter().map(|c| c.len()).sum();
        StoreSeries { start, interval, len, chunks }
    }

    /// Number of sealed chunks backing the view.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Iterates the sealed chunks in time order.
    pub fn chunks(&self) -> ChunkIter<'_> {
        ChunkIter { inner: self.chunks.iter() }
    }

    /// Iterates decoded points, one chunk resident at a time.
    pub fn points(&self) -> PointIter<'_> {
        PointIter {
            chunks: self.chunks.iter(),
            values: Vec::new().into_iter(),
            next_ts: self.start,
            interval: self.interval,
        }
    }
}

impl SeriesSource for StoreSeries {
    fn len(&self) -> usize {
        self.len
    }

    fn start(&self) -> i64 {
        self.start
    }

    fn interval(&self) -> i64 {
        self.interval
    }

    fn iter_values(&self) -> Box<dyn Iterator<Item = f64> + '_> {
        Box::new(self.points().map(|p| p.value))
    }

    fn iter_points(&self) -> Box<dyn Iterator<Item = DataPoint> + '_> {
        Box::new(self.points())
    }
}

/// Iterator over a view's sealed chunks.
#[derive(Debug, Clone)]
pub struct ChunkIter<'a> {
    inner: std::slice::Iter<'a, Arc<SealedChunk>>,
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = &'a SealedChunk;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|c| c.as_ref())
    }
}

/// Streaming point reader: decodes the next chunk only when the previous
/// one is exhausted.
///
/// Chunks in a [`StoreSeries`] were sealed by this store (or passed the
/// total [`SealedChunk::from_bytes`] validation), so a decode failure here
/// is an internal invariant violation and panics; untrusted bytes are
/// rejected before they can reach an iterator.
#[derive(Debug)]
pub struct PointIter<'a> {
    chunks: std::slice::Iter<'a, Arc<SealedChunk>>,
    values: std::vec::IntoIter<f64>,
    next_ts: i64,
    interval: i64,
}

impl Iterator for PointIter<'_> {
    type Item = DataPoint;

    fn next(&mut self) -> Option<DataPoint> {
        loop {
            if let Some(value) = self.values.next() {
                let timestamp = self.next_ts;
                self.next_ts += self.interval;
                return Some(DataPoint { timestamp, value });
            }
            let chunk = self.chunks.next()?;
            let series = chunk.decode().expect("store-sealed chunk decodes");
            self.next_ts = series.start();
            self.values = series.into_values().into_iter();
        }
    }
}
