//! Deterministic fuzz harness for the chunk wire format (DESIGN.md §10
//! extended to §12): [`SealedChunk::from_bytes`] and `decode` must be
//! *total* over arbitrary bytes — `Ok` or `Err(StoreError)`, never a
//! panic, and never an allocation driven by a hostile length field rather
//! than by the input itself.
//!
//! Same scheme as `compression`'s `fuzz_decode`: seeded mutations
//! (truncate, bit-flip, length-tamper, splice, scramble) of *valid* chunk
//! frames across all four codecs, ≥1k cases per sweep, every failure
//! replayable from its case label.

use compression::mutate::{sweep, ALL_MUTATIONS};
use compression::ByteReader;
use store::{ChunkCodec, SealedChunk, SeriesId, StoreConfig, TsStore};
use tsdata::series::RegularTimeSeries;

/// The per-sweep floor the CI fuzz job guarantees.
const MIN_CASES: usize = 1_000;

/// Valid chunk frames: every codec, several shapes, chunked so the corpus
/// includes both full-size and tail chunks.
fn chunk_corpus() -> Vec<Vec<u8>> {
    let shapes: Vec<RegularTimeSeries> = vec![
        RegularTimeSeries::new(
            0,
            60,
            (0..300).map(|i| 25.0 + (i as f64 * 0.05).sin() * 8.0).collect(),
        )
        .unwrap(),
        RegularTimeSeries::new(1_600_000_000, 900, vec![13.25; 120]).unwrap(),
        RegularTimeSeries::new(-120, 1, (0..90).map(|i| ((i % 13) as f64 - 6.0) * 1.7).collect())
            .unwrap(),
        RegularTimeSeries::new(7, 3600, vec![1.0, -2.5, 1.0e6]).unwrap(),
    ];
    let mut corpus = Vec::new();
    for (si, series) in shapes.iter().enumerate() {
        for (ci, codec) in [ChunkCodec::Gorilla, ChunkCodec::Pmc, ChunkCodec::Swing, ChunkCodec::Sz]
            .into_iter()
            .enumerate()
        {
            let eps = if codec == ChunkCodec::Gorilla { 0.0 } else { 0.05 };
            let store = TsStore::new(StoreConfig { max_chunk_points: 70, chunk_span: None });
            let id = SeriesId((si * 10 + ci) as u64);
            store.ingest(id, codec, eps, series).expect("corpus ingests");
            for chunk in store.read(id).expect("series exists").chunks() {
                corpus.push(chunk.to_bytes());
            }
        }
    }
    corpus
}

/// The totality oracle: parsing mutated bytes may fail but must not
/// panic; whatever parses must re-serialise to the same frame, decode
/// deterministically, and decode to exactly the point count the header
/// announces (the anti-over-allocation check — every `Ok` is backed by
/// real payload, not a length field).
fn assert_total(buf: &[u8], label: &str) {
    let mut r = ByteReader::new(buf);
    let Ok(chunk) = SealedChunk::from_bytes(&mut r) else { return };
    // A parsed chunk is CRC-clean and structurally valid: to_bytes must
    // reproduce the frame it was parsed from.
    let frame = chunk.to_bytes();
    assert_eq!(frame.len(), chunk.wire_len(), "wire_len lies: {label}");
    assert_eq!(&frame[..], &buf[..frame.len()], "reserialisation differs: {label}");
    match chunk.decode() {
        Ok(series) => {
            assert_eq!(series.len(), chunk.len(), "decode length != header count: {label}");
            assert_eq!(series.start(), chunk.start_ts(), "decode start differs: {label}");
            let again = chunk.decode().expect("second decode of same chunk");
            let a: Vec<u64> = series.values().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = again.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "decode must be deterministic: {label}");
        }
        Err(_) => {
            // A CRC-clean header over a payload the codec rejects is
            // possible only via splices of two valid frames; rejecting is
            // the correct total behaviour.
        }
    }
}

/// Sweeps mutations of whole chunk frames.
#[test]
fn chunk_frame_mutations_never_panic() {
    let corpus = chunk_corpus();
    assert!(corpus.len() >= 16, "corpus spans codecs and tail chunks");
    let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
    let total = sweep(&corpus, 0x5EA1_C0DE, rounds, assert_total);
    assert!(total >= MIN_CASES, "only {total} chunk fuzz cases");
}

/// Header-focused sweep: mutations concentrated on the 56-byte header are
/// far more likely to produce interesting parses than payload noise, so
/// give the header its own ≥1k-case budget.
#[test]
fn chunk_header_mutations_never_panic() {
    let corpus: Vec<Vec<u8>> = chunk_corpus()
        .into_iter()
        .map(|frame| frame[..store::CHUNK_HEADER_LEN.min(frame.len())].to_vec())
        .collect();
    let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
    let total = sweep(&corpus, 0x004E_ADE4, rounds, |buf, label| {
        let mut r = ByteReader::new(buf);
        // Headers without payload must always be rejected, never panic.
        assert!(SealedChunk::from_bytes(&mut r).is_err(), "payload-less parse: {label}");
    });
    assert!(total >= MIN_CASES, "only {total} header fuzz cases");
}

/// Every truncation prefix of every corpus frame is rejected cleanly —
/// the torn-write case, swept exhaustively rather than randomly.
#[test]
fn truncated_chunks_always_rejected() {
    for (i, frame) in chunk_corpus().iter().enumerate() {
        for cut in 0..frame.len() {
            let mut r = ByteReader::new(&frame[..cut]);
            assert!(
                SealedChunk::from_bytes(&mut r).is_err(),
                "frame {i} parsed from a {cut}-byte prefix"
            );
        }
    }
}
