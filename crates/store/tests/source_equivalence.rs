//! Property tests: a store-backed [`SeriesSource`] must be equivalent to
//! the legacy in-memory `Vec` path, bit for bit, for every chunk codec —
//! including reads and windows that cross chunk boundaries.
//!
//! The oracles:
//! - Gorilla staging is lossless: iteration returns the ingested values
//!   exactly (`f64::to_bits` equality), at the ingested timestamps.
//! - A lossy-ingested series equals the batch codec applied chunk by
//!   chunk: the store's online encoders must produce the same frames the
//!   batch compressor would for each chunk's slice (the
//!   streaming-equals-batch guarantee from `compression::streaming`,
//!   exercised here through the whole store stack).
//! - `make_windows_from` over store views is identical to `make_windows`
//!   over the materialised `MultiSeries`, with chunk sizes smaller than
//!   the window so every window spans a chunk seam.

use compression::ALL_METHODS;
use proptest::prelude::*;
use store::{ChunkCodec, SeriesId, StoreConfig, TsStore};
use tsdata::series::{MultiSeries, RegularTimeSeries, SeriesSource};
use tsdata::split::{make_windows, make_windows_from};

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn ingested(
    values: &[f64],
    start: i64,
    interval: i64,
    codec: ChunkCodec,
    eps: f64,
    chunk: usize,
) -> (TsStore, SeriesId) {
    let store = TsStore::new(StoreConfig { max_chunk_points: chunk, chunk_span: None });
    let id = SeriesId(1);
    let series = RegularTimeSeries::new(start, interval, values.to_vec()).expect("non-empty");
    store.ingest(id, codec, eps, &series).expect("ingest succeeds");
    (store, id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gorilla_store_iteration_is_bit_identical_to_vec(
        vals in prop::collection::vec(-1.0e6..1.0e6f64, 1..400),
        start in -1_000i64..1_000_000,
        interval in 1i64..3600,
        chunk in 1usize..64,
    ) {
        let (store, id) = ingested(&vals, start, interval, ChunkCodec::Gorilla, 0.0, chunk);
        let view = store.read(id).expect("series exists");

        prop_assert_eq!(view.len(), vals.len());
        prop_assert_eq!(view.start(), start);
        let decoded: Vec<f64> = view.iter_values().collect();
        prop_assert_eq!(bits(&decoded), bits(&vals));
        for (i, p) in view.iter_points().enumerate() {
            prop_assert_eq!(p.timestamp, start + i as i64 * interval);
        }
        // Chunk boundaries are where the policy put them.
        prop_assert_eq!(view.num_chunks(), vals.len().div_ceil(chunk));
    }

    #[test]
    fn lossy_store_iteration_matches_per_chunk_batch_codec(
        vals in prop::collection::vec(-100.0..100.0f64, 1..300),
        eps in 0.01..0.5f64,
        midx in 0usize..3,
        chunk in 8usize..96,
    ) {
        let method = ALL_METHODS[midx];
        let codec = match method {
            compression::Method::Pmc => ChunkCodec::Pmc,
            compression::Method::Swing => ChunkCodec::Swing,
            compression::Method::Sz => ChunkCodec::Sz,
        };
        let (start, interval) = (0i64, 60i64);
        let (store, id) = ingested(&vals, start, interval, codec, eps, chunk);
        let view = store.read(id).expect("series exists");
        let decoded: Vec<f64> = view.iter_values().collect();

        // Legacy reference: batch-compress each chunk's slice and
        // concatenate the decompressions.
        let compressor = method.compressor();
        let mut reference = Vec::with_capacity(vals.len());
        for (i, slice) in vals.chunks(chunk).enumerate() {
            let s = RegularTimeSeries::new(
                start + (i * chunk) as i64 * interval,
                interval,
                slice.to_vec(),
            )
            .expect("non-empty slice");
            let frame = compressor.compress(&s, eps).expect("batch compress");
            reference.extend(compressor.decompress(&frame).expect("batch decompress").into_values());
        }
        prop_assert_eq!(bits(&decoded), bits(&reference));

        // And the store never broke the paper's pointwise bound.
        prop_assert!(
            compression::find_bound_violation(&vals, &decoded, eps, 1e-9).is_none(),
            "{} violated eps={eps}", method.name()
        );
    }

    #[test]
    fn windows_from_store_views_match_legacy_windows(
        vals in prop::collection::vec(-50.0..50.0f64, 30..160),
        input_len in 2usize..12,
        horizon in 1usize..6,
        stride in 1usize..5,
        chunk in 3usize..9,
        target in 0usize..2,
    ) {
        // Two channels, chunked finer than one window so every window
        // crosses at least one chunk seam.
        let a = vals.clone();
        let b: Vec<f64> = vals.iter().map(|v| v * 0.5 - 3.0).collect();
        let series_a = RegularTimeSeries::new(0, 900, a).expect("non-empty");
        let series_b = RegularTimeSeries::new(0, 900, b).expect("non-empty");

        let store = TsStore::new(StoreConfig { max_chunk_points: chunk, chunk_span: None });
        store.ingest(SeriesId(0), ChunkCodec::Gorilla, 0.0, &series_a).expect("ingest a");
        store.ingest(SeriesId(1), ChunkCodec::Gorilla, 0.0, &series_b).expect("ingest b");
        let view_a = store.read(SeriesId(0)).expect("a");
        let view_b = store.read(SeriesId(1)).expect("b");

        let legacy = MultiSeries::new(
            vec!["a".into(), "b".into()],
            vec![series_a, series_b],
            target,
        )
        .expect("aligned channels");

        let expect = make_windows(&legacy, input_len, horizon, stride);
        let sources: Vec<&dyn SeriesSource> = vec![&view_a, &view_b];
        let got = make_windows_from(&sources, target, input_len, horizon, stride);

        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!(g.start, e.start);
            prop_assert_eq!(g.inputs.len(), e.inputs.len());
            for (gi, ei) in g.inputs.iter().zip(&e.inputs) {
                prop_assert_eq!(bits(gi), bits(ei));
            }
            prop_assert_eq!(bits(&g.target), bits(&e.target));
        }
    }
}

/// The edge the ring buffer must get right: chunks cut *exactly* at
/// `input_len`, so the first window's inputs fill chunk 0 completely and
/// its horizon starts on the chunk seam (and every later seam lands on a
/// window-internal boundary). The streamed windows must still match the
/// materialised path bit for bit.
#[test]
fn window_boundary_exactly_at_input_len_chunk_seam() {
    const INPUT_LEN: usize = 16;
    const HORIZON: usize = 4;
    let vals: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
    let series = RegularTimeSeries::new(0, 60, vals.clone()).expect("non-empty");

    let (store, id) = ingested(&vals, 0, 60, ChunkCodec::Gorilla, 0.0, INPUT_LEN);
    let view = store.read(id).expect("series exists");

    let legacy = MultiSeries::new(vec!["a".into()], vec![series], 0).expect("single channel");
    for stride in [1usize, INPUT_LEN] {
        let expect = make_windows(&legacy, INPUT_LEN, HORIZON, stride);
        let sources: Vec<&dyn SeriesSource> = vec![&view];
        let got = make_windows_from(&sources, 0, INPUT_LEN, HORIZON, stride);
        assert_eq!(got.len(), expect.len(), "stride {stride}");
        assert!(!got.is_empty());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.start, e.start);
            assert_eq!(bits(&g.inputs[0]), bits(&e.inputs[0]), "stride {stride} start {}", g.start);
            assert_eq!(bits(&g.target), bits(&e.target), "stride {stride} start {}", g.start);
        }
    }
    // With stride == input_len, window 0's inputs are exactly chunk 0 and
    // its horizon is the head of chunk 1.
    assert_eq!(store.num_chunks(id).expect("chunks"), 64 / INPUT_LEN);
}
