//! # bench — the reproduction harness
//!
//! The `repro` binary regenerates every table and figure from the paper
//! (see DESIGN.md §3 for the index); the Criterion benches under
//! `benches/` measure compressor/model/feature throughput and run the
//! ablations DESIGN.md §5 calls out.
//!
//! This library holds the argument parsing and experiment-selection logic
//! so it can be unit-tested.

use evalcore::grid::GridConfig;

/// Which experiment(s) to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1: dataset statistics.
    Table1,
    /// Figure 1: compressor outputs on a segment.
    Fig1,
    /// Figure 2: TE and CR per error bound (+ GORILLA baseline).
    Fig2,
    /// Figure 3: segment counts.
    Fig3,
    /// Table 3: CR = θ1·TE + θ0 regressions.
    Table3,
    /// Table 2: baseline forecasting accuracy.
    Table2,
    /// Figure 4: TFE vs TE.
    Fig4,
    /// Figure 5: SHAP characteristic ranking.
    Fig5,
    /// Table 4: Spearman correlations to TFE.
    Table4,
    /// Table 5: elbow analysis.
    Table5,
    /// Table 6: key-characteristic relative differences.
    Table6,
    /// Figure 6: average TFE per model.
    Fig6,
    /// Table 7: best models by NRMSE and TFE.
    Table7,
    /// Figure 7: retraining on decompressed data.
    Fig7,
    /// §4.4.1 trend/remainder decomposition impact.
    Decomp,
    /// The full §4.4.1 retrain grid (every configured cell retrains its
    /// model on decompressed data). Opt-in: expensive, so `all` skips it.
    Retrain,
    /// Everything, sharing one grid evaluation.
    All,
}

/// All individual experiments (excludes `All`, and `Retrain`, which is
/// opt-in because every one of its grid cells retrains a model).
pub const ALL_EXPERIMENTS: [Experiment; 15] = [
    Experiment::Table1,
    Experiment::Fig1,
    Experiment::Fig2,
    Experiment::Fig3,
    Experiment::Table3,
    Experiment::Table2,
    Experiment::Fig4,
    Experiment::Fig5,
    Experiment::Table4,
    Experiment::Table5,
    Experiment::Table6,
    Experiment::Fig6,
    Experiment::Table7,
    Experiment::Fig7,
    Experiment::Decomp,
];

impl Experiment {
    /// Parses an experiment name (case-insensitive).
    pub fn parse(s: &str) -> Option<Experiment> {
        Some(match s.to_ascii_lowercase().as_str() {
            "table1" => Experiment::Table1,
            "fig1" => Experiment::Fig1,
            "fig2" => Experiment::Fig2,
            "fig3" => Experiment::Fig3,
            "table3" => Experiment::Table3,
            "table2" => Experiment::Table2,
            "fig4" => Experiment::Fig4,
            "fig5" => Experiment::Fig5,
            "table4" => Experiment::Table4,
            "table5" => Experiment::Table5,
            "table6" => Experiment::Table6,
            "fig6" => Experiment::Fig6,
            "table7" => Experiment::Table7,
            "fig7" => Experiment::Fig7,
            "decomp" => Experiment::Decomp,
            "retrain" => Experiment::Retrain,
            "all" => Experiment::All,
            _ => return None,
        })
    }

    /// Whether the experiment requires the (expensive) forecasting grid.
    pub fn needs_forecast_grid(self) -> bool {
        !matches!(
            self,
            Experiment::Table1
                | Experiment::Fig1
                | Experiment::Fig2
                | Experiment::Fig3
                | Experiment::Table3
                | Experiment::Fig7
                | Experiment::Decomp
                | Experiment::Retrain
        )
    }
}

/// Run-scale presets for the repro binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke run (CI-friendly).
    Quick,
    /// The default laptop-scale reproduction.
    Default,
    /// Paper-scale (full lengths, all seeds; hours of compute).
    Paper,
}

/// Parsed command line for the repro binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiments to run.
    pub experiments: Vec<Experiment>,
    /// Run scale.
    pub scale: Scale,
    /// Optional dataset-length override.
    pub len: Option<usize>,
    /// Optional seed override.
    pub seed: Option<u64>,
    /// Directory to write CSV dumps of the grid results into.
    pub csv_dir: Option<String>,
    /// Artifact-store directory: fitted models are checkpointed here and
    /// loaded back on later runs with the same configuration.
    pub artifacts: Option<String>,
    /// Whether `--resume` was passed (requires `--artifacts`; documents
    /// the intent to continue a killed or previous run from the store).
    pub resume: bool,
    /// File to write the Prometheus text-format metrics dump into at the
    /// end of the run.
    pub metrics: Option<String>,
    /// File to write the Chrome trace-event JSON into at the end of the
    /// run (open in `about:tracing` or Perfetto).
    pub trace: Option<String>,
    /// Whether `--store` was passed: serve every transform from the
    /// chunked store instead of in-memory series (byte-identical results;
    /// see DESIGN.md §12).
    pub store: bool,
    /// Inference batch-size override for evaluation scoring (`0` = the
    /// legacy per-window predict loop; results are identical either way).
    pub batch_size: Option<usize>,
    /// Scheduler shard-count override (`0`/absent = one shard per
    /// worker). Results are identical for any value; see DESIGN.md §15.
    pub shards: Option<usize>,
    /// Chaos-schedule seed: inject deterministic worker kills, stalls,
    /// slow-downs, and callback panics into every engine run. Outputs
    /// must stay byte-identical to a clean run (the CI chaos-smoke job
    /// cmp's the CSVs).
    pub chaos: Option<u64>,
}

/// Parses `repro` arguments. Returns `Err` with a usage string on bad
/// input.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
    let usage = "usage: repro [all|table1|table2|...|fig7|decomp|retrain]... \
                 [--quick|--paper] [--len N] [--seed S] [--batch-size N] [--shards N] \
                 [--chaos SEED] [--csv DIR] [--artifacts DIR [--resume]] \
                 [--metrics FILE] [--trace FILE] [--store]";
    let mut experiments = Vec::new();
    let mut scale = Scale::Default;
    let mut len = None;
    let mut seed = None;
    let mut csv_dir = None;
    let mut artifacts = None;
    let mut resume = false;
    let mut metrics = None;
    let mut trace = None;
    let mut store = false;
    let mut batch_size = None;
    let mut shards = None;
    let mut chaos = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--len" => {
                let v = iter.next().ok_or_else(|| format!("--len needs a value\n{usage}"))?;
                len = Some(v.parse().map_err(|_| format!("bad --len {v}\n{usage}"))?);
            }
            "--seed" => {
                let v = iter.next().ok_or_else(|| format!("--seed needs a value\n{usage}"))?;
                seed = Some(v.parse().map_err(|_| format!("bad --seed {v}\n{usage}"))?);
            }
            "--csv" => {
                let v = iter.next().ok_or_else(|| format!("--csv needs a directory\n{usage}"))?;
                csv_dir = Some(v);
            }
            "--artifacts" => {
                let v =
                    iter.next().ok_or_else(|| format!("--artifacts needs a directory\n{usage}"))?;
                artifacts = Some(v);
            }
            "--resume" => resume = true,
            "--store" => store = true,
            "--batch-size" => {
                let v =
                    iter.next().ok_or_else(|| format!("--batch-size needs a value\n{usage}"))?;
                batch_size = Some(v.parse().map_err(|_| format!("bad --batch-size {v}\n{usage}"))?);
            }
            "--shards" => {
                let v = iter.next().ok_or_else(|| format!("--shards needs a value\n{usage}"))?;
                shards = Some(v.parse().map_err(|_| format!("bad --shards {v}\n{usage}"))?);
            }
            "--chaos" => {
                let v = iter.next().ok_or_else(|| format!("--chaos needs a seed\n{usage}"))?;
                chaos = Some(v.parse().map_err(|_| format!("bad --chaos {v}\n{usage}"))?);
            }
            "--metrics" => {
                let v = iter.next().ok_or_else(|| format!("--metrics needs a file\n{usage}"))?;
                metrics = Some(v);
            }
            "--trace" => {
                let v = iter.next().ok_or_else(|| format!("--trace needs a file\n{usage}"))?;
                trace = Some(v);
            }
            other => {
                let e = Experiment::parse(other)
                    .ok_or_else(|| format!("unknown experiment {other}\n{usage}"))?;
                experiments.push(e);
            }
        }
    }
    if resume && artifacts.is_none() {
        return Err(format!("--resume needs --artifacts DIR (the store to resume from)\n{usage}"));
    }
    if experiments.is_empty() {
        experiments.push(Experiment::All);
    }
    Ok(Cli {
        experiments,
        scale,
        len,
        seed,
        csv_dir,
        artifacts,
        resume,
        metrics,
        trace,
        store,
        batch_size,
        shards,
        chaos,
    })
}

/// Builds the grid configuration for a scale.
pub fn config_for(cli: &Cli) -> GridConfig {
    let mut cfg = match cli.scale {
        Scale::Quick => {
            let mut c = GridConfig::smoke();
            // The quick scale still covers all datasets and a model pair.
            c.datasets = tsdata::datasets::ALL_DATASETS.to_vec();
            c.len = Some(2_000);
            c.input_len = 48;
            c.horizon = 12;
            c.error_bounds = vec![0.01, 0.05, 0.1, 0.2, 0.4, 0.8];
            c
        }
        Scale::Default => GridConfig::default_repro(),
        Scale::Paper => GridConfig::paper(),
    };
    if let Some(len) = cli.len {
        cfg.len = Some(len);
    }
    if let Some(seed) = cli.seed {
        cfg.data_seed = seed;
    }
    cfg.artifacts = cli.artifacts.as_ref().map(std::path::PathBuf::from);
    cfg.store_backed = cli.store;
    if let Some(b) = cli.batch_size {
        cfg.batch_size = b;
    }
    if let Some(s) = cli.shards {
        cfg.shards = s;
    }
    cfg.chaos_seed = cli.chaos;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Cli, String> {
        parse_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_experiments_and_flags() {
        let cli = parse("table1 fig2 --quick --len 500 --seed 9 --csv out").unwrap();
        assert_eq!(cli.experiments, vec![Experiment::Table1, Experiment::Fig2]);
        assert_eq!(cli.scale, Scale::Quick);
        assert_eq!(cli.len, Some(500));
        assert_eq!(cli.seed, Some(9));
        assert_eq!(cli.csv_dir.as_deref(), Some("out"));
    }

    #[test]
    fn default_is_all() {
        let cli = parse("").unwrap();
        assert_eq!(cli.experiments, vec![Experiment::All]);
        assert_eq!(cli.scale, Scale::Default);
    }

    #[test]
    fn bad_input_rejected() {
        assert!(parse("tableX").is_err());
        assert!(parse("--len").is_err());
        assert!(parse("--len abc").is_err());
        assert!(parse("--csv").is_err());
    }

    #[test]
    fn every_experiment_name_round_trips() {
        for e in ALL_EXPERIMENTS {
            let name = format!("{e:?}").to_ascii_lowercase();
            assert_eq!(Experiment::parse(&name), Some(e), "{name}");
        }
        assert_eq!(Experiment::parse("all"), Some(Experiment::All));
        assert_eq!(Experiment::parse("retrain"), Some(Experiment::Retrain));
    }

    #[test]
    fn retrain_is_opt_in() {
        // `all` must not pull in the full retrain grid.
        assert!(!ALL_EXPERIMENTS.contains(&Experiment::Retrain));
        let cli = parse("retrain --quick").unwrap();
        assert_eq!(cli.experiments, vec![Experiment::Retrain]);
    }

    #[test]
    fn grid_requirements() {
        assert!(!Experiment::Table1.needs_forecast_grid());
        assert!(!Experiment::Fig2.needs_forecast_grid());
        assert!(Experiment::Table2.needs_forecast_grid());
        assert!(Experiment::Table5.needs_forecast_grid());
        assert!(!Experiment::Fig7.needs_forecast_grid());
        assert!(!Experiment::Retrain.needs_forecast_grid());
    }

    #[test]
    fn config_overrides_apply() {
        let cli = parse("table1 --quick --len 777 --seed 5").unwrap();
        let cfg = config_for(&cli);
        assert_eq!(cfg.len, Some(777));
        assert_eq!(cfg.data_seed, 5);
        assert_eq!(cfg.datasets.len(), 6);
        assert_eq!(cfg.artifacts, None);
    }

    #[test]
    fn batch_size_flag_threads_into_config() {
        let cli = parse("table2 --quick").unwrap();
        assert_eq!(cli.batch_size, None);
        assert_eq!(config_for(&cli).batch_size, 64, "default stays batched");
        let cli = parse("table2 --quick --batch-size 0").unwrap();
        assert_eq!(cli.batch_size, Some(0));
        assert_eq!(config_for(&cli).batch_size, 0, "0 selects the legacy path");
        let cli = parse("table2 --quick --batch-size 128").unwrap();
        assert_eq!(config_for(&cli).batch_size, 128);
        assert!(parse("--batch-size").is_err());
        assert!(parse("--batch-size x").is_err());
    }

    #[test]
    fn shards_and_chaos_flags_thread_into_config() {
        let cli = parse("table1 --quick").unwrap();
        assert_eq!(cli.shards, None);
        assert_eq!(cli.chaos, None);
        let cfg = config_for(&cli);
        assert_eq!(cfg.shards, 0, "default auto-shards");
        assert_eq!(cfg.chaos_seed, None, "no fault injection by default");
        let cli = parse("table1 --quick --shards 4 --chaos 99").unwrap();
        assert_eq!(cli.shards, Some(4));
        assert_eq!(cli.chaos, Some(99));
        let cfg = config_for(&cli);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.chaos_seed, Some(99));
        assert!(parse("--shards").is_err());
        assert!(parse("--shards x").is_err());
        assert!(parse("--chaos").is_err());
        assert!(parse("--chaos x").is_err());
    }

    #[test]
    fn artifacts_flag_threads_into_config() {
        let cli = parse("table2 --quick --artifacts store").unwrap();
        assert_eq!(cli.artifacts.as_deref(), Some("store"));
        assert!(!cli.resume);
        let cfg = config_for(&cli);
        assert_eq!(cfg.artifacts.as_deref(), Some(std::path::Path::new("store")));
    }

    #[test]
    fn metrics_and_trace_flags_parse() {
        let cli = parse("table1 --quick --metrics out.prom --trace out.json").unwrap();
        assert_eq!(cli.metrics.as_deref(), Some("out.prom"));
        assert_eq!(cli.trace.as_deref(), Some("out.json"));
        assert!(parse("--metrics").is_err());
        assert!(parse("--trace").is_err());
        let cli = parse("table1").unwrap();
        assert_eq!(cli.metrics, None);
        assert_eq!(cli.trace, None);
    }

    #[test]
    fn resume_requires_artifacts() {
        assert!(parse("table2 --resume").is_err());
        assert!(parse("--artifacts").is_err());
        let cli = parse("table2 --artifacts store --resume").unwrap();
        assert!(cli.resume);
        assert_eq!(cli.artifacts.as_deref(), Some("store"));
    }
}
