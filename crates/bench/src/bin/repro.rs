//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --release --bin repro -- all            # default scale
//! cargo run -p bench --release --bin repro -- table2 --quick # one experiment
//! cargo run -p bench --release --bin repro -- all --paper    # paper scale
//! ```
//!
//! Telemetry is enabled for the whole run (this is the instrumented
//! binary; the recording overhead is within noise). `--metrics FILE`
//! writes the Prometheus text dump, `--trace FILE` the Chrome trace-event
//! JSON (open in `about:tracing` / Perfetto); passing either also prints
//! an end-of-run summary (slowest tasks, cache hit rates, per-model fit
//! time) on stderr. All experiment output on stdout is byte-identical
//! with or without these flags.

use bench::{config_for, parse_args, Experiment, ALL_EXPERIMENTS};
use evalcore::experiments::{
    characteristics_exp, compression_exp, elbows_exp, fig1, forecasting_exp, retrain_exp, table1,
};
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    telemetry::set_enabled(true);
    let cfg = config_for(&cli);
    let experiments: Vec<Experiment> = if cli.experiments.contains(&Experiment::All) {
        ALL_EXPERIMENTS.to_vec()
    } else {
        cli.experiments.clone()
    };

    println!(
        "EvalImpLSTS reproduction — scale {:?}, dataset length {:?}, {} thread(s), {} shard(s)\n",
        cli.scale,
        cfg.len.map_or("paper-full".to_string(), |l| l.to_string()),
        cfg.threads,
        if cfg.shards == 0 { "auto".to_string() } else { cfg.shards.to_string() }
    );
    if let Some(seed) = cfg.chaos_seed {
        eprintln!(
            "[repro] chaos mode: seed {seed} injects deterministic worker kills/stalls/\
             callback panics; outputs must match a clean run byte-for-byte"
        );
    }
    if let Some(dir) = &cli.artifacts {
        eprintln!(
            "[repro] artifact store: {dir}{}",
            if cli.resume { " (resuming: stored fits are reused)" } else { "" }
        );
    }
    if cli.store {
        eprintln!("[repro] store-backed: transforms stream from the chunked store");
    }

    // Shared expensive stages, computed lazily at most once.
    let mut compression: Option<compression_exp::CompressionExperiment> = None;
    let mut forecast: Option<forecasting_exp::ForecastExperiment> = None;
    let mut elbows: Option<elbows_exp::Table5> = None;
    let mut chars: Option<characteristics_exp::CharacteristicsExperiment> = None;
    let mut retrain: Option<retrain_exp::RetrainGrid> = None;

    let get_compression =
        |cfg: &evalcore::GridConfig, cache: &mut Option<compression_exp::CompressionExperiment>| {
            if cache.is_none() {
                eprintln!("[repro] running compression grid...");
                *cache = Some(compression_exp::run(cfg));
            }
            cache.clone().expect("just populated")
        };
    let get_forecast =
        |cfg: &evalcore::GridConfig, cache: &mut Option<forecasting_exp::ForecastExperiment>| {
            if cache.is_none() {
                eprintln!("[repro] running forecasting grid (this is the long part)...");
                *cache = Some(forecasting_exp::run(cfg));
            }
            cache.clone().expect("just populated")
        };

    for exp in experiments {
        let started = std::time::Instant::now();
        let output = match exp {
            Experiment::Table1 => table1::run(cfg.len, cfg.data_seed).render(),
            Experiment::Fig1 => {
                let mut out = fig1::run(DatasetKind::ETTm1, 256, cfg.data_seed).render();
                out.push('\n');
                out.push_str(&fig1::run(DatasetKind::ETTm2, 256, cfg.data_seed).render());
                out
            }
            Experiment::Fig2 => get_compression(&cfg, &mut compression).render_fig2(),
            Experiment::Fig3 => get_compression(&cfg, &mut compression).render_fig3(),
            Experiment::Table3 => get_compression(&cfg, &mut compression).render_table3(),
            Experiment::Table2 => get_forecast(&cfg, &mut forecast).render_table2(),
            Experiment::Fig4 => get_forecast(&cfg, &mut forecast).render_fig4(),
            Experiment::Fig5 => {
                let f = get_forecast(&cfg, &mut forecast);
                chars.get_or_insert_with(|| characteristics_exp::run(&f)).render_fig5(9)
            }
            Experiment::Table4 => {
                let f = get_forecast(&cfg, &mut forecast);
                chars.get_or_insert_with(|| characteristics_exp::run(&f)).render_table4(10)
            }
            Experiment::Table5 => {
                let f = get_forecast(&cfg, &mut forecast);
                let t5 = elbows_exp::run(&f);
                let rendered = t5.render();
                elbows = Some(t5);
                rendered
            }
            Experiment::Table6 => {
                let f = get_forecast(&cfg, &mut forecast);
                chars.get_or_insert_with(|| characteristics_exp::run(&f)).render_table6()
            }
            Experiment::Fig6 | Experiment::Table7 => {
                let f = get_forecast(&cfg, &mut forecast);
                if elbows.is_none() {
                    elbows = Some(elbows_exp::run(&f));
                }
                let caps = elbows.as_ref().expect("populated above").eb_caps();
                if exp == Experiment::Fig6 {
                    f.render_fig6(&caps)
                } else {
                    f.render_table7(&caps)
                }
            }
            Experiment::Fig7 => {
                let mut retrain_cfg = cfg.clone();
                retrain_cfg.datasets = vec![DatasetKind::ETTm1, DatasetKind::ETTm2];
                let bounds: Vec<f64> =
                    cfg.error_bounds.iter().copied().filter(|&e| e <= 0.2 + 1e-9).collect();
                retrain_exp::run(&retrain_cfg, &[ModelKind::Arima, ModelKind::DLinear], &bounds)
                    .render()
            }
            Experiment::Decomp => retrain_exp::render_decomposition(&cfg),
            Experiment::Retrain => {
                eprintln!("[repro] running retrain grid (each cell retrains its model)...");
                let ctx = evalcore::GridContext::new(cfg.clone());
                let engine = evalcore::Engine::new(&ctx).on_task_done(|ev| {
                    // `seq` counts completions (the pace); `coord` names
                    // the task that just finished (stealing reorders them).
                    eprintln!(
                        "[repro] retrain {}/{} {:?}: {}",
                        ev.seq + 1,
                        ev.total,
                        ev.status,
                        ev.coord
                    );
                });
                let grid = retrain_exp::run_grid_with(&engine);
                let rendered = grid.render();
                retrain = Some(grid);
                rendered
            }
            Experiment::All => unreachable!("expanded above"),
        };
        println!("{output}");
        eprintln!("[repro] {exp:?} done in {:.1?}\n", started.elapsed());
    }

    // The checkpoint summary: a fully resumed run reports fitted=0. The
    // totals come from the telemetry registry (the single source of truth
    // for loaded/fitted counts), summed across all model labels.
    if let Some(dir) = &cli.artifacts {
        let registry = telemetry::global().metrics();
        let loaded = registry.counter_total("models_loaded_total");
        let fitted = registry.counter_total("models_fitted_total");
        eprintln!("[repro] artifacts: loaded={loaded} fitted={fitted} dir={dir}");
    }

    // Optional CSV dumps of whatever grids were evaluated.
    if let Some(dir) = &cli.csv_dir {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[repro] cannot create csv dir {}: {e}", dir.display());
            return;
        }
        let write = |name: &str, contents: String| match std::fs::write(dir.join(name), contents) {
            Ok(()) => eprintln!("[repro] wrote {}", dir.join(name).display()),
            Err(e) => eprintln!("[repro] failed writing {name}: {e}"),
        };
        if let Some(comp) = &compression {
            write("compression.csv", evalcore::results::compression_csv(&comp.records));
        }
        if let Some(fore) = &forecast {
            write("forecast.csv", evalcore::results::forecast_csv(&fore.forecast));
            // Figure-4 points: the TFE-vs-TE series per (dataset, method).
            let mut fig4 = String::from("dataset,method,epsilon,te,mean_tfe,ci95\n");
            for (d, m, e, te, tfe, ci) in fore.fig4_points() {
                fig4.push_str(&format!("{},{},{},{},{},{}\n", d.name(), m.name(), e, te, tfe, ci));
            }
            write("fig4_points.csv", fig4);
        }
        if let Some(grid) = &retrain {
            write("retrain.csv", evalcore::results::forecast_csv(&grid.records));
        }
    }

    // Telemetry export: snapshot once, feed every consumer the same data.
    if cli.metrics.is_some() || cli.trace.is_some() {
        let snapshots = telemetry::global().metrics().snapshot();
        let spans = telemetry::global().spans().snapshot();
        eprint!("{}", render_summary(&snapshots, &spans));
        let write = |path: &str, contents: String| match std::fs::write(path, contents) {
            Ok(()) => eprintln!("[repro] wrote {path}"),
            Err(e) => eprintln!("[repro] failed writing {path}: {e}"),
        };
        if let Some(path) = &cli.metrics {
            write(path, telemetry::export::prometheus(&snapshots));
        }
        if let Some(path) = &cli.trace {
            write(path, telemetry::export::chrome_trace(&spans));
        }
    }
}

/// Renders the end-of-run observability summary: the slowest engine
/// tasks, cache hit rates, and per-model fit time.
fn render_summary(
    snapshots: &[telemetry::MetricSnapshot],
    spans: &[telemetry::SpanRecord],
) -> String {
    use std::fmt::Write as _;
    let counter = |name: &str| -> u64 {
        snapshots.iter().filter(|s| s.name == name).filter_map(|s| s.value.as_counter()).sum()
    };
    let mut out = String::from("[repro] == telemetry summary ==\n");

    let slow = telemetry::slowest(spans, "engine.task", 10);
    if !slow.is_empty() {
        out.push_str("[repro] slowest tasks:\n");
        for r in &slow {
            let label = |key: &str| {
                r.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str()).unwrap_or("")
            };
            let _ = writeln!(
                out,
                "[repro]   {:>9.3}s  {:<11} {:<8} {:<6} eps={:<6} model={} seed={}",
                r.dur_us as f64 / 1e6,
                label("family"),
                label("dataset"),
                label("method"),
                label("epsilon"),
                label("model"),
                label("seed"),
            );
        }
    }

    let mut cache_line = |what: &str, hits: u64, misses: u64| {
        let total = hits + misses;
        if total > 0 {
            let _ = writeln!(
                out,
                "[repro] {what} cache: {hits} hit(s) / {misses} miss(es) ({:.1}% hit rate)",
                100.0 * hits as f64 / total as f64
            );
        }
    };
    cache_line(
        "transform",
        counter("transform_cache_hits_total"),
        counter("transform_cache_misses_total"),
    );
    cache_line(
        "dataset",
        counter("dataset_cache_hits_total"),
        counter("dataset_cache_misses_total"),
    );

    // Store-backed runs: ingest volume, sealed chunks per codec, and the
    // seal/read latency histograms (zero everywhere on legacy runs, so
    // the section only prints when the store actually ran).
    let ingested = counter("store_points_ingested_total");
    if ingested > 0 {
        let _ = writeln!(out, "[repro] store: {ingested} point(s) ingested");
        for s in snapshots.iter().filter(|s| s.name == "store_chunks_sealed_total") {
            let codec =
                s.labels.iter().find(|(k, _)| k == "codec").map(|(_, v)| v.as_str()).unwrap_or("?");
            if let Some(sealed) = s.value.as_counter() {
                let _ = writeln!(out, "[repro]   {codec:<8} {sealed} chunk(s) sealed");
            }
        }
        for (name, what) in [("store_seal_seconds", "seal"), ("store_read_seconds", "read")] {
            let (count, sum) = snapshots
                .iter()
                .filter(|s| s.name == name)
                .filter_map(|s| s.value.as_histogram_totals())
                .fold((0u64, 0.0f64), |(c, t), (n, s)| (c + n, t + s));
            if count > 0 {
                let _ = writeln!(
                    out,
                    "[repro]   {what}: {count} op(s) {sum:.3}s total {:.1}us avg",
                    1e6 * sum / count as f64
                );
            }
        }
    }

    let mut fit_rows: Vec<(&str, u64, f64)> = snapshots
        .iter()
        .filter(|s| s.name == "model_fit_seconds")
        .filter_map(|s| {
            let (count, sum) = s.value.as_histogram_totals()?;
            let model =
                s.labels.iter().find(|(k, _)| k == "model").map(|(_, v)| v.as_str()).unwrap_or("?");
            Some((model, count, sum))
        })
        .collect();
    fit_rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    if !fit_rows.is_empty() {
        out.push_str("[repro] fit time per model:\n");
        for (model, count, sum) in fit_rows {
            let _ = writeln!(
                out,
                "[repro]   {model:<12} {count:>4} fit(s) {sum:>9.3}s total {:>8.3}s avg",
                sum / count.max(1) as f64
            );
        }
    }

    // Batched inference: windows predicted and predict_batch latency per
    // model, mirroring the fit section above.
    let windows_for = |model: &str| -> u64 {
        snapshots
            .iter()
            .filter(|s| s.name == "predict_windows_total")
            .filter(|s| s.labels.iter().any(|(k, v)| k == "model" && v == model))
            .filter_map(|s| s.value.as_counter())
            .sum()
    };
    let mut predict_rows: Vec<(&str, u64, f64)> = snapshots
        .iter()
        .filter(|s| s.name == "predict_batch_seconds")
        .filter_map(|s| {
            let (count, sum) = s.value.as_histogram_totals()?;
            let model =
                s.labels.iter().find(|(k, _)| k == "model").map(|(_, v)| v.as_str()).unwrap_or("?");
            Some((model, count, sum))
        })
        .collect();
    predict_rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    if !predict_rows.is_empty() {
        out.push_str("[repro] inference per model:\n");
        for (model, batches, sum) in predict_rows {
            let windows = windows_for(model);
            let _ = writeln!(
                out,
                "[repro]   {model:<12} {windows:>6} window(s) in {batches:>5} batch(es) \
                 {sum:>9.3}s total {:>9.0} windows/s",
                windows as f64 / sum.max(1e-9)
            );
        }
    }
    out
}
