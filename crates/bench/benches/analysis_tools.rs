//! Cost of the analysis toolkit: the 42-characteristic extraction, TreeSHAP
//! attribution, Kneedle, and the Spearman correlation — the per-cell cost
//! of the paper's §4.3 analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use analysis::correlation::spearman;
use analysis::features::{extract, FeatureOptions, NUM_FEATURES};
use analysis::kneedle::{kneedle, Shape};
use analysis::shap::gbm_shap;
use forecast::gboost::{GbmConfig, GbmRegressor};
use tsdata::datasets::{generate_univariate, DatasetKind, GenOptions};

fn bench_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("features42");
    group.sample_size(10);
    for n in [2_000usize, 8_000] {
        let series = generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(n));
        let opts = FeatureOptions { period: Some(96), shift_window: 48, cap: None };
        group.bench_with_input(BenchmarkId::from_parameter(n), &series, |b, s| {
            b.iter(|| extract(black_box(s.values()), opts))
        });
    }
    group.finish();
}

fn bench_shap(c: &mut Criterion) {
    // A TFE-predictor-sized model: 42 features, 80 trees of depth 3.
    let n = 200;
    let mut state = 7u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let features: Vec<f64> = (0..n * NUM_FEATURES).map(|_| rand() * 2.0).collect();
    let targets: Vec<f64> =
        (0..n).map(|r| features[r * NUM_FEATURES] * 2.0 + features[r * NUM_FEATURES + 1]).collect();
    let model = GbmRegressor::fit(
        &features,
        &targets,
        NUM_FEATURES,
        GbmConfig { n_estimators: 80, ..Default::default() },
    );
    c.bench_function("treeshap/80trees_42features", |b| {
        b.iter(|| gbm_shap(black_box(&model), black_box(&features[..NUM_FEATURES])))
    });
}

fn bench_kneedle_and_spearman(c: &mut Criterion) {
    let x: Vec<f64> = (0..13).map(|i| 0.01 + i as f64 * 0.006).collect();
    let y: Vec<f64> = x.iter().map(|&t| (t - 0.04).max(0.0).powi(2) * 100.0).collect();
    c.bench_function("kneedle/13pt_curve", |b| {
        b.iter(|| kneedle(black_box(&x), black_box(&y), Shape::ConvexIncreasing, 1.0))
    });
    let a: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
    let bb: Vec<f64> = (0..500).map(|i| ((i * 53) % 97) as f64).collect();
    c.bench_function("spearman/500", |b| b.iter(|| spearman(black_box(&a), black_box(&bb))));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_features, bench_shap, bench_kneedle_and_spearman
);
criterion_main!(benches);
