//! Codec throughput bench: encode+decode bytes/sec for every compressor,
//! plus head-to-head rows for the blocked kernels this repo ships against
//! their scalar baselines (varbit timestamp decode, Huffman bit-walk
//! symbol decode) measured in the same run, on the same host.
//!
//! Run with `cargo bench --bench codecs`; set `BENCH_SMOKE=1` for the CI
//! short mode. Writes `BENCH_codecs.json` at the workspace root (committed
//! so throughput regressions show up in review diffs) and asserts the
//! PR's acceptance criterion: >=4x decode speedup for blocked timestamps
//! and blocked SZ symbol unpack over the scalar paths.
//!
//! A `calibration/memcpy` row pins the host's raw copy bandwidth so the CI
//! regression check can normalise codec numbers across machines.

use compression::bitstream::{BitReader, BitWriter};
use compression::block::{self, Kernel};
use compression::codec::{raw_bytes, PeblcCompressor};
use compression::gorilla::Gorilla;
use compression::huffman::CanonicalCode;
use compression::pmc::Pmc;
use compression::ppa::Ppa;
use compression::reader::ByteReader;
use compression::swing::Swing;
use compression::sz::Sz;
use compression::{deflate, timestamps};
use criterion::{black_box, Criterion, Throughput};
use tsdata::series::RegularTimeSeries;

/// CI short mode: fewer samples, smaller inputs, same row set.
fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn codecs() -> Vec<Box<dyn PeblcCompressor>> {
    vec![Box::new(Pmc), Box::new(Swing), Box::new(Sz), Box::new(Gorilla), Box::new(Ppa::default())]
}

/// The series every per-codec row compresses: the ETTm1 recreation the
/// evaluation grid itself runs on.
fn bench_series(len: usize) -> RegularTimeSeries {
    tsdata::datasets::generate_univariate(
        tsdata::datasets::DatasetKind::ETTm1,
        tsdata::datasets::GenOptions::with_len(len),
    )
}

/// Encode + decode bytes/sec per codec, measured end-to-end through the
/// DEFLATE container exactly as the evaluation grid pays for them.
fn bench_codecs(c: &mut Criterion, len: usize) {
    let series = bench_series(len);
    let raw = raw_bytes(&series).len() as u64;

    let mut group = c.benchmark_group("codec_encode");
    group.throughput(Throughput::Bytes(raw));
    for codec in codecs() {
        group.bench_function(codec.name(), |b| {
            b.iter(|| codec.compress(black_box(&series), 0.1).expect("encodes"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("codec_decode");
    group.throughput(Throughput::Bytes(raw));
    for codec in codecs() {
        let frame = codec.compress(&series, 0.1).expect("encodes");
        group.bench_function(codec.name(), |b| {
            b.iter(|| codec.decompress(black_box(&frame)).expect("decodes"))
        });
    }
    group.finish();

    // The shared lossless container on its own.
    let inner = raw_bytes(&series);
    let frame = deflate::compress(&inner);
    let mut group = c.benchmark_group("deflate");
    group.throughput(Throughput::Bytes(raw));
    group.bench_function("encode", |b| b.iter(|| deflate::compress(black_box(&inner))));
    group.bench_function("decode", |b| {
        b.iter(|| deflate::decompress(black_box(&frame)).expect("decodes"))
    });
    group.finish();
}

/// Blocked timestamp stream decode vs the varbit (Gorilla-style
/// prefix-code) scalar baseline, on event-like timestamps with
/// heavy-tailed per-value arrival jitter: delta-of-deltas land
/// unpredictably in the varbit 7/9/12-bit buckets, so the prefix decoder
/// pays its data-dependent branches on every timestamp, while the blocked
/// path unpacks fixed-width lanes branch-free.
fn bench_timestamp_stream(c: &mut Criterion, n: usize) {
    let ts: Vec<i64> = (0..n as u64)
        .map(|i| {
            let mut s = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            s ^= s >> 31;
            let jitter = match s % 10 {
                0..=5 => (s >> 8) % 31,  // in-step noise (7-bit dods)
                6..=8 => (s >> 8) % 201, // late packets (9-bit dods)
                _ => (s >> 8) % 1601,    // stalls (12-bit dods)
            };
            1_600_000_000 + i as i64 * 60 + jitter as i64
        })
        .collect();
    let varbit = timestamps::encode_stream_varbit(&ts);
    let blocked = timestamps::encode_stream_blocked(&ts);

    let mut group = c.benchmark_group("timestamp_stream");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.bench_function("encode_varbit", |b| {
        b.iter(|| timestamps::encode_stream_varbit(black_box(&ts)))
    });
    group.bench_function("encode_blocked", |b| {
        b.iter(|| timestamps::encode_stream_blocked(black_box(&ts)))
    });
    group.bench_function("decode_varbit", |b| {
        b.iter(|| {
            let mut r = ByteReader::new(black_box(&varbit));
            timestamps::decode_stream(&mut r).expect("decodes")
        })
    });
    group.bench_function("decode_blocked", |b| {
        b.iter(|| {
            let mut r = ByteReader::new(black_box(&blocked));
            timestamps::decode_stream(&mut r).expect("decodes")
        })
    });
    group.finish();
}

/// SZ quantizer-symbol decode three ways: the legacy Huffman bit-walk
/// (scalar baseline), the 8-bit Huffman prefix table, and the blocked
/// zigzag packing SZ now writes. Symbols follow the skewed near-zero
/// distribution real quantization codes have.
fn bench_sz_symbols(c: &mut Criterion, n: usize) {
    // m in [-512, 512], heavily concentrated near 0 like smooth sensor data.
    let codes: Vec<i64> = (0..n as u64)
        .map(|i| {
            let mut s = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            s ^= s >> 29;
            match s % 100 {
                0..=69 => (s % 3) as i64 - 1,
                70..=94 => (s % 31) as i64 - 15,
                _ => (s % 1025) as i64 - 512,
            }
        })
        .collect();

    // Huffman stream over the shifted alphabet, as SZ mode 1 wrote it.
    let mut freqs = vec![0u64; 1026];
    for &m in &codes {
        freqs[(m + 512) as usize] += 1;
    }
    let code = CanonicalCode::from_freqs(&freqs).expect("code builds");
    let mut w = BitWriter::new();
    for &m in &codes {
        code.encode((m + 512) as usize, &mut w);
    }
    let huff_bytes = w.into_bytes();

    // Blocked stream over zigzagged codes, as SZ mode 2 writes it.
    let zz: Vec<u64> = codes.iter().map(|&m| block::zigzag(m)).collect();
    let packed = block::encode_u64s(&zz);

    let mut group = c.benchmark_group("sz_symbols");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("huffman_walk", |b| {
        b.iter(|| {
            let mut r = BitReader::new(black_box(&huff_bytes));
            let mut acc = 0usize;
            for _ in 0..n {
                acc ^= code.decode_walk(&mut r).expect("decodes");
            }
            acc
        })
    });
    group.bench_function("huffman_table", |b| {
        b.iter(|| {
            let mut r = BitReader::new(black_box(&huff_bytes));
            let mut acc = 0usize;
            for _ in 0..n {
                acc ^= code.decode(&mut r).expect("decodes");
            }
            acc
        })
    });
    group.bench_function("blocked", |b| {
        b.iter(|| {
            let mut r = ByteReader::new(black_box(&packed));
            block::decode_u64s_with(&mut r, Kernel::Blocked).expect("decodes")
        })
    });
    group.bench_function("blocked_scalar_kernel", |b| {
        b.iter(|| {
            let mut r = ByteReader::new(black_box(&packed));
            block::decode_u64s_with(&mut r, Kernel::Scalar).expect("decodes")
        })
    });
    group.finish();
}

/// Raw copy bandwidth of this host: the unit CI normalises against so a
/// slower runner does not read as a codec regression.
fn bench_calibration(c: &mut Criterion, len: usize) {
    let src = vec![0xA5u8; len];
    let mut group = c.benchmark_group("calibration");
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_function("memcpy", |b| b.iter(|| black_box(&src).to_vec()));
    group.finish();
}

fn main() {
    // Smoke mode keeps the full-mode workloads (so CI throughputs compare
    // against the committed full-mode baseline) and only trims samples.
    let (len, samples) = if smoke() { (8_192, 8) } else { (8_192, 20) };
    let mut criterion = Criterion::default().sample_size(samples);
    bench_codecs(&mut criterion, len);
    bench_timestamp_stream(&mut criterion, len);
    bench_sz_symbols(&mut criterion, 4 * len);
    bench_calibration(&mut criterion, 1 << 20);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codecs.json");
    criterion.save_json(path).expect("write BENCH_codecs.json");
    println!("wrote {path}");

    // Acceptance criterion from the blocked-kernel PR, checked against the
    // scalar baselines measured moments ago in this very process. Min-time
    // is the robust estimator on a noisy host: interference only ever
    // inflates a sample.
    let records = criterion.records();
    let min_ns = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.min_ns)
            .expect("record present")
    };
    let ts_speedup =
        min_ns("timestamp_stream", "decode_varbit") / min_ns("timestamp_stream", "decode_blocked");
    println!("blocked timestamp decode vs varbit: {ts_speedup:.2}x");
    let sz_speedup = min_ns("sz_symbols", "huffman_walk") / min_ns("sz_symbols", "blocked");
    println!("blocked SZ symbol decode vs huffman walk: {sz_speedup:.2}x");
    // Smoke mode's 8 samples are too few for a hard gate; CI's own check
    // is the normalised regression diff against the committed baseline.
    if !smoke() {
        assert!(ts_speedup >= 4.0, "blocked timestamp decode speedup {ts_speedup:.2}x < 4x");
        assert!(sz_speedup >= 4.0, "blocked SZ symbol decode speedup {sz_speedup:.2}x < 4x");
    }
}
