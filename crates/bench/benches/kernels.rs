//! Tensor-kernel microbenchmarks: blocked matmul vs the scalar reference
//! kernel, layout-aware (`A·Bᵀ`, `Aᵀ·B`) variants vs explicit transposes,
//! and cached vs uncached grid transforms.
//!
//! Run with `cargo bench --bench kernels`. Besides printing a table, this
//! bench writes a machine-readable summary to `BENCH_kernels.json` at the
//! workspace root, which is committed so kernel regressions show up in
//! review diffs.

use compression::Method;
use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use evalcore::cache::{GridContext, Subset};
use evalcore::grid::GridConfig;
use evalcore::scenario::transform_series;
use neural::Tensor;
use tsdata::datasets::DatasetKind;

/// Deterministic dense matrix with values in [-1, 1).
fn matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect();
    Tensor::new(rows, cols, data)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128, 512] {
        let a = matrix(n, n, 1);
        let b = matrix(n, n, 2);
        // 2·n³ flops per square product.
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).reference_matmul(black_box(&b)))
        });
    }
    group.finish();
}

fn bench_matmul_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_into");
    for &n in &[32usize, 128] {
        let a = matrix(n, n, 3);
        let b = matrix(n, n, 4);
        let mut out = Tensor::zeros(n, n);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                black_box(&a).matmul_into(black_box(&b), &mut out);
                out.get(0, 0)
            })
        });
    }
    group.finish();
}

fn bench_layout_variants(c: &mut Criterion) {
    let n = 128usize;
    let a = matrix(n, n, 5);
    let b = matrix(n, n, 6);
    let mut group = c.benchmark_group("layout");
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    group.bench_function("nt_fused", |bench| bench.iter(|| black_box(&a).matmul_nt(black_box(&b))));
    group.bench_function("nt_via_transpose", |bench| {
        bench.iter(|| black_box(&a).matmul(&black_box(&b).transpose()))
    });
    group.bench_function("tn_fused", |bench| bench.iter(|| black_box(&a).matmul_tn(black_box(&b))));
    group.bench_function("tn_via_transpose", |bench| {
        bench.iter(|| black_box(&a).transpose().matmul(black_box(&b)))
    });
    group.finish();
}

fn bench_transform_cache(c: &mut Criterion) {
    // The forecast grid's hot lookup: `models x seeds` tasks request the
    // same (dataset, method, eps) test transform. "uncached" is what every
    // task paid before the shared cache; "cached" is the steady-state hit.
    let mut cfg = GridConfig::smoke();
    cfg.len = Some(4_000);
    let ctx = GridContext::new(cfg);
    let kind = DatasetKind::ETTm1;
    let ds = ctx.dataset(kind);
    let mut group = c.benchmark_group("transform_cache");
    group.throughput(Throughput::Elements(ds.split.test.len() as u64));
    group.bench_function("uncached", |bench| {
        bench.iter(|| {
            transform_series(&ds.split.test, Method::Sz.compressor().as_ref(), 0.1)
                .expect("transform succeeds")
        })
    });
    group.bench_function("cached", |bench| {
        bench.iter(|| {
            ctx.transform(black_box(kind), Subset::Test, Method::Sz, 0.1)
                .expect("transform succeeds")
        })
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().sample_size(20);
    bench_matmul(&mut criterion);
    bench_matmul_into(&mut criterion);
    bench_layout_variants(&mut criterion);
    bench_transform_cache(&mut criterion);

    // cargo bench runs with the package dir as cwd; anchor the summary at
    // the workspace root so it lands next to the sources it measures.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    criterion.save_json(path).expect("write BENCH_kernels.json");
    println!("wrote {path}");

    // Guardrail mirroring the acceptance criterion: the blocked kernel
    // must beat the scalar reference by >=2x on the 128x128 product.
    // Min-time is the robust estimator on a shared/noisy host: external
    // interference only ever inflates a sample, never deflates it.
    let records = criterion.records();
    let min_ns = |id: &str| {
        records
            .iter()
            .find(|r| r.group == "matmul" && r.id == id)
            .map(|r| r.min_ns)
            .expect("record present")
    };
    let speedup = min_ns("reference/128") / min_ns("blocked/128");
    println!("blocked vs reference @128: {speedup:.2}x");
    assert!(speedup >= 2.0, "blocked matmul speedup {speedup:.2}x < 2x at 128");
}
