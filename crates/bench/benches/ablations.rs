//! Ablation benches for the design choices DESIGN.md §5 calls out.
//! Criterion measures runtime; each bench also prints the quality metric
//! the ablation is about (CR or bits) once at setup, so `cargo bench`
//! output doubles as the ablation report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use compression::bitstream::BitWriter;
use compression::codec::PeblcCompressor;
use compression::deflate;
use compression::gorilla::compress_values;
use compression::pmc::{segment_values_repr, Representative};
use compression::ppa::Ppa;
use compression::{raw_compressed_size, Pmc, Swing, Sz};
use forecast::gboost::{GBoost, GBoostConfig, MultiStep};
use forecast::model::Forecaster;
use tsdata::datasets::{generate, generate_univariate, DatasetKind, GenOptions};
use tsdata::split::{split, SplitSpec};

fn series(n: usize) -> tsdata::series::RegularTimeSeries {
    generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(n))
}

/// PMC representative policy: mean vs midrange vs snapped — report the
/// deflated stream size each yields and bench the segmentation cost.
fn ablate_pmc_representative(c: &mut Criterion) {
    let s = series(8_192);
    let mut group = c.benchmark_group("ablate_pmc_representative");
    for (name, repr) in [
        ("mean", Representative::Mean),
        ("midrange", Representative::Midrange),
        ("snapped", Representative::Snapped),
    ] {
        let segments = segment_values_repr(s.values(), 0.2, repr);
        let stream: Vec<u8> = segments
            .iter()
            .flat_map(|seg| {
                let mut rec = (seg.len as u16).to_le_bytes().to_vec();
                rec.extend_from_slice(&(seg.value as f32).to_le_bytes());
                rec
            })
            .collect();
        println!(
            "[ablation] PMC repr={name}: {} segments, deflated {} bytes",
            segments.len(),
            deflate::compressed_size(&stream)
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| segment_values_repr(black_box(s.values()), 0.2, repr))
        });
    }
    group.finish();
}

/// SZ's final lossless pass: sizes with and without it (paper §3.2 applies
/// gzip last); bench the full pipeline.
fn ablate_sz_final_deflate(c: &mut Criterion) {
    let s = series(8_192);
    let frame = Sz.compress(&s, 0.1).expect("compresses");
    let inner = deflate::decompress(&frame.bytes).expect("own frame");
    println!(
        "[ablation] SZ inner (no deflate) = {} bytes; with final pass = {} bytes; raw gz = {}",
        inner.len(),
        frame.size_bytes(),
        raw_compressed_size(&s)
    );
    c.bench_function("ablate_sz_final_deflate/full_pipeline", |b| {
        b.iter(|| Sz.compress(black_box(&s), 0.1).expect("compresses"))
    });
}

/// Gorilla block policy: the paper compresses the whole series as one
/// block instead of the original two-hour blocks (§3.3) — compare bits.
fn ablate_gorilla_blocks(c: &mut Criterion) {
    let s = series(8_192);
    let whole = {
        let mut w = BitWriter::new();
        compress_values(s.values(), &mut w);
        w.len_bits()
    };
    // Two-hour blocks at 15-minute sampling = 8 points per block.
    let blocked = {
        let mut total = 0usize;
        for chunk in s.values().chunks(8) {
            let mut w = BitWriter::new();
            compress_values(chunk, &mut w);
            total += w.len_bits();
        }
        total
    };
    println!(
        "[ablation] GORILLA whole-series = {whole} bits; 2h blocks = {blocked} bits \
         (blocked/whole size ratio {:.2}; per-block 64-bit restarts trade against \
         window-reuse quality)",
        blocked as f64 / whole as f64
    );
    let mut group = c.benchmark_group("ablate_gorilla_blocks");
    group.bench_function("whole_series", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            compress_values(black_box(s.values()), &mut w);
            w.len_bits()
        })
    });
    group.bench_function("two_hour_blocks", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for chunk in black_box(s.values()).chunks(8) {
                let mut w = BitWriter::new();
                compress_values(chunk, &mut w);
                total += w.len_bits();
            }
            total
        })
    });
    group.finish();
}

/// Polynomial degree ablation (the paper's §3.2 low-degree argument):
/// constant (PMC) vs linear (Swing) vs quadratic (PPA) on the same series.
fn ablate_polynomial_degree(c: &mut Criterion) {
    let s = series(8_192);
    let raw_gz = raw_compressed_size(&s);
    let candidates: Vec<(&str, Box<dyn PeblcCompressor>)> = vec![
        ("constant(PMC)", Box::new(Pmc)),
        ("linear(SWING)", Box::new(Swing)),
        ("quadratic(PPA)", Box::new(Ppa::default())),
    ];
    let mut group = c.benchmark_group("ablate_polynomial_degree");
    for (name, compressor) in &candidates {
        let frame = compressor.compress(&s, 0.2).expect("compresses");
        println!(
            "[ablation] degree {name}: {} segments, {} bytes (raw gz {raw_gz})",
            frame.num_segments,
            frame.size_bytes()
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| compressor.compress(black_box(&s), 0.2).expect("compresses"))
        });
    }
    group.finish();
}

/// GBoost multi-step strategy: direct (one booster per step) vs recursive
/// (one booster fed back) — fit cost, with test RMSE printed.
fn ablate_gboost_strategy(c: &mut Criterion) {
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(2_000));
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut group = c.benchmark_group("ablate_gboost_strategy");
    group.sample_size(10);
    for (name, strategy) in [("direct", MultiStep::Direct), ("recursive", MultiStep::Recursive)] {
        let config = GBoostConfig { input_len: 96, horizon: 24, strategy, ..Default::default() };
        let mut model = GBoost::new(config.clone());
        model.fit(&s.train, &s.val).expect("fits");
        let window = s.test.target().values()[..96].to_vec();
        let actual = &s.test.target().values()[96..120];
        let pred = model.predict(&[window]).expect("predicts");
        println!(
            "[ablation] GBoost {name}: test RMSE = {:.4}",
            tsdata::metrics::rmse(actual, &pred)
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut m = GBoost::new(config.clone());
                m.fit(black_box(&s.train), black_box(&s.val)).expect("fits");
                m
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_pmc_representative,
        ablate_sz_final_deflate,
        ablate_gorilla_blocks,
        ablate_polynomial_degree,
        ablate_gboost_strategy
);
criterion_main!(benches);
