//! Telemetry overhead benchmarks: what instrumentation costs when
//! recording, and that the disabled path is effectively free.
//!
//! Run with `cargo bench --bench telemetry`. Besides printing a table,
//! this bench writes a machine-readable summary to
//! `BENCH_telemetry.json` at the workspace root, which is committed so
//! instrumentation-cost regressions show up in review diffs.
//!
//! Two measurements:
//!
//! * `grid/{disabled,enabled}` — the compression grid through the task
//!   engine, with telemetry off versus on. Each iteration builds a fresh
//!   [`GridContext`], so every task does its real work (dataset
//!   generation, codec transforms) and the instrumentation (spans,
//!   counters, histograms) is amortized over a realistic workload. The
//!   guardrail at the bottom asserts the enabled run stays within a few
//!   percent of the disabled run.
//! * `event/{disabled_counter,enabled_counter}` — the raw cost of one
//!   instrumentation point: a single relaxed atomic load when disabled,
//!   a registry read-lock + atomic add when enabled.

use criterion::{black_box, Criterion};
use evalcore::cache::GridContext;
use evalcore::engine::Engine;
use evalcore::grid::GridConfig;

fn bench_grid(c: &mut Criterion) {
    let mut cfg = GridConfig::smoke();
    cfg.len = Some(2_000);

    let mut group = c.benchmark_group("grid");
    for (id, on) in [("disabled", false), ("enabled", true)] {
        group.bench_function(id, |bench| {
            telemetry::set_enabled(on);
            bench.iter(|| {
                // A fresh context per iteration: the tasks regenerate the
                // dataset and recompute every transform, so the measured
                // work is the real grid, not cache lookups.
                let ctx = GridContext::new(black_box(cfg.clone()));
                let report = Engine::new(&ctx).compression_report();
                black_box(report.records.len())
            });
            telemetry::set_enabled(false);
        });
    }
    group.finish();
}

fn bench_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("event");
    telemetry::set_enabled(false);
    group.bench_function("disabled_counter", |bench| {
        bench.iter(|| telemetry::counter_add(black_box("bench_disabled_total"), &[], 1))
    });
    telemetry::set_enabled(true);
    group.bench_function("enabled_counter", |bench| {
        bench.iter(|| telemetry::counter_add(black_box("bench_enabled_total"), &[], 1))
    });
    telemetry::set_enabled(false);
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().sample_size(10);
    bench_grid(&mut criterion);
    bench_event(&mut criterion);

    // cargo bench runs with the package dir as cwd; anchor the summary at
    // the workspace root so it lands next to the sources it measures.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    criterion.save_json(path).expect("write BENCH_telemetry.json");
    println!("wrote {path}");

    // Guardrail: recording must not meaningfully slow the grid down. The
    // design target is <2% measured overhead; the assertion allows 10%
    // headroom for shared-host noise (min-time is the robust estimator).
    let records = criterion.records();
    let min_ns = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.min_ns)
            .expect("record present")
    };
    let overhead = min_ns("grid", "enabled") / min_ns("grid", "disabled") - 1.0;
    println!("grid overhead with telemetry enabled: {:.2}%", 100.0 * overhead);
    assert!(overhead < 0.10, "telemetry overhead {:.2}% exceeds 10%", 100.0 * overhead);

    // The disabled event path is one relaxed atomic load — it must stay
    // in the single-digit-nanosecond range, far below the enabled path's
    // registry lookup.
    let disabled_ns = min_ns("event", "disabled_counter");
    println!("disabled counter_add: {disabled_ns:.1}ns");
    assert!(disabled_ns < 50.0, "disabled event path costs {disabled_ns:.1}ns");
}
