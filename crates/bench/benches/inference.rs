//! Inference throughput bench: windows/sec for every one of the paper's
//! seven forecasters, batched (`predict_batch`, one 64-window matrix)
//! against the legacy per-window `predict` loop, measured head-to-head
//! in the same process on the same fitted models.
//!
//! Run with `cargo bench --bench inference`; set `BENCH_SMOKE=1` for the
//! CI short mode. Writes `BENCH_inference.json` at the workspace root
//! (committed so throughput regressions show up in review diffs) and
//! asserts per-model speedup floors for batched inference at batch
//! size 64. The floors are tiered to each model family's *measured
//! intrinsic* ceiling on this single-core reference host, because the
//! bit-identity contract (batched == per-window, CI-asserted on grid
//! CSVs) pins both paths to the exact same flop and transcendental
//! sequence — batching can only strip graph/dispatch overhead, never
//! re-associate the math. Profiled ceilings: N-BEATS is overhead
//! dominated per window (~5x available); DLinear's naive moving-average
//! decompose and GRU's sigmoid/tanh gates dominate both paths (~2.4x /
//! ~2x); the seq2seq transformers spend ~80% of a per-window pass in
//! matmul+exp flops both paths share, capping the ratio near ~1.2x.
//!
//! A `calibration/memcpy` row pins the host's raw copy bandwidth so the
//! CI regression check can normalise inference numbers across machines.

use criterion::{black_box, Criterion, Throughput};
use forecast::model::{Forecaster, ALL_MODELS};
use forecast::{build_model, BuildOptions};
use neural::tensor::Tensor;
use tsdata::datasets::{generate, DatasetKind, GenOptions};
use tsdata::split::{split, SplitSpec};

const INPUT_LEN: usize = 48;
const HORIZON: usize = 12;
const BATCH: usize = 64;

/// CI short mode: fewer samples, same models and workload.
fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Fit all seven models once on the ETTm1 recreation the evaluation grid
/// itself runs on, then carve a 64-window eval batch from the test split.
fn fit_models() -> (Vec<Box<dyn Forecaster>>, Vec<Vec<f64>>) {
    let data =
        generate(DatasetKind::ETTm1, GenOptions { len: Some(1_200), channels: Some(1), seed: 7 });
    let s = split(&data, SplitSpec::default()).expect("1200 points split cleanly");
    let models: Vec<Box<dyn Forecaster>> = ALL_MODELS
        .into_iter()
        .map(|kind| {
            let mut model = build_model(
                kind,
                BuildOptions {
                    input_len: INPUT_LEN,
                    horizon: HORIZON,
                    seed: 7,
                    ..BuildOptions::default()
                },
            );
            model.fit(&s.train, &s.val).expect("bench fit succeeds");
            model
        })
        .collect();

    let test_vals = s.test.target().values();
    let max_start = test_vals.len() - INPUT_LEN;
    let windows: Vec<Vec<f64>> = (0..BATCH)
        .map(|i| {
            let start = (i * 3) % (max_start + 1);
            test_vals[start..start + INPUT_LEN].to_vec()
        })
        .collect();
    (models, windows)
}

fn stage(windows: &[Vec<f64>]) -> Tensor {
    let mut staged = Tensor::zeros(windows.len(), INPUT_LEN);
    for (r, w) in windows.iter().enumerate() {
        staged.data_mut()[r * INPUT_LEN..(r + 1) * INPUT_LEN].copy_from_slice(w);
    }
    staged
}

/// Per-window `predict` loop vs one `predict_batch` call over the same 64
/// windows; both rows share `Throughput::Elements(64)` so reported
/// windows/sec and the speedup ratio are directly comparable.
fn bench_inference(c: &mut Criterion, models: &[Box<dyn Forecaster>], windows: &[Vec<f64>]) {
    let staged = stage(windows);

    let mut group = c.benchmark_group("per_window");
    group.throughput(Throughput::Elements(windows.len() as u64));
    for model in models {
        group.bench_function(model.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for w in windows {
                    let pred = model
                        .predict(std::slice::from_ref(black_box(w)))
                        .expect("per-window predict succeeds");
                    acc ^= pred[0].to_bits();
                }
                acc
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("batched");
    group.throughput(Throughput::Elements(windows.len() as u64));
    for model in models {
        group.bench_function(model.name(), |b| {
            b.iter(|| model.predict_batch(black_box(&staged)).expect("batched predict succeeds"))
        });
    }
    group.finish();
}

/// Raw copy bandwidth of this host: the unit CI normalises against so a
/// slower runner does not read as an inference regression.
fn bench_calibration(c: &mut Criterion, len: usize) {
    let src = vec![0xA5u8; len];
    let mut group = c.benchmark_group("calibration");
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_function("memcpy", |b| b.iter(|| black_box(&src).to_vec()));
    group.finish();
}

fn main() {
    // Smoke mode keeps the full-mode workload (same models, same 64-window
    // batch, so CI throughputs compare against the committed full-mode
    // baseline) and only trims samples.
    let samples = if smoke() { 8 } else { 20 };
    let mut criterion = Criterion::default().sample_size(samples);

    let (models, windows) = fit_models();
    bench_inference(&mut criterion, &models, &windows);
    bench_calibration(&mut criterion, 1 << 20);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    criterion.save_json(path).expect("write BENCH_inference.json");
    println!("wrote {path}");

    // Acceptance criterion from the batched-inference PR, checked against
    // the per-window loop measured moments ago in this very process.
    // Min-time is the robust estimator on a noisy host: interference only
    // ever inflates a sample.
    let records = criterion.records();
    let min_ns = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.min_ns)
            .expect("record present")
    };
    for model in &models {
        let speedup = min_ns("per_window", model.name()) / min_ns("batched", model.name());
        println!("{:<12} batched vs per-window: {speedup:.2}x", model.name());
        // Per-family floors, set below the measured ceiling with noise
        // margin (measured on the 1-core reference host; see module doc
        // for why bit-identity caps each family):
        //
        //   N-BEATS      measured ~5x    floor 3.0  (per-window is graph
        //                overhead; batching amortises it across 64 rows)
        //   DLinear      measured ~2.4x  floor 1.5  (O(k·window) moving-
        //                average decompose dominates, shared bit-for-bit
        //                by both paths)
        //   GRU          measured ~2x    floor 1.4  (3 gates x 60 steps
        //                of sigmoid/tanh is a shared transcendental
        //                floor; batching removes per-step param clones)
        //   Transformer/ measured ~1.1-  floor 0.9  (flops+exp parity;
        //   Informer     1.2x            the gate is "stacking must not
        //                LOSE" — pre-chunking it ran 0.5x because the
        //                [64·L, L] score tensors spilled L2)
        //
        // ARIMA/GBoost batching only hoists table/tree reuse and carries
        // no floor. Smoke mode's 8 samples are too few for a hard gate;
        // CI's gate is the normalised regression diff vs the committed
        // baseline JSON.
        let floor = match model.name() {
            "NBeats" => 3.0,
            "DLinear" => 1.5,
            "GRU" => 1.4,
            "Transformer" | "Informer" => 0.9,
            _ => 0.0,
        };
        if !smoke() && floor > 0.0 {
            assert!(
                speedup >= floor,
                "{} batched speedup {speedup:.2}x < {floor}x floor at batch size {BATCH}",
                model.name()
            );
        }
    }
}
