//! Throughput of the three PEBLC compressors and Gorilla: compression and
//! decompression over a fixed ETTm1-like series at representative error
//! bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use compression::codec::PeblcCompressor;
use compression::{Gorilla, Pmc, Swing, Sz};
use tsdata::datasets::{generate_univariate, DatasetKind, GenOptions};
use tsdata::series::RegularTimeSeries;

const N: usize = 8_192;

fn series() -> RegularTimeSeries {
    generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(N))
}

fn bench_compress(c: &mut Criterion) {
    let s = series();
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Elements(N as u64));
    let methods: Vec<(&str, Box<dyn PeblcCompressor>)> = vec![
        ("PMC", Box::new(Pmc)),
        ("SWING", Box::new(Swing)),
        ("SZ", Box::new(Sz)),
        ("GORILLA", Box::new(Gorilla)),
    ];
    for (name, compressor) in &methods {
        for eps in [0.01, 0.1, 0.4] {
            group.bench_with_input(BenchmarkId::new(*name, eps), &eps, |b, &eps| {
                b.iter(|| compressor.compress(black_box(&s), eps).expect("compresses"))
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let s = series();
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Elements(N as u64));
    let methods: Vec<(&str, Box<dyn PeblcCompressor>)> = vec![
        ("PMC", Box::new(Pmc)),
        ("SWING", Box::new(Swing)),
        ("SZ", Box::new(Sz)),
        ("GORILLA", Box::new(Gorilla)),
    ];
    for (name, compressor) in &methods {
        let frame = compressor.compress(&s, 0.1).expect("compresses");
        group.bench_function(*name, |b| {
            b.iter(|| compressor.decompress(black_box(&frame)).expect("valid frame"))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compress, bench_decompress
);
criterion_main!(benches);
