//! Throughput of the lossless substrate: the DEFLATE-style codec (the
//! gzip stand-in every method's sizes depend on), canonical Huffman, and
//! the bit stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use compression::bitstream::{BitReader, BitWriter};
use compression::deflate::{compress, decompress};
use compression::huffman::CanonicalCode;

fn float_payload(n: usize) -> Vec<u8> {
    (0..n)
        .flat_map(|i| {
            (13.0
                + (i as f64 / 96.0 * std::f64::consts::TAU).sin() * 4.0
                + ((i * 31) % 13) as f64 * 0.01)
                .to_le_bytes()
        })
        .collect()
}

fn bench_deflate(c: &mut Criterion) {
    let mut group = c.benchmark_group("deflate");
    for n in [1_024usize, 16_384] {
        let data = float_payload(n);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("compress", n), &data, |b, d| {
            b.iter(|| compress(black_box(d)))
        });
        let compressed = compress(&data);
        group.bench_with_input(BenchmarkId::new("decompress", n), &compressed, |b, d| {
            b.iter(|| decompress(black_box(d)).expect("own output"))
        });
    }
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    // SZ-like skewed quantization codes.
    let symbols: Vec<usize> =
        (0..50_000).map(|i| if i % 10 < 7 { 512 } else { 512 + (i % 40) }).collect();
    let mut freqs = vec![0u64; 1026];
    for &s in &symbols {
        freqs[s] += 1;
    }
    c.bench_function("huffman/encode_50k", |b| {
        let code = CanonicalCode::from_freqs(&freqs).expect("nonzero");
        b.iter(|| {
            let mut w = BitWriter::new();
            for &s in &symbols {
                code.encode(s, &mut w);
            }
            w.into_bytes()
        })
    });
    c.bench_function("huffman/decode_50k", |b| {
        let code = CanonicalCode::from_freqs(&freqs).expect("nonzero");
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        b.iter(|| {
            let mut r = BitReader::new(black_box(&bytes));
            let mut sum = 0usize;
            for _ in 0..symbols.len() {
                sum += code.decode(&mut r).expect("valid");
            }
            sum
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_deflate, bench_huffman
);
criterion_main!(benches);
