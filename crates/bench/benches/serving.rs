//! Closed-loop serving load generator: end-to-end request latency and
//! throughput of the `serve` front end over loopback TCP, at several
//! client concurrency levels, plus the coalesced batch occupancy the
//! batching scheduler achieves under that load.
//!
//! Each level starts a fresh in-process server (artifact store →
//! registry → scheduler → TCP), then `c` closed-loop clients each fire
//! `N` forecast requests back-to-back and record per-request latency.
//! Per-request percentiles don't fit criterion's mean-per-iteration
//! model, so this bench writes its own records to `BENCH_serving.json`
//! (committed, like every BENCH_*.json, so regressions show up in
//! review diffs).
//!
//! Run with `cargo bench --bench serving`; set `BENCH_SMOKE=1` for the
//! CI short mode. Full mode asserts the serving PR's acceptance
//! criterion: mean coalesced batch occupancy > 1 at >= 4 concurrent
//! clients (concurrent same-model requests really do share
//! `predict_batch` calls).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use evalcore::artifact::{ArtifactKey, ArtifactStore};
use forecast::{build_model, BuildOptions, ModelKind, Profile};
use serve::registry::{ModelSpec, RegistryConfig};
use serve::{Client, ModelRegistry, SchedulerConfig, ServeConfig, Server};
use tsdata::datasets::{generate, DatasetKind, GenOptions};
use tsdata::split::{split, SplitSpec};

const INPUT_LEN: usize = 16;
const HORIZON: usize = 4;
const SEED: u64 = 40;
const DATA_SEED: u64 = 7;
const SERIES: u64 = 1;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn temp_dir() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "bench-serving-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Fits one DLinear and saves it into a fresh artifact store; returns
/// the store directory and the test-subset values to ingest.
fn prepare_artifacts() -> (PathBuf, Vec<f64>) {
    let data = generate(
        DatasetKind::ETTm1,
        GenOptions { len: Some(360), channels: Some(1), seed: DATA_SEED },
    );
    let s = split(&data, SplitSpec::default()).expect("360 points split cleanly");
    let mut model = build_model(
        ModelKind::DLinear,
        BuildOptions {
            input_len: INPUT_LEN,
            horizon: HORIZON,
            season: None,
            seed: SEED,
            profile: Profile::Fast,
        },
    );
    model.fit(&s.train, &s.val).expect("tiny fit succeeds");
    let key = ArtifactKey {
        dataset: "ETTm1".into(),
        model: "DLinear".into(),
        seed: SEED,
        profile: "Fast".into(),
        method: None,
        eps_bits: None,
        input_len: INPUT_LEN,
        horizon: HORIZON,
        len: Some(360),
        channels: Some(1),
        data_seed: DATA_SEED,
    };
    let dir = temp_dir();
    let store = ArtifactStore::open(&dir).expect("open artifact store");
    store.save(&key, &model.save_state().expect("state export")).expect("artifact save");
    (dir, s.test.target().values().to_vec())
}

struct LevelResult {
    concurrency: usize,
    requests: usize,
    wall: Duration,
    p50_ns: u64,
    p99_ns: u64,
    batches: u64,
    batched_jobs: u64,
}

impl LevelResult {
    fn reqs_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64()
    }

    fn occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    assert!(!sorted_ns.is_empty());
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank]
}

fn stat_line(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("stats text missing {key}:\n{stats}"))
}

/// One closed-loop level: `concurrency` clients, `per_client` requests
/// each, against a fresh server.
fn run_level(
    artifacts: &std::path::Path,
    test_vals: &[f64],
    concurrency: usize,
    per_client: usize,
) -> LevelResult {
    let registry =
        Arc::new(ModelRegistry::open(artifacts, RegistryConfig::default()).expect("open registry"));
    registry.warm(1).expect("warm the model");
    let config = ServeConfig {
        scheduler: SchedulerConfig {
            // A batching window comfortably above DLinear's per-batch
            // latency, so closed-loop clients re-arrive inside it.
            batch_wait: Duration::from_millis(1),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut server = Server::start(config, registry).expect("server starts");
    let addr = server.local_addr();

    let mut seed_client = Client::connect(addr).expect("connect");
    let points: Vec<(i64, f64)> =
        test_vals.iter().enumerate().map(|(i, &v)| (i as i64 * 60, v)).collect();
    seed_client.ingest(SERIES, 0, 0.0, &points).expect("ingest");
    let spec = ModelSpec {
        dataset: "ETTm1".into(),
        model: "DLinear".into(),
        method: None,
        eps_bits: None,
    };
    // Warm the whole path (registry hit, scheduler, store window) once.
    seed_client.forecast(&spec, SERIES).expect("warm-up forecast");
    let warmup_stats = seed_client.stats().expect("stats");
    let base_batches = stat_line(&warmup_stats, "batches");
    let base_jobs = stat_line(&warmup_stats, "batched_jobs");

    let barrier = Arc::new(Barrier::new(concurrency + 1));
    let mut handles = Vec::new();
    for _ in 0..concurrency {
        let barrier = Arc::clone(&barrier);
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            barrier.wait();
            let mut lat = Vec::with_capacity(per_client);
            for _ in 0..per_client {
                let t = Instant::now();
                let values = client.forecast(&spec, SERIES).expect("forecast");
                lat.push(t.elapsed().as_nanos() as u64);
                assert_eq!(values.len(), HORIZON);
            }
            lat
        }));
    }
    barrier.wait();
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(concurrency * per_client);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall = started.elapsed();

    let stats = seed_client.stats().expect("stats");
    let result = LevelResult {
        concurrency,
        requests: latencies.len(),
        wall,
        p50_ns: {
            latencies.sort_unstable();
            percentile(&latencies, 0.50)
        },
        p99_ns: percentile(&latencies, 0.99),
        batches: stat_line(&stats, "batches") - base_batches,
        batched_jobs: stat_line(&stats, "batched_jobs") - base_jobs,
    };
    server.stop();
    result
}

fn main() {
    let per_client = if smoke() { 50 } else { 500 };
    let (artifacts, test_vals) = prepare_artifacts();

    let mut results = Vec::new();
    for concurrency in [1usize, 2, 4, 8] {
        let r = run_level(&artifacts, &test_vals, concurrency, per_client);
        println!(
            "c{}: {} requests in {:.3}s = {:.0} req/s, p50 {:.1}us, p99 {:.1}us, \
             occupancy {:.2} ({} jobs / {} batches)",
            r.concurrency,
            r.requests,
            r.wall.as_secs_f64(),
            r.reqs_per_sec(),
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.occupancy(),
            r.batched_jobs,
            r.batches,
        );
        results.push(r);
    }

    let mut json = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"group\": \"serving_closed_loop\", \"id\": \"c{}\", \"concurrency\": {}, \
             \"requests\": {}, \"reqs_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"batches\": {}, \"batched_jobs\": {}, \"mean_batch_occupancy\": {:.3}}}{sep}\n",
            r.concurrency,
            r.concurrency,
            r.requests,
            r.reqs_per_sec(),
            r.p50_ns,
            r.p99_ns,
            r.batches,
            r.batched_jobs,
            r.occupancy(),
        ));
    }
    json.push_str("]\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, json).expect("write BENCH_serving.json");
    println!("wrote {path}");

    let _ = std::fs::remove_dir_all(&artifacts);

    // Acceptance criterion for the serving PR: concurrent same-model
    // requests actually coalesce. Smoke mode keeps the same workload but
    // skips the gate (CI validates the schema + committed baseline).
    if !smoke() {
        for r in &results {
            if r.concurrency >= 4 {
                assert!(
                    r.occupancy() > 1.0,
                    "c{}: mean batch occupancy {:.3} <= 1 — coalescing is not happening",
                    r.concurrency,
                    r.occupancy()
                );
            }
        }
    }
}
