//! Chunked-store throughput bench: ingest points/sec, sealed bytes/point,
//! chunk read (decode) throughput, and the streaming re-encode transform.
//!
//! Run with `cargo bench --bench store`; set `BENCH_SMOKE=1` for the CI
//! short mode. Writes `BENCH_store.json` at the workspace root (committed
//! so regressions show up in review diffs) and asserts the store PR's
//! acceptance criteria in full mode: >=10M points/sec Gorilla ingest and
//! <=2 bytes/point on the Gorilla sealed path for integer-grade sensor
//! data.

use compression::Method;
use criterion::{black_box, Criterion, Throughput};
use store::{ChunkCodec, SeriesId, StoreConfig, TsStore};
use tsdata::series::SeriesSource;

/// CI short mode: fewer samples, same workloads (so CI throughputs
/// compare against the committed full-mode baseline).
fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Integer-grade sensor workload: a slow diurnal wave rounded to whole
/// units, like a temperature or demand gauge. Repeated values and small
/// integer steps are exactly what Gorilla's XOR path compresses well —
/// this is the regime behind the paper's "lossless staging is cheap"
/// premise, not an artificially constant series.
fn sensor_points(n: usize) -> Vec<(i64, f64)> {
    (0..n).map(|i| (i as i64 * 60, (40.0 + 10.0 * (i as f64 * 5e-4).sin()).round())).collect()
}

fn ingested(points: &[(i64, f64)], codec: ChunkCodec, eps: f64) -> TsStore {
    let store = TsStore::new(StoreConfig::default());
    store.create_series(SeriesId(0), codec, eps).expect("fresh store");
    store.append_batch(SeriesId(0), points.iter().copied()).expect("regular cadence");
    store.seal_series(SeriesId(0)).expect("seals");
    store
}

/// Bulk ingest through the per-series appenders, points/sec.
fn bench_ingest(c: &mut Criterion, n: usize) {
    let points = sensor_points(n);
    let mut group = c.benchmark_group("store_ingest");
    group.throughput(Throughput::Elements(n as u64));
    for (id, codec, eps) in [
        ("gorilla", ChunkCodec::Gorilla, 0.0),
        ("pmc", ChunkCodec::Pmc, 0.05),
        ("swing", ChunkCodec::Swing, 0.05),
    ] {
        group.bench_function(id, |b| b.iter(|| ingested(black_box(&points), codec, eps)));
    }
    group.finish();
}

/// Chunk-at-a-time reads: full decode of a sealed series via `PointIter`.
fn bench_read(c: &mut Criterion, n: usize) {
    let store = ingested(&sensor_points(n), ChunkCodec::Gorilla, 0.0);
    let view = store.read(SeriesId(0)).expect("series exists");
    let mut group = c.benchmark_group("store_read");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("gorilla_points", |b| {
        b.iter(|| black_box(&view).points().map(|p| p.value).sum::<f64>())
    });
    group.finish();
}

/// The store-backed grid's transform: stream staged Gorilla chunks
/// through the online PMC encoder under an error bound.
fn bench_transform(c: &mut Criterion, n: usize) {
    let store = ingested(&sensor_points(n), ChunkCodec::Gorilla, 0.0);
    let view = store.read(SeriesId(0)).expect("series exists");
    let mut group = c.benchmark_group("store_transform");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("pmc_eps0.05", |b| {
        b.iter(|| {
            compression::compress_source(black_box(&view), Method::Pmc, 0.05).expect("encodes")
        })
    });
    group.finish();
}

fn main() {
    let samples = if smoke() { 5 } else { 15 };
    let mut criterion = Criterion::default().sample_size(samples);
    let n = 1_000_000;
    bench_ingest(&mut criterion, n);
    bench_read(&mut criterion, n);
    bench_transform(&mut criterion, 250_000);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    criterion.save_json(path).expect("write BENCH_store.json");
    println!("wrote {path}");

    // Acceptance criteria for the store PR, measured in this process.
    // Min-time is the robust estimator on a noisy host.
    let records = criterion.records();
    let min_ns = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.min_ns)
            .expect("record present")
    };
    let ingest_pps = n as f64 / (min_ns("store_ingest", "gorilla") / 1e9);
    println!("gorilla ingest: {:.1}M points/sec", ingest_pps / 1e6);

    let store = ingested(&sensor_points(n), ChunkCodec::Gorilla, 0.0);
    let view = store.read(SeriesId(0)).expect("series exists");
    let sealed = store.sealed_bytes(SeriesId(0)).expect("series exists");
    let bpp = sealed as f64 / view.len() as f64;
    println!(
        "gorilla sealed: {sealed} bytes over {} points = {bpp:.3} bytes/point in {} chunk(s)",
        view.len(),
        view.num_chunks()
    );

    // Smoke mode's 5 samples are too few for a hard gate; CI's own check
    // is the schema validation plus the committed-baseline diff.
    if !smoke() {
        assert!(ingest_pps >= 10e6, "gorilla ingest {:.1}M points/sec < 10M", ingest_pps / 1e6);
        assert!(bpp <= 2.0, "gorilla sealed path {bpp:.3} bytes/point > 2");
    }
}
