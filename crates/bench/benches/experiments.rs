//! One Criterion bench per paper table/figure: each measures the harness
//! that regenerates that experiment (at smoke scale — the `repro` binary
//! runs the full versions; EXPERIMENTS.md records paper-vs-measured).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use evalcore::experiments::{
    characteristics_exp, compression_exp, elbows_exp, fig1, forecasting_exp, retrain_exp, table1,
};
use evalcore::grid::GridConfig;
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;

fn tiny_config() -> GridConfig {
    let mut cfg = GridConfig::smoke();
    cfg.len = Some(900);
    cfg.input_len = 24;
    cfg.horizon = 6;
    cfg.error_bounds = vec![0.05, 0.2, 0.5];
    cfg.models = vec![ModelKind::GBoost];
    cfg.eval_stride = 24;
    cfg
}

fn bench_tables_and_figures(c: &mut Criterion) {
    let cfg = tiny_config();
    // Shared grid evaluation for the derivation-only experiments.
    let forecast = forecasting_exp::run(&cfg);
    let chars = characteristics_exp::run(&forecast);
    let elbows = elbows_exp::run(&forecast);
    let caps = elbows.eb_caps();

    c.bench_function("table1/dataset_statistics", |b| {
        b.iter(|| table1::run(Some(900), 7).render())
    });
    c.bench_function("fig1/compressor_outputs", |b| {
        b.iter(|| fig1::run(DatasetKind::ETTm1, 128, 7).render())
    });
    c.bench_function("fig2_fig3_table3/compression_grid", |b| {
        b.iter(|| {
            let exp = compression_exp::run(black_box(&cfg));
            (exp.render_fig2(), exp.render_fig3(), exp.render_table3())
        })
    });
    c.bench_function("table2/baseline_grid", |b| {
        b.iter(|| forecasting_exp::run(black_box(&cfg)).render_table2())
    });
    c.bench_function("fig4/tfe_vs_te", |b| b.iter(|| forecast.render_fig4()));
    c.bench_function("fig5/shap_ranking", |b| {
        b.iter(|| characteristics_exp::run(black_box(&forecast)).render_fig5(9))
    });
    c.bench_function("table4/spearman_ranking", |b| b.iter(|| chars.render_table4(10)));
    c.bench_function("table5/elbow_analysis", |b| {
        b.iter(|| elbows_exp::run(black_box(&forecast)).render())
    });
    c.bench_function("table6/key_characteristics", |b| b.iter(|| chars.render_table6()));
    c.bench_function("fig6/tfe_per_model", |b| b.iter(|| forecast.render_fig6(&caps)));
    c.bench_function("table7/best_models", |b| b.iter(|| forecast.render_table7(&caps)));
    c.bench_function("fig7/retrain_on_decompressed", |b| {
        b.iter(|| retrain_exp::run(black_box(&cfg), &[ModelKind::GBoost], &[0.1]).render())
    });
    c.bench_function("decomp/trend_remainder_impact", |b| {
        b.iter(|| retrain_exp::render_decomposition(black_box(&cfg)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables_and_figures
);
criterion_main!(benches);
