//! Checkpoint/resume benchmarks: what a grid cell costs cold (fit the
//! model, checkpoint it) versus warm (load the fit back from the
//! artifact store), plus the raw encode/decode throughput of the
//! artifact codec itself.
//!
//! Run with `cargo bench --bench artifacts`. Besides printing a table,
//! this bench writes a machine-readable summary to
//! `BENCH_artifacts.json` at the workspace root, which is committed so
//! resume-path regressions show up in review diffs.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{black_box, BenchmarkId, Criterion};
use evalcore::artifact::{decode_state, encode_state, ArtifactStore};
use evalcore::cache::GridContext;
use evalcore::grid::GridConfig;
use forecast::model::ModelKind;
use forecast::{build_model, BuildOptions};
use tsdata::datasets::DatasetKind;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "bench-artifacts-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Cold vs warm cost of one forecast-grid cell, per model class: the
/// cold path fits and checkpoints, the warm path loads the stored fit.
fn bench_fit_or_load(c: &mut Criterion) {
    let mut cfg = GridConfig::smoke();
    cfg.len = Some(2_000);
    let ctx = GridContext::new(cfg.clone());
    let ds = ctx.dataset(DatasetKind::ETTm1);

    let mut group = c.benchmark_group("fit_or_load");
    for kind in [ModelKind::GBoost, ModelKind::DLinear] {
        let opts = BuildOptions {
            input_len: cfg.input_len,
            horizon: cfg.horizon,
            seed: 42,
            ..BuildOptions::default()
        };
        let store_dir = temp_dir(kind.name());
        let store = ArtifactStore::open(&store_dir).expect("store opens");

        group.bench_with_input(BenchmarkId::new("cold", kind.name()), &kind, |bench, &kind| {
            bench.iter(|| {
                let mut model = build_model(kind, opts);
                model.fit(&ds.split.train, &ds.split.val).expect("fits");
                let state = model.save_state().expect("exports");
                store.save(black_box(&key(kind)), &state).expect("checkpoints");
            })
        });

        // Seed the store once, then measure the steady-state warm path:
        // probe + decode + import into a freshly built model.
        let mut model = build_model(kind, opts);
        model.fit(&ds.split.train, &ds.split.val).expect("fits");
        store.save(&key(kind), &model.save_state().expect("exports")).expect("seeds store");
        group.bench_with_input(BenchmarkId::new("warm", kind.name()), &kind, |bench, &kind| {
            bench.iter(|| {
                let state = store
                    .load(black_box(&key(kind)))
                    .expect("store reads")
                    .expect("artifact present");
                let mut model = build_model(kind, opts);
                model.load_state(&state).expect("imports");
                model
            })
        });

        let _ = std::fs::remove_dir_all(&store_dir);
    }
    group.finish();
}

fn key(kind: ModelKind) -> evalcore::artifact::ArtifactKey {
    evalcore::artifact::ArtifactKey {
        dataset: "ETTm1".to_string(),
        model: kind.name().to_string(),
        seed: 42,
        profile: "Fast".to_string(),
        method: None,
        eps_bits: None,
        input_len: 48,
        horizon: 12,
        len: Some(2_000),
        channels: None,
        data_seed: 42,
    }
}

/// Raw codec throughput on a real model state (GBoost: a few hundred KB
/// of tree parameters).
fn bench_codec(c: &mut Criterion) {
    let mut cfg = GridConfig::smoke();
    cfg.len = Some(2_000);
    let ctx = GridContext::new(cfg.clone());
    let ds = ctx.dataset(DatasetKind::ETTm1);
    let opts = BuildOptions {
        input_len: cfg.input_len,
        horizon: cfg.horizon,
        seed: 42,
        ..BuildOptions::default()
    };
    let mut model = build_model(ModelKind::GBoost, opts);
    model.fit(&ds.split.train, &ds.split.val).expect("fits");
    let state = model.save_state().expect("exports");
    let bytes = encode_state(&state).expect("encodes");

    let mut group = c.benchmark_group("artifact_codec");
    group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |bench| bench.iter(|| encode_state(black_box(&state))));
    group.bench_function("decode", |bench| bench.iter(|| decode_state(black_box(&bytes))));
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().sample_size(10);
    bench_fit_or_load(&mut criterion);
    bench_codec(&mut criterion);

    // cargo bench runs with the package dir as cwd; anchor the summary at
    // the workspace root so it lands next to the sources it measures.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_artifacts.json");
    criterion.save_json(path).expect("write BENCH_artifacts.json");
    println!("wrote {path}");

    // Guardrail mirroring the point of checkpointing: loading a stored
    // fit must be meaningfully cheaper than refitting. Min-time is the
    // robust estimator on a shared/noisy host.
    let records = criterion.records();
    let min_ns = |id: &str| {
        records
            .iter()
            .find(|r| r.group == "fit_or_load" && r.id == id)
            .map(|r| r.min_ns)
            .expect("record present")
    };
    for kind in ["GBoost", "DLinear"] {
        let speedup = min_ns(&format!("cold/{kind}")) / min_ns(&format!("warm/{kind}"));
        println!("warm vs cold ({kind}): {speedup:.1}x");
        assert!(speedup >= 2.0, "{kind}: warm load speedup {speedup:.1}x < 2x");
    }
}
