//! Fit and predict cost of each forecasting model at reduced (bench-scale)
//! window sizes — the per-task cost driver of the evaluation grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use forecast::model::ALL_MODELS;
use forecast::{build_model, BuildOptions};
use tsdata::datasets::{generate, DatasetKind, GenOptions};
use tsdata::split::{split, SplitSpec};

fn options() -> BuildOptions {
    BuildOptions { input_len: 32, horizon: 8, season: Some(96), ..Default::default() }
}

fn bench_fit(c: &mut Criterion) {
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(1_200));
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    for kind in ALL_MODELS {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut model = build_model(kind, options());
                model.fit(black_box(&s.train), black_box(&s.val)).expect("fits");
                model
            })
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = generate(DatasetKind::ETTm1, GenOptions::with_len(1_200));
    let s = split(&data, SplitSpec::default()).expect("splits");
    let window = s.test.target().values()[..32].to_vec();
    let mut group = c.benchmark_group("predict");
    for kind in ALL_MODELS {
        let mut model = build_model(kind, options());
        model.fit(&s.train, &s.val).expect("fits");
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| model.predict(black_box(std::slice::from_ref(&window))).expect("predicts"))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fit, bench_predict
);
criterion_main!(benches);
