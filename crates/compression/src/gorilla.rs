//! Facebook Gorilla floating-point compression (Pelkonen et al., VLDB 2015),
//! the paper's lossless baseline (§3.3).
//!
//! Each value is XORed with its predecessor; a zero XOR costs one bit, and
//! nonzero XORs reuse or re-emit a (leading-zeros, length) window for the
//! meaningful bits. Unlike the original two-hour blocks, the paper
//! compresses "the whole time series as a single segment" because some
//! datasets would have only 8 points per block — this implementation does
//! the same (see the `benches/ablate_gorilla` ablation for the block
//! variant).

use tsdata::series::RegularTimeSeries;

use crate::bitstream::{BitReader, BitWriter};
use crate::codec::{CodecError, CompressedSeries, PeblcCompressor};
use crate::deflate;
use crate::reader::ByteReader;
use crate::timestamps;

/// The Gorilla codec. Implements [`PeblcCompressor`] with the error bound
/// ignored (it is lossless), so it can run through the same evaluation grid.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gorilla;

/// Compresses a value slice into Gorilla bits (no header).
pub fn compress_values(values: &[f64], w: &mut BitWriter) {
    if values.is_empty() {
        return;
    }
    w.write_bits(values[0].to_bits(), 64);
    let mut prev = values[0].to_bits();
    // Invalid window forces the first nonzero XOR to emit a new one.
    let mut prev_leading: u32 = u32::MAX;
    let mut prev_trailing: u32 = 0;
    for &v in &values[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        if xor == 0 {
            w.write_bit(false);
        } else {
            w.write_bit(true);
            let leading = xor.leading_zeros().min(31);
            let trailing = xor.trailing_zeros();
            if prev_leading != u32::MAX && leading >= prev_leading && trailing >= prev_trailing {
                // Reuse the previous window.
                w.write_bit(false);
                let len = 64 - prev_leading - prev_trailing;
                w.write_bits(xor >> prev_trailing, len as u8);
            } else {
                w.write_bit(true);
                let len = 64 - leading - trailing;
                w.write_bits(leading as u64, 5);
                // len is in 1..=64; store len - 1 in 6 bits.
                w.write_bits((len - 1) as u64, 6);
                w.write_bits(xor >> trailing, len as u8);
                prev_leading = leading;
                prev_trailing = trailing;
            }
        }
        prev = bits;
    }
}

/// Decompresses `n` values from Gorilla bits.
pub fn decompress_values(r: &mut BitReader<'_>, n: usize) -> Result<Vec<f64>, CodecError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    // An honest stream spends 64 bits on the first value and at least one
    // bit on each later one; reject a tampered count before allocating for
    // values the stream cannot possibly hold.
    if n > r.remaining().saturating_sub(63) {
        return Err(CodecError::Corrupt(format!(
            "gorilla count {n} exceeds the {}-bit stream",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    let err = |_| CodecError::Corrupt("gorilla stream truncated".into());
    let mut prev = r.read_bits(64).map_err(err)?;
    out.push(f64::from_bits(prev));
    let mut leading: u32 = 0;
    let mut trailing: u32 = 0;
    let mut have_window = false;
    for _ in 1..n {
        let bits = if !r.read_bit().map_err(err)? {
            prev
        } else if !r.read_bit().map_err(err)? {
            if !have_window {
                return Err(CodecError::Corrupt("gorilla window reuse before define".into()));
            }
            let len = 64 - leading - trailing;
            let meaningful = r.read_bits(len as u8).map_err(err)?;
            prev ^ (meaningful << trailing)
        } else {
            leading = r.read_bits(5).map_err(err)? as u32;
            let len = r.read_bits(6).map_err(err)? as u32 + 1;
            if leading + len > 64 {
                return Err(CodecError::Corrupt("gorilla window exceeds 64 bits".into()));
            }
            trailing = 64 - leading - len;
            have_window = true;
            let meaningful = r.read_bits(len as u8).map_err(err)?;
            prev ^ (meaningful << trailing)
        };
        prev = bits;
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

/// Stateful point-at-a-time XOR encoder for the store's append path.
///
/// Pushing values one by one produces a bit stream identical to
/// [`compress_values`] over the same slice (tested below), so a sealed
/// chunk written through the appender decodes with [`decompress_values`].
#[derive(Debug, Clone)]
pub struct ValueAppender {
    w: BitWriter,
    prev: u64,
    prev_leading: u32,
    prev_trailing: u32,
    count: usize,
}

impl Default for ValueAppender {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueAppender {
    /// Creates an empty appender.
    pub fn new() -> Self {
        ValueAppender {
            w: BitWriter::new(),
            prev: 0,
            prev_leading: u32::MAX,
            prev_trailing: 0,
            count: 0,
        }
    }

    /// Number of values appended so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no value has been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bits written so far (the live bytes/point gauge for seal policies).
    pub fn len_bits(&self) -> usize {
        self.w.len_bits()
    }

    /// Appends one value, emitting the same bits [`compress_values`] would.
    pub fn push(&mut self, v: f64) {
        let bits = v.to_bits();
        if self.count == 0 {
            self.w.write_bits(bits, 64);
            self.prev = bits;
            self.count = 1;
            return;
        }
        let xor = bits ^ self.prev;
        if xor == 0 {
            self.w.write_bit(false);
        } else {
            self.w.write_bit(true);
            let leading = xor.leading_zeros().min(31);
            let trailing = xor.trailing_zeros();
            if self.prev_leading != u32::MAX
                && leading >= self.prev_leading
                && trailing >= self.prev_trailing
            {
                self.w.write_bit(false);
                let len = 64 - self.prev_leading - self.prev_trailing;
                self.w.write_bits(xor >> self.prev_trailing, len as u8);
            } else {
                self.w.write_bit(true);
                let len = 64 - leading - trailing;
                self.w.write_bits(leading as u64, 5);
                self.w.write_bits((len - 1) as u64, 6);
                self.w.write_bits(xor >> trailing, len as u8);
                self.prev_leading = leading;
                self.prev_trailing = trailing;
            }
        }
        self.prev = bits;
        self.count += 1;
    }

    /// Consumes the appender, returning the padded byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.w.into_bytes()
    }
}

impl PeblcCompressor for Gorilla {
    fn name(&self) -> &'static str {
        "GORILLA"
    }

    /// Lossless: `_epsilon` is accepted for interface uniformity and
    /// ignored.
    fn compress(
        &self,
        series: &RegularTimeSeries,
        _epsilon: f64,
    ) -> Result<CompressedSeries, CodecError> {
        let mut inner = timestamps::try_encode_header(series.start(), series.interval())?;
        inner.extend_from_slice(&(series.len() as u32).to_le_bytes());
        // Sensor-like data averages well under 40 bits/value; sizing for
        // the first value's 64 bits plus that keeps growth to one realloc
        // in the worst case instead of byte-at-a-time doubling.
        let mut w = BitWriter::with_capacity(64 + series.len() * 40);
        compress_values(series.values(), &mut w);
        inner.extend_from_slice(&w.into_bytes());
        Ok(CompressedSeries {
            method: self.name(),
            bytes: deflate::compress(&inner),
            num_segments: 1,
        })
    }

    fn decompress(&self, compressed: &CompressedSeries) -> Result<RegularTimeSeries, CodecError> {
        let inner = deflate::decompress(&compressed.bytes)?;
        let mut hdr = ByteReader::new(&inner);
        let (start, interval) = timestamps::read_header(&mut hdr)?;
        let n = hdr.read_u32_le()? as usize;
        if n == 0 {
            return Err(CodecError::Corrupt("empty gorilla series".into()));
        }
        let mut r = BitReader::new(hdr.rest());
        let values = decompress_values(&mut r, n)?;
        Ok(RegularTimeSeries::new(start, interval, values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: Vec<f64>) -> RegularTimeSeries {
        RegularTimeSeries::new(0, 60, values).unwrap()
    }

    fn roundtrip(values: Vec<f64>) {
        let (d, _) = Gorilla.transform(&series(values.clone()), 0.0).unwrap();
        let got: Vec<u64> = d.values().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "lossless bitwise roundtrip");
    }

    #[test]
    fn exact_roundtrip_smooth() {
        roundtrip((0..2000).map(|i| 20.0 + (i as f64 * 0.01).sin()).collect());
    }

    #[test]
    fn exact_roundtrip_constants_and_specials() {
        roundtrip(vec![5.0; 100]);
        roundtrip(vec![0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN_POSITIVE, 1e-300]);
    }

    #[test]
    fn single_value() {
        roundtrip(vec![std::f64::consts::PI]);
    }

    #[test]
    fn repeated_values_cost_one_bit() {
        let mut w = BitWriter::new();
        compress_values(&vec![7.5; 1001], &mut w);
        // 64 bits for the first + 1000 zero-XOR bits
        assert_eq!(w.len_bits(), 64 + 1000);
    }

    #[test]
    fn similar_values_compress() {
        // Values differing only in low mantissa bits: window reuse kicks in.
        let values: Vec<f64> = (0..10_000).map(|i| 100.0 + (i % 16) as f64 * 1e-12).collect();
        let mut w = BitWriter::new();
        compress_values(&values, &mut w);
        let bits_per_value = w.len_bits() as f64 / values.len() as f64;
        assert!(bits_per_value < 40.0, "bits/value {bits_per_value}");
    }

    #[test]
    fn cr_in_paper_ballpark_on_sensorlike_data() {
        // Paper §4.2: GORILLA CR between 1.49x and 3.09x on the datasets
        // (vs raw bytes — Gorilla is a storage encoding). Check on the
        // actual ETTm1 recreation the evaluation uses.
        let s = tsdata::datasets::generate_univariate(
            tsdata::datasets::DatasetKind::ETTm1,
            tsdata::datasets::GenOptions::with_len(8_000),
        );
        let raw = crate::codec::raw_bytes(&s).len();
        let c = Gorilla.compress(&s, 0.0).unwrap();
        let cr = raw as f64 / c.size_bytes() as f64;
        assert!(cr > 1.2 && cr < 5.0, "gorilla CR {cr}");
    }

    #[test]
    fn decompression_is_exact_bitwise() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64).sqrt() * -3.7).collect();
        let (d, _) = Gorilla.transform(&series(values.clone()), 0.0).unwrap();
        for (a, b) in values.iter().zip(d.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_stream_detected() {
        let c = Gorilla.compress(&series(vec![1.0, 2.0, 3.0]), 0.0).unwrap();
        let inner = deflate::decompress(&c.bytes).unwrap();
        let cut = &inner[..inner.len() - 1];
        let frame =
            CompressedSeries { method: "GORILLA", bytes: deflate::compress(cut), num_segments: 1 };
        assert!(Gorilla.decompress(&frame).is_err());
    }

    #[test]
    fn appender_bits_match_batch_encoder() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![std::f64::consts::PI],
            vec![7.5; 1001],
            (0..2000).map(|i| 20.0 + (i as f64 * 0.01).sin()).collect(),
            (0..500).map(|i| (i as f64).sqrt() * -3.7).collect(),
            vec![0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN_POSITIVE, 1e-300],
            vec![f64::from_bits(0x8000_0000_0000_0001), f64::from_bits(0x7FFF_FFFF_FFFF_FFFE)],
        ];
        for values in cases {
            let mut w = BitWriter::new();
            compress_values(&values, &mut w);
            let mut a = ValueAppender::new();
            for &v in &values {
                a.push(v);
            }
            assert_eq!(a.len(), values.len());
            assert_eq!(a.into_bytes(), w.into_bytes(), "n={}", values.len());
        }
    }

    #[test]
    fn appender_stream_decodes() {
        let values: Vec<f64> = (0..1500).map(|i| 3.0 + (i % 9) as f64 * 0.25).collect();
        let mut a = ValueAppender::new();
        for &v in &values {
            a.push(v);
        }
        let bytes = a.into_bytes();
        let mut r = BitReader::new(&bytes);
        let got = decompress_values(&mut r, values.len()).unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_64bit_window() {
        // Adjacent values whose XOR has no leading/trailing zeros exercise
        // the len = 64 encoding path (stored as 63 in 6 bits).
        roundtrip(vec![
            f64::from_bits(0x8000_0000_0000_0001),
            f64::from_bits(0x7FFF_FFFF_FFFF_FFFE),
        ]);
    }
}
