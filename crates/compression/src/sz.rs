//! SZ-style error-bounded lossy compression (Liang et al., Big Data 2018;
//! the paper uses SZ 2.1 via Libpressio).
//!
//! The pipeline mirrors SZ's stages (paper §3.2):
//!
//! 1. **Pointwise relative bound via log transform.** SZ 2.1's pointwise
//!    relative mode compresses `t = ln|v|` with the *absolute* bound
//!    `δ = ln(1 + ε)`; then `v̂ = sign · exp(t̂)` satisfies
//!    `|v̂ - v| ≤ ε·|v|`. Exact zeros and signs are kept in bitmaps.
//! 2. **Block split.** The (nonzero) log values are cut into fixed blocks.
//! 3. **Best-fit predictor per block** among classic Lorenzo (previous
//!    reconstructed value), mean-integrated Lorenzo (block mean) and linear
//!    regression, chosen by estimated coding cost.
//! 4. **Linear-scale quantization** of prediction residuals into
//!    `2·RADIUS + 1` bins of width `2δ`; out-of-range points are stored
//!    verbatim ("unpredictable", as in SZ).
//! 5. **Entropy coding** of the quantization codes with canonical Huffman.
//! 6. A final DEFLATE pass (SZ applies gzip last).
//!
//! The quantization step is what makes SZ's output look piecewise-constant
//! with short-interval fluctuations (paper Figure 1), and this
//! implementation reproduces that texture.

use tsdata::series::RegularTimeSeries;

use crate::bitstream::{BitReader, BitWriter};
use crate::block::{self, Bitset};
use crate::codec::{check_epsilon, CodecError, CompressedSeries, PeblcCompressor};
use crate::deflate;
use crate::huffman::CanonicalCode;
use crate::reader::ByteReader;
use crate::timestamps;

/// Quantization radius: codes lie in `[-RADIUS, RADIUS]`.
const RADIUS: i64 = 512;
/// Alphabet: shifted codes plus one escape symbol for unpredictable points.
const ALPHABET: usize = (2 * RADIUS + 1) as usize + 1;
const ESCAPE: usize = ALPHABET - 1;
/// SZ's default 1-D block size.
pub const BLOCK_SIZE: usize = 128;

/// Wire modes, selected by the byte after the value count. Mode 0 stores
/// raw values (ε = 0), mode 1 is the legacy Huffman-per-symbol format
/// (still decoded, no longer written by [`Sz::compress`]), mode 2 packs
/// zigzagged quantization codes through [`crate::block`]'s lanes and
/// stores bitmaps in the word-backed LSB-first layout (DESIGN.md §11).
const MODE_RAW: u8 = 0;
const MODE_HUFFMAN: u8 = 1;
const MODE_BLOCKED: u8 = 2;

/// Escape marker in the blocked symbol stream: zigzagged codes occupy
/// `0..=2·RADIUS`, so the next value is free.
const BLOCKED_ESCAPE: u64 = 2 * RADIUS as u64 + 1;

/// The SZ compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sz;

/// Per-block predictor, as selected by SZ's best-fit stage.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Predictor {
    /// Classic Lorenzo: previous reconstructed value.
    Lorenzo,
    /// Mean-integrated Lorenzo: the block mean.
    Mean(f64),
    /// Linear regression within the block: `a + b·i`.
    Linear { a: f64, b: f64 },
}

impl Predictor {
    fn tag(&self) -> u8 {
        match self {
            Predictor::Lorenzo => 0,
            Predictor::Mean(_) => 1,
            Predictor::Linear { .. } => 2,
        }
    }
}

/// Encodes one block with the given predictor, returning quantization codes
/// (`None` = unpredictable) and the reconstructed values.
fn quantize_block(
    block: &[f64],
    pred: Predictor,
    prev_recon: Option<f64>,
    delta: f64,
) -> (Vec<Option<i64>>, Vec<f64>) {
    let mut codes = Vec::with_capacity(block.len());
    let mut recon = Vec::with_capacity(block.len());
    for (i, &t) in block.iter().enumerate() {
        let p = match pred {
            Predictor::Lorenzo => {
                if i > 0 {
                    recon[i - 1]
                } else {
                    prev_recon.unwrap_or(0.0)
                }
            }
            Predictor::Mean(m) => m,
            Predictor::Linear { a, b } => a + b * i as f64,
        };
        // Range-check before casting: a non-finite quotient (NaN/±inf
        // values from a hostile decode) saturates `as i64` to i64::MIN,
        // whose .abs() overflows.
        let q = ((t - p) / (2.0 * delta)).round();
        if q.is_finite() && q.abs() <= RADIUS as f64 {
            let m = q as i64;
            let r = p + 2.0 * delta * m as f64;
            // Guard against pathological float cancellation: if the
            // reconstruction drifted past the bound, store verbatim.
            if (r - t).abs() <= delta {
                codes.push(Some(m));
                recon.push(r);
                continue;
            }
        }
        codes.push(None);
        recon.push(t);
    }
    (codes, recon)
}

/// Estimated coding cost in bits for a code sequence.
fn cost(codes: &[Option<i64>]) -> f64 {
    codes
        .iter()
        .map(|c| match c {
            // ~2·log2(|m|+2) models the Huffman length of a centered code.
            Some(m) => 2.0 * ((m.abs() + 2) as f64).log2() + 1.0,
            None => 72.0, // escape symbol + raw f64
        })
        .sum()
}

fn fit_linear(block: &[f64]) -> (f64, f64) {
    let n = block.len() as f64;
    if block.len() < 2 {
        return (block.first().copied().unwrap_or(0.0), 0.0);
    }
    let mean_i = (n - 1.0) / 2.0;
    let mean_t: f64 = block.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &t) in block.iter().enumerate() {
        let di = i as f64 - mean_i;
        num += di * (t - mean_t);
        den += di * di;
    }
    let b = if den == 0.0 { 0.0 } else { num / den };
    (mean_t - b * mean_i, b)
}

/// Chooses the cheapest predictor for a block (SZ's best-fit selection).
#[allow(clippy::type_complexity)]
fn select_predictor(
    block: &[f64],
    prev_recon: Option<f64>,
    delta: f64,
) -> (Predictor, Vec<Option<i64>>, Vec<f64>) {
    let mean = block.iter().sum::<f64>() / block.len() as f64;
    let (a, b) = fit_linear(block);
    let candidates = [Predictor::Lorenzo, Predictor::Mean(mean), Predictor::Linear { a, b }];
    let mut best: Option<(f64, Predictor, Vec<Option<i64>>, Vec<f64>)> = None;
    for pred in candidates {
        let (codes, recon) = quantize_block(block, pred, prev_recon, delta);
        // Coefficient storage counts toward the cost (Lorenzo is free).
        let coeff_bits = match pred {
            Predictor::Lorenzo => 0.0,
            Predictor::Mean(_) => 64.0,
            Predictor::Linear { .. } => 128.0,
        };
        let c = cost(&codes) + coeff_bits;
        if best.as_ref().is_none_or(|(bc, ..)| c < *bc) {
            best = Some((c, pred, codes, recon));
        }
    }
    let (_, pred, codes, recon) = best.expect("three candidates evaluated");
    (pred, codes, recon)
}

fn read_bitmap(r: &mut ByteReader<'_>, n: usize, mode: u8) -> Result<Bitset, CodecError> {
    let buf = r
        .read_bytes(n.div_ceil(8))
        .map_err(|_| CodecError::Corrupt(format!("{n}-point bitmap truncated")))?;
    let set = if mode == MODE_HUFFMAN {
        Bitset::from_msb_bytes(buf, n)
    } else {
        Bitset::from_le_bytes(buf, n)
    };
    set.map_err(|e| CodecError::Corrupt(e.to_string()))
}

/// Encodes `series` with the legacy mode-1 wire format (Huffman-coded
/// symbols, MSB-first bitmaps). [`Sz::compress`] no longer writes this
/// format, but old frames must stay decodable, so this writer is kept to
/// feed the roundtrip tests and the fuzz corpus that prove it.
pub fn compress_huffman(
    series: &RegularTimeSeries,
    epsilon: f64,
) -> Result<CompressedSeries, CodecError> {
    compress_impl(series, epsilon, MODE_HUFFMAN)
}

fn compress_impl(
    series: &RegularTimeSeries,
    epsilon: f64,
    mode: u8,
) -> Result<CompressedSeries, CodecError> {
    check_epsilon(epsilon)?;
    let values = series.values();
    let n = values.len();
    let mut inner = timestamps::try_encode_header(series.start(), series.interval())?;
    inner.extend_from_slice(&(n as u32).to_le_bytes());

    if epsilon == 0.0 {
        // Lossless fallback mode.
        inner.push(MODE_RAW);
        inner.reserve(n * 8);
        for &v in values {
            inner.extend_from_slice(&v.to_le_bytes());
        }
        let bytes = deflate::compress(&inner);
        let num_segments = constant_runs(values);
        return Ok(CompressedSeries { method: "SZ", bytes, num_segments });
    }
    inner.push(mode);
    inner.extend_from_slice(&epsilon.to_le_bytes());

    let mut zero = Bitset::with_len(n);
    let mut sign = Bitset::with_len(n);
    for (i, &v) in values.iter().enumerate() {
        if v == 0.0 {
            zero.set(i);
        }
        if v < 0.0 {
            sign.set(i);
        }
    }
    if mode == MODE_HUFFMAN {
        // Byte-identical to the historical BitWriter-backed bitmaps.
        inner.extend_from_slice(&zero.to_msb_bytes());
        inner.extend_from_slice(&sign.to_msb_bytes());
    } else {
        inner.extend_from_slice(&zero.to_le_bytes());
        inner.extend_from_slice(&sign.to_le_bytes());
    }

    let logs: Vec<f64> = values.iter().filter(|&&v| v != 0.0).map(|&v| v.abs().ln()).collect();
    let delta = (1.0 + epsilon).ln();

    // Encode blocks.
    let mut block_meta: Vec<u8> = Vec::new();
    let mut all_codes: Vec<Option<i64>> = Vec::with_capacity(logs.len());
    let mut unpredictable: Vec<f64> = Vec::new();
    let mut prev_recon: Option<f64> = None;
    let mut recon_logs: Vec<f64> = Vec::with_capacity(logs.len());
    for block in logs.chunks(BLOCK_SIZE) {
        let (pred, codes, recon) = select_predictor(block, prev_recon, delta);
        block_meta.push(pred.tag());
        match pred {
            Predictor::Lorenzo => {}
            Predictor::Mean(m) => block_meta.extend_from_slice(&m.to_le_bytes()),
            Predictor::Linear { a, b } => {
                block_meta.extend_from_slice(&a.to_le_bytes());
                block_meta.extend_from_slice(&b.to_le_bytes());
            }
        }
        for (c, (&t, &r)) in codes.iter().zip(block.iter().zip(&recon)) {
            if c.is_none() {
                // Bitwise so a NaN escape (NaN != NaN) doesn't trip it.
                debug_assert_eq!(t.to_bits(), r.to_bits());
                unpredictable.push(t);
            }
        }
        prev_recon = recon.last().copied().or(prev_recon);
        all_codes.extend_from_slice(&codes);
        recon_logs.extend_from_slice(&recon);
    }

    let num_blocks = logs.len().div_ceil(BLOCK_SIZE);
    inner.extend_from_slice(&(num_blocks as u32).to_le_bytes());
    inner.extend_from_slice(&block_meta);

    if mode == MODE_HUFFMAN {
        // Entropy-code the quantization codes.
        if !all_codes.is_empty() {
            let mut freqs = vec![0u64; ALPHABET];
            for c in &all_codes {
                let sym = c.map_or(ESCAPE, |m| (m + RADIUS) as usize);
                freqs[sym] += 1;
            }
            let code = CanonicalCode::from_freqs(&freqs)
                .map_err(|e| CodecError::Corrupt(format!("huffman build: {e}")))?;
            let mut w = BitWriter::with_capacity(ALPHABET * 4 + all_codes.len() * 12);
            for &l in code.lengths() {
                w.write_bits(l as u64, 4);
            }
            for c in &all_codes {
                let sym = c.map_or(ESCAPE, |m| (m + RADIUS) as usize);
                code.encode(sym, &mut w);
            }
            let payload = w.into_bytes();
            inner.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            inner.extend_from_slice(&payload);
        } else {
            inner.extend_from_slice(&0u32.to_le_bytes());
        }
    } else {
        // Blocked packing: zigzag keeps near-zero quantization codes (the
        // common case after prediction) in narrow lanes; the escape takes
        // the first value past the zigzagged range. Self-delimiting, so no
        // payload-length prefix.
        let syms: Vec<u64> =
            all_codes.iter().map(|c| c.map_or(BLOCKED_ESCAPE, block::zigzag)).collect();
        inner.extend_from_slice(&block::encode_u64s(&syms));
    }

    inner.extend_from_slice(&(unpredictable.len() as u32).to_le_bytes());
    inner.reserve(unpredictable.len() * 8);
    for &u in &unpredictable {
        inner.extend_from_slice(&u.to_le_bytes());
    }

    // Figure-3 segment counting for SZ: runs of constant decompressed
    // values, the "constant line like PMC" texture quantization creates.
    let decompressed = reassemble(n, &zero, &sign, &recon_logs);
    let num_segments = constant_runs(&decompressed);

    Ok(CompressedSeries { method: "SZ", bytes: deflate::compress(&inner), num_segments })
}

impl PeblcCompressor for Sz {
    fn name(&self) -> &'static str {
        "SZ"
    }

    fn compress(
        &self,
        series: &RegularTimeSeries,
        epsilon: f64,
    ) -> Result<CompressedSeries, CodecError> {
        compress_impl(series, epsilon, MODE_BLOCKED)
    }

    fn decompress(&self, compressed: &CompressedSeries) -> Result<RegularTimeSeries, CodecError> {
        let inner = deflate::decompress(&compressed.bytes)?;
        let mut r = ByteReader::new(&inner);
        let (start, interval) = timestamps::read_header(&mut r)?;
        let n = r.read_u32_le()? as usize;
        let mode = r.read_u8()?;
        match mode {
            0 => {
                // Raw values cost 8 bytes each; a tampered count cannot
                // allocate past what the input holds.
                if n > r.bounded_capacity(n, 8) {
                    return Err(CodecError::Corrupt(format!(
                        "raw count {n} exceeds the {} remaining bytes",
                        r.remaining()
                    )));
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(r.read_f64_le()?);
                }
                Ok(RegularTimeSeries::new(start, interval, values)?)
            }
            mode @ (MODE_HUFFMAN | MODE_BLOCKED) => {
                let epsilon = r.read_f64_le()?;
                // An honest encoder only writes bounds that passed
                // `check_epsilon`; anything else poisons every value
                // through `delta`.
                if !epsilon.is_finite() || epsilon < 0.0 {
                    return Err(CodecError::Corrupt(format!("invalid stored epsilon {epsilon}")));
                }
                let delta = (1.0 + epsilon).ln();
                let zero = read_bitmap(&mut r, n, mode)?;
                let sign = read_bitmap(&mut r, n, mode)?;
                let nz = zero.count_zeros();
                let num_blocks = r.read_u32_le()? as usize;
                // The block partition is fully determined by `nz`; any
                // other count desynchronizes every later field.
                if num_blocks != nz.div_ceil(BLOCK_SIZE) {
                    return Err(CodecError::Corrupt(format!(
                        "block count {num_blocks} does not match {nz} nonzero values"
                    )));
                }
                // Block metadata: ≥ 1 byte per block (the predictor tag).
                let mut preds = Vec::with_capacity(r.bounded_capacity(num_blocks, 1));
                for _ in 0..num_blocks {
                    let pred = match r.read_u8()? {
                        0 => Predictor::Lorenzo,
                        1 => Predictor::Mean(r.read_f64_le()?),
                        2 => {
                            let a = r.read_f64_le()?;
                            let b = r.read_f64_le()?;
                            Predictor::Linear { a, b }
                        }
                        t => return Err(CodecError::Corrupt(format!("unknown predictor {t}"))),
                    };
                    preds.push(pred);
                }
                // Quantization symbols, one per nonzero value.
                let symbols = if mode == MODE_HUFFMAN {
                    // Legacy: Huffman-coded behind a payload-length prefix.
                    let paylen = r.read_u32_le()? as usize;
                    let payload = r
                        .read_bytes(paylen)
                        .map_err(|_| CodecError::Corrupt("code stream truncated".into()))?;
                    let mut symbols = Vec::with_capacity(payload.len().min(nz));
                    if paylen > 0 {
                        let mut bits = BitReader::new(payload);
                        let code = CanonicalCode::read_lengths4(&mut bits, ALPHABET)
                            .map_err(|e| CodecError::Corrupt(format!("huffman table: {e}")))?;
                        for _ in 0..nz {
                            let s = code
                                .decode(&mut bits)
                                .map_err(|e| CodecError::Corrupt(format!("code stream: {e}")))?;
                            symbols.push(s);
                        }
                    }
                    symbols
                } else {
                    // Blocked: self-delimiting lane stream of zigzagged
                    // codes; translate to the shared shifted-symbol space.
                    let raw = block::decode_u64s(&mut r)
                        .map_err(|e| CodecError::Corrupt(format!("code stream: {e}")))?;
                    let mut symbols = Vec::with_capacity(raw.len());
                    for &z in &raw {
                        if z == BLOCKED_ESCAPE {
                            symbols.push(ESCAPE);
                        } else if z < BLOCKED_ESCAPE {
                            symbols.push((block::unzigzag(z) + RADIUS) as usize);
                        } else {
                            return Err(CodecError::Corrupt(format!(
                                "quantization code {z} out of range"
                            )));
                        }
                    }
                    symbols
                };
                if symbols.len() != nz {
                    // A stream that cannot describe every nonzero value
                    // (this indexed out of bounds before decode went
                    // total).
                    return Err(CodecError::Corrupt(format!(
                        "code stream holds {} symbols, need {nz}",
                        symbols.len()
                    )));
                }
                // Unpredictable raw values (8 bytes each).
                let n_unp = r.read_u32_le()? as usize;
                if n_unp > r.bounded_capacity(n_unp, 8) {
                    return Err(CodecError::Corrupt(format!(
                        "unpredictable count {n_unp} exceeds the {} remaining bytes",
                        r.remaining()
                    )));
                }
                let mut unpredictable = Vec::with_capacity(n_unp);
                for _ in 0..n_unp {
                    unpredictable.push(r.read_f64_le()?);
                }

                // Reconstruct log values block by block.
                let mut recon_logs = Vec::with_capacity(nz);
                let mut unp_iter = unpredictable.iter();
                let mut prev_recon: Option<f64> = None;
                let mut pos = 0usize;
                for &pred in &preds {
                    let blen = BLOCK_SIZE.min(nz - pos);
                    let mut block_recon: Vec<f64> = Vec::with_capacity(blen);
                    for i in 0..blen {
                        let sym = symbols[pos + i];
                        let p = match pred {
                            Predictor::Lorenzo => {
                                if i > 0 {
                                    block_recon[i - 1]
                                } else {
                                    prev_recon.unwrap_or(0.0)
                                }
                            }
                            Predictor::Mean(m) => m,
                            Predictor::Linear { a, b } => a + b * i as f64,
                        };
                        let t = if sym == ESCAPE {
                            *unp_iter.next().ok_or_else(|| {
                                CodecError::Corrupt("unpredictable underflow".into())
                            })?
                        } else {
                            p + 2.0 * delta * (sym as i64 - RADIUS) as f64
                        };
                        block_recon.push(t);
                    }
                    prev_recon = block_recon.last().copied().or(prev_recon);
                    recon_logs.extend_from_slice(&block_recon);
                    pos += blen;
                }

                let values = reassemble(n, &zero, &sign, &recon_logs);
                Ok(RegularTimeSeries::new(start, interval, values)?)
            }
            m => Err(CodecError::Corrupt(format!("unknown SZ mode {m}"))),
        }
    }
}

/// Re-inserts zeros and signs around reconstructed log magnitudes. The
/// bitmaps are word-backed bitsets indexed directly — no intermediate
/// `Vec<bool>` materialization on the decode path.
fn reassemble(n: usize, zero: &Bitset, sign: &Bitset, recon_logs: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut it = recon_logs.iter();
    for i in 0..n {
        if zero.get(i) {
            out.push(0.0);
        } else {
            let mag = it.next().copied().unwrap_or(0.0).exp();
            out.push(if sign.get(i) { -mag } else { mag });
        }
    }
    out
}

/// Number of maximal runs of identical consecutive values.
pub fn constant_runs(values: &[f64]) -> usize {
    if values.is_empty() {
        return 0;
    }
    1 + values.windows(2).filter(|w| w[0] != w[1]).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::find_bound_violation;

    fn series(values: Vec<f64>) -> RegularTimeSeries {
        RegularTimeSeries::new(0, 600, values).unwrap()
    }

    fn wavy(n: usize) -> Vec<f64> {
        (0..n).map(|i| 20.0 + (i as f64 * 0.03).sin() * 8.0 + ((i * 7) % 5) as f64 * 0.05).collect()
    }

    #[test]
    fn roundtrip_respects_relative_bound() {
        let vals = wavy(3000);
        for eps in [0.01, 0.05, 0.2, 0.8] {
            let (d, _) = Sz.transform(&series(vals.clone()), eps).unwrap();
            assert_eq!(d.len(), vals.len());
            assert!(
                find_bound_violation(&vals, d.values(), eps, 1e-9).is_none(),
                "bound violated at eps {eps}"
            );
        }
    }

    #[test]
    fn zeros_and_signs_survive() {
        let vals = vec![0.0, -3.0, 2.0, 0.0, -0.5, 1e-8, 0.0];
        let (d, _) = Sz.transform(&series(vals.clone()), 0.3).unwrap();
        assert_eq!(d.values()[0], 0.0);
        assert_eq!(d.values()[3], 0.0);
        assert_eq!(d.values()[6], 0.0);
        assert!(d.values()[1] < 0.0);
        assert!(d.values()[4] < 0.0);
        assert!(find_bound_violation(&vals, d.values(), 0.3, 1e-12).is_none());
    }

    #[test]
    fn epsilon_zero_is_lossless() {
        let vals = wavy(500);
        let (d, _) = Sz.transform(&series(vals.clone()), 0.0).unwrap();
        assert_eq!(d.values(), &vals[..]);
    }

    #[test]
    fn quantization_creates_constant_runs() {
        // Paper Figure 1: "SZ seems to fit a constant line like PMC ...
        // due to the quantization step".
        let vals = wavy(4000);
        let c = Sz.compress(&series(vals.clone()), 0.2).unwrap();
        let runs_raw = constant_runs(&vals);
        assert!(c.num_segments < runs_raw, "{} vs {}", c.num_segments, runs_raw);
    }

    #[test]
    fn segment_count_drops_with_epsilon() {
        let vals = wavy(6000);
        let s = series(vals);
        let low = Sz.compress(&s, 0.05).unwrap().num_segments;
        let high = Sz.compress(&s, 0.5).unwrap().num_segments;
        assert!(high < low, "{high} vs {low}");
    }

    #[test]
    fn high_cr_at_low_epsilon_vs_pmc() {
        // Paper §4.2 / RQ1.2: SZ provides the highest CR at low error
        // bounds thanks to quantization + entropy coding.
        let vals = wavy(10_000);
        let s = series(vals);
        let sz = Sz.compress(&s, 0.01).unwrap().size_bytes();
        let pmc = crate::pmc::Pmc.compress(&s, 0.01).unwrap().size_bytes();
        assert!(sz < pmc, "sz {sz} vs pmc {pmc}");
    }

    #[test]
    fn smooth_blocks_use_cheap_predictors() {
        // A noiseless trending series should compress to very few bytes.
        let vals: Vec<f64> = (0..5000).map(|i| 100.0 + 0.01 * i as f64).collect();
        let s = series(vals.clone());
        let c = Sz.compress(&s, 0.05).unwrap();
        assert!(c.size_bytes() < 2000, "{}", c.size_bytes());
        let d = Sz.decompress(&c).unwrap();
        assert!(find_bound_violation(&vals, d.values(), 0.05, 1e-9).is_none());
    }

    #[test]
    fn spiky_outliers_stored_unpredictably_but_bounded() {
        let mut vals = wavy(1000);
        vals[100] = 1e6;
        vals[500] = 1e-6;
        vals[900] = -4000.0;
        let (d, _) = Sz.transform(&series(vals.clone()), 0.1).unwrap();
        assert!(find_bound_violation(&vals, d.values(), 0.1, 1e-6).is_none());
    }

    #[test]
    fn all_zero_series() {
        let vals = vec![0.0; 300];
        let (d, _) = Sz.transform(&series(vals.clone()), 0.5).unwrap();
        assert_eq!(d.values(), &vals[..]);
    }

    #[test]
    fn timestamps_roundtrip() {
        let s = RegularTimeSeries::new(777, 2, vec![3.0, 4.0, 5.0]).unwrap();
        let (d, _) = Sz.transform(&s, 0.1).unwrap();
        assert_eq!(d.start(), 777);
        assert_eq!(d.interval(), 2);
    }

    #[test]
    fn corrupt_data_detected() {
        let c = Sz.compress(&series(wavy(100)), 0.1).unwrap();
        let truncated = CompressedSeries {
            method: "SZ",
            bytes: deflate::compress(&[1, 2, 3]),
            num_segments: 0,
        };
        assert!(Sz.decompress(&truncated).is_err());
        // Flipping the mode byte inside is caught too.
        let inner = deflate::decompress(&c.bytes).unwrap();
        let mut bad = inner.clone();
        bad[10] = 9; // mode byte position: 6 header + 4 count
        let frame =
            CompressedSeries { method: "SZ", bytes: deflate::compress(&bad), num_segments: 0 };
        assert!(Sz.decompress(&frame).is_err());
    }

    #[test]
    fn legacy_huffman_mode_still_decodes() {
        // Mode-1 frames (the pre-blocked wire format) must decompress to
        // exactly what the blocked mode produces: the quantization
        // pipeline is shared, only the serialization differs.
        let mut vals = wavy(3000);
        vals[7] = 0.0;
        vals[100] = -vals[100];
        vals[2999] = 0.0;
        let s = series(vals.clone());
        for eps in [0.01, 0.2] {
            let legacy = compress_huffman(&s, eps).unwrap();
            let blocked = Sz.compress(&s, eps).unwrap();
            let dl = Sz.decompress(&legacy).unwrap();
            let db = Sz.decompress(&blocked).unwrap();
            assert_eq!(dl.values(), db.values(), "eps {eps}");
            assert_eq!(legacy.num_segments, blocked.num_segments);
            assert!(find_bound_violation(&vals, dl.values(), eps, 1e-9).is_none());
        }
    }

    #[test]
    fn blocked_mode_rejects_out_of_range_codes() {
        // A blocked frame holds zigzagged codes ≤ BLOCKED_ESCAPE; decode
        // must reject anything larger rather than fold it into a bogus
        // quantization bin. Build a one-value mode-2 frame whose symbol
        // stream carries an impossible code.
        assert_eq!(BLOCKED_ESCAPE, ESCAPE as u64, "escape sits right past the zigzag range");
        let make = |sym: u64| {
            let mut inner = timestamps::encode_header(0, 600);
            inner.extend_from_slice(&1u32.to_le_bytes()); // n = 1
            inner.push(MODE_BLOCKED);
            inner.extend_from_slice(&0.1f64.to_le_bytes());
            inner.push(0); // zero bitmap: the value is nonzero
            inner.push(0); // sign bitmap: positive
            inner.extend_from_slice(&1u32.to_le_bytes()); // num_blocks
            inner.push(0); // Lorenzo tag
            inner.extend_from_slice(&block::encode_u64s(&[sym]));
            inner.extend_from_slice(&0u32.to_le_bytes()); // no unpredictables
            CompressedSeries { method: "SZ", bytes: deflate::compress(&inner), num_segments: 1 }
        };
        assert!(Sz.decompress(&make(0)).is_ok(), "honest in-range code decodes");
        assert!(Sz.decompress(&make(BLOCKED_ESCAPE + 1)).is_err(), "out-of-range code rejected");
    }

    #[test]
    fn constant_runs_counting() {
        assert_eq!(constant_runs(&[]), 0);
        assert_eq!(constant_runs(&[1.0]), 1);
        assert_eq!(constant_runs(&[1.0, 1.0, 2.0, 2.0, 1.0]), 3);
    }
}
