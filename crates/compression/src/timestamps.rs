//! Shared timestamp codec (§3.2).
//!
//! The paper stores, for every method, "the first timestamp as a 32-bit
//! integer, the sampling interval as a 16-bit integer, and the length of the
//! generated segments as a 16-bit integer" so that the methods are directly
//! comparable. This module implements that header and the segment-length
//! stream; the per-method payloads carry only model coefficients.

use crate::reader::ByteReader;

/// Header length: 4-byte start + 2-byte interval.
pub const HEADER_LEN: usize = 6;

/// The maximum representable segment length (16-bit).
pub const MAX_SEGMENT_LEN: usize = u16::MAX as usize;

/// Errors from timestamp (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimestampError {
    /// The start timestamp does not fit a 32-bit integer.
    StartOutOfRange(i64),
    /// The interval does not fit a 16-bit unsigned integer.
    IntervalOutOfRange(i64),
    /// The buffer is too short to contain a header.
    Truncated,
}

impl std::fmt::Display for TimestampError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimestampError::StartOutOfRange(t) => write!(f, "start {t} exceeds 32 bits"),
            TimestampError::IntervalOutOfRange(i) => write!(f, "interval {i} exceeds 16 bits"),
            TimestampError::Truncated => write!(f, "timestamp header truncated"),
        }
    }
}

impl std::error::Error for TimestampError {}

/// Encodes the header. Panics only via [`try_encode_header`]'s error path in
/// release use; prefer the fallible variant for untrusted input.
pub fn encode_header(start: i64, interval: i64) -> Vec<u8> {
    try_encode_header(start, interval).expect("timestamps in range for generated data")
}

/// Fallible header encoding.
pub fn try_encode_header(start: i64, interval: i64) -> Result<Vec<u8>, TimestampError> {
    let start32 = i32::try_from(start).map_err(|_| TimestampError::StartOutOfRange(start))?;
    let interval16 =
        u16::try_from(interval).map_err(|_| TimestampError::IntervalOutOfRange(interval))?;
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&start32.to_le_bytes());
    out.extend_from_slice(&interval16.to_le_bytes());
    Ok(out)
}

/// Decodes a header, returning `(start, interval, rest)`.
pub fn decode_header(buf: &[u8]) -> Result<(i64, i64, &[u8]), TimestampError> {
    let mut r = ByteReader::new(buf);
    let (start, interval) = read_header(&mut r)?;
    Ok((start, interval, r.rest()))
}

/// Decodes a header from a [`ByteReader`], leaving the cursor at the
/// first payload byte.
pub fn read_header(r: &mut ByteReader<'_>) -> Result<(i64, i64), TimestampError> {
    let start = r.read_i32_le().map_err(|_| TimestampError::Truncated)? as i64;
    let interval = r.read_u16_le().map_err(|_| TimestampError::Truncated)? as i64;
    Ok((start, interval))
}

/// Splits a logical segment length into 16-bit chunks, since the paper's
/// format caps segment lengths at 16 bits. Each chunk shares the segment's
/// model, so splitting preserves the reconstruction exactly.
pub fn split_segment_len(len: usize) -> impl Iterator<Item = u16> {
    let full = len / MAX_SEGMENT_LEN;
    let rem = (len % MAX_SEGMENT_LEN) as u16;
    std::iter::repeat_n(u16::MAX, full).chain((rem > 0).then_some(rem))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let b = encode_header(1_672_531_200, 900);
        assert_eq!(b.len(), HEADER_LEN);
        let (s, i, rest) = decode_header(&b).unwrap();
        assert_eq!(s, 1_672_531_200);
        assert_eq!(i, 900);
        assert!(rest.is_empty());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            try_encode_header(i64::MAX, 900),
            Err(TimestampError::StartOutOfRange(_))
        ));
        assert!(matches!(try_encode_header(0, 70_000), Err(TimestampError::IntervalOutOfRange(_))));
        assert!(matches!(try_encode_header(0, -1), Err(TimestampError::IntervalOutOfRange(_))));
    }

    #[test]
    fn truncated_header() {
        assert_eq!(decode_header(&[1, 2, 3]).unwrap_err(), TimestampError::Truncated);
    }

    #[test]
    fn segment_splitting() {
        assert_eq!(split_segment_len(10).collect::<Vec<_>>(), vec![10]);
        assert_eq!(split_segment_len(65_535).collect::<Vec<_>>(), vec![65_535]);
        assert_eq!(split_segment_len(65_536).collect::<Vec<_>>(), vec![65_535, 1]);
        assert_eq!(
            split_segment_len(200_000).collect::<Vec<_>>(),
            vec![65_535, 65_535, 65_535, 3_395]
        );
        assert_eq!(split_segment_len(0).count(), 0);
    }
}
