//! Shared timestamp codec (§3.2).
//!
//! The paper stores, for every method, "the first timestamp as a 32-bit
//! integer, the sampling interval as a 16-bit integer, and the length of the
//! generated segments as a 16-bit integer" so that the methods are directly
//! comparable. This module implements that header and the segment-length
//! stream; the per-method payloads carry only model coefficients.
//!
//! For *irregular* timestamp vectors (raw CSV timelines, streaming segment
//! boundaries) the module also provides a self-delimiting stream codec,
//! [`encode_stream`]/[`decode_stream`], with two wire formats behind a
//! leading tag byte (DESIGN.md §11):
//!
//! * [`STREAM_VARBIT`] — Gorilla-style per-value delta-of-delta prefix
//!   codes, one branch per value: the scalar baseline, and the cheaper
//!   format for short vectors.
//! * [`STREAM_BLOCKED`] — zigzagged delta-of-deltas packed through
//!   [`crate::block`]'s 128-value lanes: branch-free word-level unpacking
//!   on the decode hot path.

use crate::bitstream::{BitReader, BitWriter};
use crate::block;
use crate::reader::ByteReader;

/// Header length: 4-byte start + 2-byte interval.
pub const HEADER_LEN: usize = 6;

/// The maximum representable segment length (16-bit).
pub const MAX_SEGMENT_LEN: usize = u16::MAX as usize;

/// Errors from timestamp (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimestampError {
    /// The start timestamp does not fit a 32-bit integer.
    StartOutOfRange(i64),
    /// The interval does not fit a 16-bit unsigned integer.
    IntervalOutOfRange(i64),
    /// The buffer is too short to contain a header.
    Truncated,
    /// A timestamp stream is structurally invalid (bad tag, inconsistent
    /// counts, malformed block payload).
    Corrupt(String),
}

impl std::fmt::Display for TimestampError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimestampError::StartOutOfRange(t) => write!(f, "start {t} exceeds 32 bits"),
            TimestampError::IntervalOutOfRange(i) => write!(f, "interval {i} exceeds 16 bits"),
            TimestampError::Truncated => write!(f, "timestamp header truncated"),
            TimestampError::Corrupt(msg) => write!(f, "timestamp stream corrupt: {msg}"),
        }
    }
}

impl From<block::BlockError> for TimestampError {
    fn from(e: block::BlockError) -> Self {
        TimestampError::Corrupt(e.to_string())
    }
}

impl std::error::Error for TimestampError {}

/// Encodes the header. Panics only via [`try_encode_header`]'s error path in
/// release use; prefer the fallible variant for untrusted input.
pub fn encode_header(start: i64, interval: i64) -> Vec<u8> {
    try_encode_header(start, interval).expect("timestamps in range for generated data")
}

/// Fallible header encoding.
pub fn try_encode_header(start: i64, interval: i64) -> Result<Vec<u8>, TimestampError> {
    let start32 = i32::try_from(start).map_err(|_| TimestampError::StartOutOfRange(start))?;
    let interval16 =
        u16::try_from(interval).map_err(|_| TimestampError::IntervalOutOfRange(interval))?;
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&start32.to_le_bytes());
    out.extend_from_slice(&interval16.to_le_bytes());
    Ok(out)
}

/// Decodes a header, returning `(start, interval, rest)`.
pub fn decode_header(buf: &[u8]) -> Result<(i64, i64, &[u8]), TimestampError> {
    let mut r = ByteReader::new(buf);
    let (start, interval) = read_header(&mut r)?;
    Ok((start, interval, r.rest()))
}

/// Decodes a header from a [`ByteReader`], leaving the cursor at the
/// first payload byte.
pub fn read_header(r: &mut ByteReader<'_>) -> Result<(i64, i64), TimestampError> {
    let start = r.read_i32_le().map_err(|_| TimestampError::Truncated)? as i64;
    let interval = r.read_u16_le().map_err(|_| TimestampError::Truncated)? as i64;
    Ok((start, interval))
}

/// Splits a logical segment length into 16-bit chunks, since the paper's
/// format caps segment lengths at 16 bits. Each chunk shares the segment's
/// model, so splitting preserves the reconstruction exactly.
pub fn split_segment_len(len: usize) -> impl Iterator<Item = u16> {
    let full = len / MAX_SEGMENT_LEN;
    let rem = (len % MAX_SEGMENT_LEN) as u16;
    std::iter::repeat_n(u16::MAX, full).chain((rem > 0).then_some(rem))
}

// ---------------------------------------------------------------------------
// Irregular timestamp streams
// ---------------------------------------------------------------------------

/// Stream tag: per-value variable-width delta-of-delta prefix codes.
pub const STREAM_VARBIT: u8 = 0;
/// Stream tag: blocked delta-of-delta packing via [`crate::block`].
pub const STREAM_BLOCKED: u8 = 1;

/// Below this length the per-block metadata of the blocked format costs
/// more than it saves, so [`encode_stream`] emits varbit instead.
const BLOCKED_MIN_LEN: usize = 64;

/// Encodes an arbitrary (not necessarily regular) timestamp vector,
/// choosing the blocked format for long vectors and varbit for short ones.
/// The output is self-delimiting: [`decode_stream`] leaves the cursor at
/// the first byte past the stream.
pub fn encode_stream(ts: &[i64]) -> Vec<u8> {
    if ts.len() < BLOCKED_MIN_LEN {
        encode_stream_varbit(ts)
    } else {
        encode_stream_blocked(ts)
    }
}

/// Encodes with the blocked format unconditionally: zigzagged
/// delta-of-deltas through [`block::encode_u64s`]'s 128-value lanes.
pub fn encode_stream_blocked(ts: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + ts.len());
    out.push(STREAM_BLOCKED);
    out.extend_from_slice(&(ts.len() as u32).to_le_bytes());
    if ts.is_empty() {
        return out;
    }
    out.extend_from_slice(&ts[0].to_le_bytes());
    out.extend_from_slice(&block::encode_u64s(&block::dod_encode(ts)));
    out
}

/// Encodes with the varbit format unconditionally: one Gorilla-style
/// prefix code per delta-of-delta ('0' for zero, then 7/9/12-bit windows,
/// then a raw 64-bit escape). This is the scalar per-value-branch baseline
/// the codecs bench measures the blocked format against.
pub fn encode_stream_varbit(ts: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + ts.len());
    out.push(STREAM_VARBIT);
    out.extend_from_slice(&(ts.len() as u32).to_le_bytes());
    if ts.is_empty() {
        return out;
    }
    out.extend_from_slice(&ts[0].to_le_bytes());
    let mut bits = BitWriter::with_capacity(ts.len() * 10);
    let mut prev_delta = 0i64;
    for pair in ts.windows(2) {
        let d = pair[1].wrapping_sub(pair[0]);
        let dod = d.wrapping_sub(prev_delta);
        prev_delta = d;
        if dod == 0 {
            bits.write_bit(false);
        } else if (-63..=64).contains(&dod) {
            bits.write_bits(0b10, 2);
            bits.write_bits((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            bits.write_bits(0b110, 3);
            bits.write_bits((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            bits.write_bits(0b1110, 4);
            bits.write_bits((dod + 2047) as u64, 12);
        } else {
            bits.write_bits(0b1111, 4);
            bits.write_bits(dod as u64, 64);
        }
    }
    let payload = bits.into_bytes();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Stateful point-at-a-time timestamp encoder for the store's append path.
///
/// Pushing timestamps one by one and finalizing yields bytes identical to
/// [`encode_stream_varbit`] over the same vector (tested below), so sealed
/// chunks decode through the ordinary [`decode_stream`].
#[derive(Debug, Clone)]
pub struct StreamAppender {
    first: i64,
    prev: i64,
    prev_delta: i64,
    count: usize,
    bits: BitWriter,
}

impl Default for StreamAppender {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamAppender {
    /// Creates an empty appender.
    pub fn new() -> Self {
        StreamAppender { first: 0, prev: 0, prev_delta: 0, count: 0, bits: BitWriter::new() }
    }

    /// Number of timestamps appended so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no timestamp has been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends one timestamp (must be pushed in stream order).
    pub fn push(&mut self, ts: i64) {
        if self.count == 0 {
            self.first = ts;
        } else {
            let d = ts.wrapping_sub(self.prev);
            let dod = d.wrapping_sub(self.prev_delta);
            self.prev_delta = d;
            if dod == 0 {
                self.bits.write_bit(false);
            } else if (-63..=64).contains(&dod) {
                self.bits.write_bits(0b10, 2);
                self.bits.write_bits((dod + 63) as u64, 7);
            } else if (-255..=256).contains(&dod) {
                self.bits.write_bits(0b110, 3);
                self.bits.write_bits((dod + 255) as u64, 9);
            } else if (-2047..=2048).contains(&dod) {
                self.bits.write_bits(0b1110, 4);
                self.bits.write_bits((dod + 2047) as u64, 12);
            } else {
                self.bits.write_bits(0b1111, 4);
                self.bits.write_bits(dod as u64, 64);
            }
        }
        self.prev = ts;
        self.count += 1;
    }

    /// Consumes the appender into a self-delimiting varbit stream.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.count);
        out.push(STREAM_VARBIT);
        out.extend_from_slice(&(self.count as u32).to_le_bytes());
        if self.count == 0 {
            return out;
        }
        out.extend_from_slice(&self.first.to_le_bytes());
        let payload = self.bits.into_bytes();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Decodes a stream produced by any `encode_stream*` variant, dispatching
/// on the tag byte. Total: malformed input returns
/// [`TimestampError::Corrupt`] / [`TimestampError::Truncated`], never
/// panics, and preallocation is bounded by the remaining input.
pub fn decode_stream(r: &mut ByteReader<'_>) -> Result<Vec<i64>, TimestampError> {
    let tag = r.read_u8().map_err(|_| TimestampError::Truncated)?;
    match tag {
        STREAM_VARBIT => decode_stream_varbit(r),
        STREAM_BLOCKED => decode_stream_blocked(r),
        other => Err(TimestampError::Corrupt(format!("unknown stream tag {other}"))),
    }
}

fn decode_stream_blocked(r: &mut ByteReader<'_>) -> Result<Vec<i64>, TimestampError> {
    let n = r.read_u32_le().map_err(|_| TimestampError::Truncated)? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let first = r.read_u64_le().map_err(|_| TimestampError::Truncated)? as i64;
    let ts = block::decode_dod_stream(r, first)?;
    if ts.len() != n {
        return Err(TimestampError::Corrupt(format!(
            "stream announces {n} timestamps but block payload holds {}",
            ts.len()
        )));
    }
    Ok(ts)
}

fn decode_stream_varbit(r: &mut ByteReader<'_>) -> Result<Vec<i64>, TimestampError> {
    let n = r.read_u32_le().map_err(|_| TimestampError::Truncated)? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let first = r.read_u64_le().map_err(|_| TimestampError::Truncated)? as i64;
    let payload_len = r.read_u32_le().map_err(|_| TimestampError::Truncated)? as usize;
    let payload = r.read_bytes(payload_len).map_err(|_| TimestampError::Truncated)?;
    if n - 1 > payload_len * 8 {
        return Err(TimestampError::Corrupt(format!(
            "{n} timestamps cannot fit {payload_len} payload bytes"
        )));
    }
    let mut out = Vec::with_capacity(n);
    out.push(first);
    let mut bits = BitReader::new(payload);
    let mut t = first;
    let mut delta = 0i64;
    let corrupt = |_| TimestampError::Corrupt("varbit payload exhausted".into());
    for _ in 1..n {
        let dod = if !bits.read_bit().map_err(corrupt)? {
            0
        } else if !bits.read_bit().map_err(corrupt)? {
            bits.read_bits(7).map_err(corrupt)? as i64 - 63
        } else if !bits.read_bit().map_err(corrupt)? {
            bits.read_bits(9).map_err(corrupt)? as i64 - 255
        } else if !bits.read_bit().map_err(corrupt)? {
            bits.read_bits(12).map_err(corrupt)? as i64 - 2047
        } else {
            bits.read_bits(64).map_err(corrupt)? as i64
        };
        delta = delta.wrapping_add(dod);
        t = t.wrapping_add(delta);
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let b = encode_header(1_672_531_200, 900);
        assert_eq!(b.len(), HEADER_LEN);
        let (s, i, rest) = decode_header(&b).unwrap();
        assert_eq!(s, 1_672_531_200);
        assert_eq!(i, 900);
        assert!(rest.is_empty());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            try_encode_header(i64::MAX, 900),
            Err(TimestampError::StartOutOfRange(_))
        ));
        assert!(matches!(try_encode_header(0, 70_000), Err(TimestampError::IntervalOutOfRange(_))));
        assert!(matches!(try_encode_header(0, -1), Err(TimestampError::IntervalOutOfRange(_))));
    }

    #[test]
    fn truncated_header() {
        assert_eq!(decode_header(&[1, 2, 3]).unwrap_err(), TimestampError::Truncated);
    }

    fn sample_timestamps(n: usize) -> Vec<i64> {
        // Mostly-regular 15-minute cadence with jitter and occasional gaps:
        // the shape irregular CSV timelines actually have.
        (0..n as i64)
            .map(|i| 1_600_000_000 + i * 900 + (i % 5) * 3 + if i % 97 == 0 { 7200 } else { 0 })
            .collect()
    }

    #[test]
    fn stream_roundtrip_both_formats() {
        for n in [0usize, 1, 2, 63, 64, 128, 129, 1000] {
            let ts = sample_timestamps(n);
            for bytes in [encode_stream_varbit(&ts), encode_stream_blocked(&ts), encode_stream(&ts)]
            {
                let mut r = ByteReader::new(&bytes);
                assert_eq!(decode_stream(&mut r).unwrap(), ts, "n={n} tag={}", bytes[0]);
                assert!(r.is_empty(), "stream must be self-delimiting");
            }
        }
    }

    #[test]
    fn stream_is_self_delimiting_mid_buffer() {
        let ts = sample_timestamps(300);
        let mut buf = encode_stream(&ts);
        buf.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let mut r = ByteReader::new(&buf);
        assert_eq!(decode_stream(&mut r).unwrap(), ts);
        assert_eq!(r.rest(), &[0xAA, 0xBB, 0xCC]);
    }

    #[test]
    fn stream_compresses_regular_series() {
        let ts = sample_timestamps(4096);
        let blocked = encode_stream_blocked(&ts);
        let varbit = encode_stream_varbit(&ts);
        // Near-regular cadence: both formats should land far below the
        // 8 bytes/value of raw i64 storage.
        assert!(blocked.len() < ts.len() * 2, "blocked: {} bytes", blocked.len());
        assert!(varbit.len() < ts.len() * 2, "varbit: {} bytes", varbit.len());
    }

    #[test]
    fn stream_extreme_values_survive() {
        let ts = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MAX / 2, i64::MIN / 2];
        for bytes in [encode_stream_varbit(&ts), encode_stream_blocked(&ts)] {
            let mut r = ByteReader::new(&bytes);
            assert_eq!(decode_stream(&mut r).unwrap(), ts);
        }
    }

    #[test]
    fn stream_rejects_malformed() {
        let ts = sample_timestamps(200);
        for bytes in [encode_stream_varbit(&ts), encode_stream_blocked(&ts)] {
            // Any truncation point must error, never panic.
            for cut in [0, 1, 4, 8, 13, bytes.len() - 1] {
                let mut r = ByteReader::new(&bytes[..cut]);
                assert!(decode_stream(&mut r).is_err(), "cut={cut}");
            }
        }
        // Unknown tag.
        let mut bad = encode_stream(&ts);
        bad[0] = 9;
        assert!(matches!(
            decode_stream(&mut ByteReader::new(&bad)),
            Err(TimestampError::Corrupt(_))
        ));
        // Count / payload mismatch on the blocked format.
        let mut bad = encode_stream_blocked(&ts);
        bad[1..5].copy_from_slice(&300u32.wrapping_add(5).to_le_bytes());
        assert!(decode_stream(&mut ByteReader::new(&bad)).is_err());
        // Hostile count over a tiny varbit payload.
        let mut hostile = vec![STREAM_VARBIT];
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&0i64.to_le_bytes());
        hostile.extend_from_slice(&1u32.to_le_bytes());
        hostile.push(0x00);
        assert!(decode_stream(&mut ByteReader::new(&hostile)).is_err());
    }

    #[test]
    fn appender_bytes_match_varbit_encoder() {
        for n in [0usize, 1, 2, 63, 64, 129, 1000] {
            let ts = sample_timestamps(n);
            let mut a = StreamAppender::new();
            for &t in &ts {
                a.push(t);
            }
            assert_eq!(a.len(), n);
            assert_eq!(a.into_bytes(), encode_stream_varbit(&ts), "n={n}");
        }
        // Extreme dods exercise the raw 64-bit escape.
        let ts = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MAX / 2];
        let mut a = StreamAppender::new();
        for &t in &ts {
            a.push(t);
        }
        assert_eq!(a.into_bytes(), encode_stream_varbit(&ts));
    }

    #[test]
    fn segment_splitting() {
        assert_eq!(split_segment_len(10).collect::<Vec<_>>(), vec![10]);
        assert_eq!(split_segment_len(65_535).collect::<Vec<_>>(), vec![65_535]);
        assert_eq!(split_segment_len(65_536).collect::<Vec<_>>(), vec![65_535, 1]);
        assert_eq!(
            split_segment_len(200_000).collect::<Vec<_>>(),
            vec![65_535, 65_535, 65_535, 3_395]
        );
        assert_eq!(split_segment_len(0).count(), 0);
    }
}
