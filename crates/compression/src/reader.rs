//! Length-checked byte cursor shared by every decode path in the
//! workspace.
//!
//! All decoders in this crate — and the binary formats built on top of it
//! (`evalcore::artifact`, `forecast` state snapshots) — consume untrusted
//! bytes: compressed frames read back from disk under `--resume`, network
//! payloads in a production deployment, or deliberately mutated buffers in
//! the fuzz harness (`tests/fuzz_decode.rs`). [`ByteReader`] makes those
//! paths *total*: every read is bounds-checked up front and returns
//! [`ReadError`] instead of panicking, and [`ByteReader::bounded_capacity`]
//! clamps preallocation driven by decoded count fields so a corrupt 4-byte
//! count can never request more memory than the remaining input could
//! honestly describe.
//!
//! ```
//! use compression::reader::ByteReader;
//!
//! let buf = [7u8, 0, 0, 0, 42];
//! let mut r = ByteReader::new(&buf);
//! assert_eq!(r.read_u32_le().unwrap(), 7);
//! assert_eq!(r.read_u8().unwrap(), 42);
//! assert!(r.read_u16_le().is_err()); // exhausted: an error, not a panic
//! ```

/// Error from reading past the end of a [`ByteReader`]'s buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadError {
    /// Bytes the failed read needed.
    pub needed: usize,
    /// Bytes that were actually left.
    pub remaining: usize,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "input truncated: needed {} bytes, {} remaining", self.needed, self.remaining)
    }
}

impl std::error::Error for ReadError {}

impl From<ReadError> for crate::codec::CodecError {
    fn from(e: ReadError) -> Self {
        crate::codec::CodecError::Corrupt(e.to_string())
    }
}

/// A bounds-checked little-endian cursor over a byte slice.
///
/// Every `read_*` method either returns the decoded value and advances the
/// cursor, or returns [`ReadError`] and leaves the cursor where it was.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at offset zero.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The unread tail of the buffer (does not advance the cursor).
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Takes the next `n` bytes as a slice.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.remaining() < n {
            return Err(ReadError { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), ReadError> {
        self.read_bytes(n).map(|_| ())
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, ReadError> {
        Ok(self.read_bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16_le(&mut self) -> Result<u16, ReadError> {
        let b = self.read_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32_le(&mut self) -> Result<u32, ReadError> {
        let b = self.read_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64_le(&mut self) -> Result<u64, ReadError> {
        let b = self.read_bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i32`.
    pub fn read_i32_le(&mut self) -> Result<i32, ReadError> {
        Ok(self.read_u32_le()? as i32)
    }

    /// Reads a little-endian IEEE-754 `f32`.
    pub fn read_f32_le(&mut self) -> Result<f32, ReadError> {
        Ok(f32::from_bits(self.read_u32_le()?))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn read_f64_le(&mut self) -> Result<f64, ReadError> {
        Ok(f64::from_bits(self.read_u64_le()?))
    }

    /// A safe `Vec` capacity for `count` records of at least
    /// `min_record_bytes` each: the decoded count, clamped by how many such
    /// records the *remaining* input could actually hold. Honest streams
    /// get their exact capacity; a tampered count field degrades to the
    /// input-proportional bound instead of a multi-gigabyte allocation.
    pub fn bounded_capacity(&self, count: usize, min_record_bytes: usize) -> usize {
        count.min(self.remaining() / min_record_bytes.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_typed_reads() {
        let mut buf = Vec::new();
        buf.push(0xABu8);
        buf.extend_from_slice(&0x1234u16.to_le_bytes());
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&(-7i32).to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16_le().unwrap(), 0x1234);
        assert_eq!(r.read_u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64_le().unwrap(), u64::MAX);
        assert_eq!(r.read_i32_le().unwrap(), -7);
        assert_eq!(r.read_f32_le().unwrap(), 1.5);
        assert_eq!(r.read_f64_le().unwrap(), -2.25);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_read_errors_and_does_not_advance() {
        let buf = [1u8, 2, 3];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_u16_le().unwrap(), 0x0201);
        let err = r.read_u32_le().unwrap_err();
        assert_eq!(err, ReadError { needed: 4, remaining: 1 });
        // Cursor unchanged: the remaining byte is still readable.
        assert_eq!(r.read_u8().unwrap(), 3);
        assert_eq!(r.read_u8().unwrap_err(), ReadError { needed: 1, remaining: 0 });
    }

    #[test]
    fn rest_and_skip() {
        let buf = [9u8, 8, 7, 6];
        let mut r = ByteReader::new(&buf);
        r.skip(1).unwrap();
        assert_eq!(r.rest(), &[8, 7, 6]);
        assert_eq!(r.position(), 1);
        assert!(r.skip(4).is_err());
        assert_eq!(r.remaining(), 3, "failed skip must not consume");
    }

    #[test]
    fn bounded_capacity_clamps_hostile_counts() {
        let buf = [0u8; 60];
        let r = ByteReader::new(&buf);
        // Honest: 10 six-byte records fit exactly.
        assert_eq!(r.bounded_capacity(10, 6), 10);
        // Hostile: u32::MAX records cannot fit in 60 bytes.
        assert_eq!(r.bounded_capacity(u32::MAX as usize, 6), 10);
        // Degenerate record size is treated as 1 byte.
        assert_eq!(r.bounded_capacity(1000, 0), 60);
    }

    #[test]
    fn read_error_converts_to_codec_corrupt() {
        let mut r = ByteReader::new(&[]);
        let e: crate::codec::CodecError = r.read_u8().unwrap_err().into();
        assert!(matches!(e, crate::codec::CodecError::Corrupt(_)));
    }
}
