//! Blocked, vectorisable codec kernels (DESIGN.md §11).
//!
//! The hot byte paths of this crate — timestamp delta streams, SZ quantizer
//! symbols, zero/sign bitmaps — are built on fixed-size blocks of
//! [`LANE`] values packed at the block's maximum bit width, the
//! Lemire-style *binary packing* layout fast integer codecs
//! (FastPFor, LFZip's residual coder, Gorilla's successors) all share:
//!
//! * a block header names one bit width `w`, then all lane values are laid
//!   end to end LSB-first into little-endian 64-bit words, so packing and
//!   unpacking are straight-line word shifts the compiler can unroll and
//!   autovectorise — no per-value branches, no per-bit loops;
//! * values too wide for `w` ("spills") are patched in afterwards from a
//!   short side list of `(position, varint)` entries, so one outlier does
//!   not widen the whole block;
//! * transforms that make small widths common — [`zigzag`] and
//!   delta-of-delta ([`dod_encode`]/[`dod_decode`]) — are plain slice
//!   passes over the block.
//!
//! Two kernel implementations exist behind [`Kernel`]: the word-at-a-time
//! `Blocked` kernel and a definitional bit-at-a-time `Scalar` fallback.
//! Both produce and consume identical bytes (proven by
//! `tests/block_props.rs`); the active kernel is chosen once per process by
//! [`active_kernel`] — `Blocked` unless `EVALIMPL_CODEC_KERNEL=scalar`
//! pins the fallback for verification or debugging.
//!
//! Decoding is *total*: every length and position is validated against the
//! remaining input, so hostile bytes return [`BlockError`], never panic,
//! and never drive an allocation past what the input could honestly
//! describe (DESIGN.md §10).

use std::sync::OnceLock;

use crate::reader::{ByteReader, ReadError};

/// Values per block: two 64-bit words per bit of width, and small enough
/// that spill positions fit one byte.
pub const LANE: usize = 128;

/// Error from decoding a malformed block stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockError(pub String);

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed block stream: {}", self.0)
    }
}

impl std::error::Error for BlockError {}

impl From<ReadError> for BlockError {
    fn from(e: ReadError) -> Self {
        BlockError(e.to_string())
    }
}

impl From<BlockError> for crate::codec::CodecError {
    fn from(e: BlockError) -> Self {
        crate::codec::CodecError::Corrupt(e.to_string())
    }
}

/// Which pack/unpack implementation to run. Both are portable Rust and
/// bit-identical on the wire; `Blocked` moves whole 64-bit words per step,
/// `Scalar` is the definitional bit-at-a-time fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Word-at-a-time packing: the fast path.
    Blocked,
    /// Bit-at-a-time reference: the portable fallback.
    Scalar,
}

/// The process-wide kernel, decided once: `Blocked` unless the
/// `EVALIMPL_CODEC_KERNEL` environment variable is set to `scalar`.
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var("EVALIMPL_CODEC_KERNEL") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Kernel::Scalar,
        _ => Kernel::Blocked,
    })
}

/// Bits required to represent `v` (0 for 0).
#[inline]
pub fn bits_needed(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Bytes occupied by `n` values packed at `width` bits.
#[inline]
pub fn packed_len(n: usize, width: u8) -> usize {
    (n * width as usize).div_ceil(8)
}

#[inline]
fn width_mask(width: u8) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

// ---------------------------------------------------------------------------
// Bitpacking kernels
// ---------------------------------------------------------------------------

/// Word-at-a-time packer: accumulates lanes into a 64-bit register and
/// flushes whole little-endian words.
fn pack_blocked(values: &[u64], width: u8, out: &mut Vec<u8>) {
    let w = width as u32;
    if w == 0 {
        return;
    }
    out.reserve(packed_len(values.len(), width));
    let mask = width_mask(width);
    let mut acc: u64 = 0;
    let mut filled: u32 = 0; // bits used in acc, always < 64
    for &raw in values {
        let v = raw & mask;
        acc |= v << filled;
        if filled + w >= 64 {
            out.extend_from_slice(&acc.to_le_bytes());
            let used = 64 - filled; // bits of v that fit in the old word
            acc = if used >= w { 0 } else { v >> used };
            filled = filled + w - 64;
        } else {
            filled += w;
        }
    }
    if filled > 0 {
        out.extend_from_slice(&acc.to_le_bytes()[..(filled as usize).div_ceil(8)]);
    }
}

/// Bit-at-a-time packer: the definitional layout (stream bit `k` lands in
/// byte `k / 8` at in-byte position `k % 8`, LSB-first).
fn pack_scalar(values: &[u64], width: u8, out: &mut Vec<u8>) {
    let start = out.len();
    out.resize(start + packed_len(values.len(), width), 0);
    let mut bit = 0usize;
    for &v in values {
        for j in 0..width {
            if (v >> j) & 1 == 1 {
                out[start + bit / 8] |= 1 << (bit % 8);
            }
            bit += 1;
        }
    }
}

/// Unpacks one aligned group of 64 lanes of `W` bits from exactly `W`
/// words. With `W` const the compiler unrolls the loop, every word index
/// and shift folds to an immediate, and each lane is one or two register
/// shifts with no loop-carried dependency — the classic bitpacking
/// "unpack64" kernel, one monomorphised copy per width.
#[inline(always)]
fn unpack_group_const<const W: usize>(words: &[u64; W], out: &mut Vec<u64>) {
    let mask = if W == 64 { u64::MAX } else { (1u64 << W) - 1 };
    // Compute into a stack array first: a const-trip-count loop over
    // plain arrays fully unrolls (every index and shift an immediate),
    // then the append is one reserved memcpy.
    let mut tmp = [0u64; 64];
    for (i, lane) in tmp.iter_mut().enumerate() {
        let bit = i * W;
        let word = bit / 64;
        let off = (bit % 64) as u32;
        let lo = words[word] >> off;
        let v = if off as usize + W > 64 {
            // A straddling lane ends before bit 64*W, so `word + 1 < W`.
            lo | (words[word + 1] << (64 - off))
        } else {
            lo
        };
        *lane = v & mask;
    }
    out.extend_from_slice(&tmp);
}

/// One-time probe for the AVX2+BMI2 fast path: 256-bit variable lane
/// shifts (`vpsrlvq`/`vpsllvq`) are exactly what the group kernel's
/// unrolled body wants, and the baseline x86-64 build can't emit them.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("bmi2")
    })
}

/// AVX2 unpack: four lanes per `vpgatherqq`. Lane `i` starts at bit
/// `i * W`, so its value lives inside the 8-byte window at byte
/// `i * W / 8`, shifted right by `i * W % 8` — and because 8 lanes span
/// exactly `W` bytes, the offset/shift pattern repeats every 8 lanes
/// with a constant byte stride. Each iteration is two gathers, two
/// variable shifts (`vpsrlvq`), two masks, two stores: 8 lanes with no
/// loop-carried dependency.
///
/// Widths above 56 bits fall back to the portable body: their value can
/// cross a byte-anchored 8-byte window. Every gather stays in bounds
/// because callers stage `words` with one overread word past the last
/// lane's window.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,bmi2")]
fn unpack_words_avx2<const W: usize>(words: &[u64], n: usize, out: &mut Vec<u64>) {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_i64gather_epi64, _mm256_set1_epi64x,
        _mm256_set_epi64x, _mm256_srlv_epi64, _mm256_storeu_si256,
    };
    if W > 56 {
        return unpack_words_body::<W>(words, n, out);
    }
    let mask = (1u64 << W) - 1;
    let off = |k: usize| ((k * W) / 8) as i64;
    let sh = |k: usize| ((k * W) % 8) as i64;
    let idx0 = _mm256_set_epi64x(off(3), off(2), off(1), off(0));
    let idx1 = _mm256_set_epi64x(off(7), off(6), off(5), off(4));
    let sh0 = _mm256_set_epi64x(sh(3), sh(2), sh(1), sh(0));
    let sh1 = _mm256_set_epi64x(sh(7), sh(6), sh(5), sh(4));
    let vmask = _mm256_set1_epi64x(mask as i64);
    let base = words.as_ptr() as *const i64;
    out.reserve(n);
    let start = out.len();
    let dst = out.spare_capacity_mut().as_mut_ptr() as *mut u64;
    let mut i = 0usize;
    let mut byte_base = _mm256_set1_epi64x(0);
    let stride = _mm256_set1_epi64x(W as i64);
    while i + 8 <= n {
        // SAFETY: lane `i + 7` reads 8 bytes at byte offset
        // `(i + 7) * W / 8 <= n * W / 8 <= nwords * 8`, and `words` holds
        // `nwords + 1` words, so every gathered window is in bounds.
        // `dst` has `n` spare slots reserved above.
        unsafe {
            let g0 = _mm256_i64gather_epi64::<1>(base, _mm256_add_epi64(idx0, byte_base));
            let g1 = _mm256_i64gather_epi64::<1>(base, _mm256_add_epi64(idx1, byte_base));
            let v0 = _mm256_and_si256(_mm256_srlv_epi64(g0, sh0), vmask);
            let v1 = _mm256_and_si256(_mm256_srlv_epi64(g1, sh1), vmask);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, v0);
            _mm256_storeu_si256(dst.add(i + 4) as *mut __m256i, v1);
        }
        byte_base = _mm256_add_epi64(byte_base, stride);
        i += 8;
    }
    while i < n {
        let bit = i * W;
        let word = bit / 64;
        let offw = (bit % 64) as u32;
        let pair = words[word] as u128 | ((words[word + 1] as u128) << 64);
        // SAFETY: `i < n` slots were reserved above.
        unsafe { dst.add(i).write((pair >> offw) as u64 & mask) };
        i += 1;
    }
    // SAFETY: all `n` slots from `start` were initialised above.
    unsafe { out.set_len(start + n) };
}

/// Dispatches one width-monomorphised unpack: the AVX2 clone when the CPU
/// has it, the portable body otherwise. Both compile from the same source
/// and emit identical values; the fuzz suite's dual-kernel oracle holds
/// either way.
fn unpack_words_const<const W: usize>(words: &[u64], n: usize, out: &mut Vec<u64>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: `avx2_available` verified at runtime that this CPU
        // supports every feature `unpack_words_avx2` is compiled with;
        // the function is otherwise safe code.
        unsafe { unpack_words_avx2::<W>(words, n, out) };
        return;
    }
    unpack_words_body::<W>(words, n, out)
}

/// Runs [`unpack_group_const`] over every full 64-lane group, then
/// pair-gathers the tail lanes (the staging buffer carries one overread
/// word so a tail lane may always load `words[word + 1]`).
#[inline(always)]
fn unpack_words_body<const W: usize>(words: &[u64], n: usize, out: &mut Vec<u64>) {
    let groups = n / 64;
    for g in 0..groups {
        let chunk: &[u64; W] = words[g * W..(g + 1) * W].try_into().expect("exact group");
        unpack_group_const::<W>(chunk, out);
    }
    let tail = n % 64;
    if tail > 0 {
        let mask = if W == 64 { u64::MAX } else { (1u64 << W) - 1 };
        let base = groups * 64 * W;
        out.extend((0..tail).map(|i| {
            let bit = base + i * W;
            let word = bit / 64;
            let off = (bit % 64) as u32;
            let pair = words[word] as u128 | ((words[word + 1] as u128) << 64);
            (pair >> off) as u64 & mask
        }));
    }
}

/// Expands to a `match` dispatching a runtime width to the
/// [`unpack_words_const`] instantiation for that width.
macro_rules! dispatch_unpack {
    ($w:expr, $words:expr, $n:expr, $out:expr; $($W:literal)*) => {
        match $w {
            $($W => unpack_words_const::<$W>($words, $n, $out),)*
            _ => unreachable!("width checked by caller"),
        }
    };
}

/// Word-at-a-time unpacker: stages the packed bytes into whole
/// little-endian words once, then runs the width-monomorphised group
/// kernel over them.
fn unpack_blocked(bytes: &[u8], n: usize, width: u8, out: &mut Vec<u64>) {
    if width == 0 {
        out.extend(std::iter::repeat_n(0u64, n));
        return;
    }
    let w = width as usize;
    let nwords = (n * w).div_ceil(64);
    // One block (`LANE` lanes) of 64-bit lanes plus the tail-gather
    // overread word: fits the stack for every block-stream call.
    const STAGE_WORDS: usize = LANE + 1;
    let mut stack = [0u64; STAGE_WORDS];
    let mut heap;
    let words: &mut [u64] = if nwords < STAGE_WORDS {
        &mut stack
    } else {
        heap = vec![0u64; nwords + 1];
        &mut heap
    };
    for (i, chunk) in bytes.chunks(8).enumerate().take(nwords) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        words[i] = u64::from_le_bytes(b);
    }
    dispatch_unpack!(w, words, n, out;
        1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
        33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48
        49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64);
}

/// Bit-at-a-time unpacker: the definitional inverse of [`pack_scalar`].
fn unpack_scalar(bytes: &[u8], n: usize, width: u8, out: &mut Vec<u64>) {
    out.reserve(n);
    let mut bit = 0usize;
    for _ in 0..n {
        let mut v = 0u64;
        for j in 0..width {
            if (bytes[bit / 8] >> (bit % 8)) & 1 == 1 {
                v |= 1u64 << j;
            }
            bit += 1;
        }
        out.push(v);
    }
}

/// Packs `values` at `width` bits each (values are masked to the width),
/// appending to `out`.
pub fn pack_bits_into(values: &[u64], width: u8, kernel: Kernel, out: &mut Vec<u8>) {
    debug_assert!(width <= 64);
    match kernel {
        Kernel::Blocked => pack_blocked(values, width, out),
        Kernel::Scalar => pack_scalar(values, width, out),
    }
}

/// Packs `values` at `width` bits with the process-wide kernel.
pub fn pack_bits(values: &[u64], width: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(packed_len(values.len(), width));
    pack_bits_into(values, width, active_kernel(), &mut out);
    out
}

/// Unpacks `n` values of `width` bits from `bytes`, appending to `out`.
/// Fails if `bytes` is shorter than [`packed_len`]`(n, width)`.
pub fn unpack_bits_into(
    bytes: &[u8],
    n: usize,
    width: u8,
    kernel: Kernel,
    out: &mut Vec<u64>,
) -> Result<(), BlockError> {
    if width > 64 {
        return Err(BlockError(format!("bit width {width} exceeds 64")));
    }
    if bytes.len() < packed_len(n, width) {
        return Err(BlockError(format!(
            "{n} lanes of {width} bits need {} bytes, have {}",
            packed_len(n, width),
            bytes.len()
        )));
    }
    match kernel {
        Kernel::Blocked => unpack_blocked(bytes, n, width, out),
        Kernel::Scalar => unpack_scalar(bytes, n, width, out),
    }
    Ok(())
}

/// Unpacks `n` values of `width` bits with the process-wide kernel.
pub fn unpack_bits(bytes: &[u8], n: usize, width: u8) -> Result<Vec<u64>, BlockError> {
    let mut out = Vec::with_capacity(n);
    unpack_bits_into(bytes, n, width, active_kernel(), &mut out)?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Varint (LEB128) — the spill fallback
// ---------------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Encoded length of `v` as a varint.
pub fn varint_len(v: u64) -> usize {
    (bits_needed(v) as usize).div_ceil(7).max(1)
}

/// Parses one LEB128 varint from the front of `bytes`, returning the value
/// and the encoded length. Rejects encodings longer than 10 bytes or
/// overflowing 64 bits.
#[inline]
fn varint_from(bytes: &[u8]) -> Result<(u64, usize), BlockError> {
    let mut v = 0u64;
    for (i, &b) in bytes.iter().take(10).enumerate() {
        if i == 9 && b > 1 {
            return Err(BlockError("varint overflows 64 bits".into()));
        }
        v |= ((b & 0x7F) as u64) << (7 * i as u32);
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
    }
    Err(BlockError(if bytes.len() < 10 {
        "varint truncated".into()
    } else {
        "varint longer than 10 bytes".into()
    }))
}

/// Reads one LEB128 varint; rejects encodings longer than 10 bytes or
/// overflowing 64 bits. Scans the reader's remaining slice directly and
/// advances the cursor once, so callers pay a single bounds check per
/// varint instead of one per byte.
pub fn read_varint(r: &mut ByteReader<'_>) -> Result<u64, BlockError> {
    let (v, used) = varint_from(r.rest())?;
    r.skip(used)?;
    Ok(v)
}

// ---------------------------------------------------------------------------
// Zigzag + delta-of-delta transforms
// ---------------------------------------------------------------------------

/// Maps a signed value to an unsigned one with small magnitudes staying
/// small: 0, -1, 1, -2, … → 0, 1, 2, 3, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Zigzagged delta-of-deltas of `ts` (length `ts.len() - 1`; empty for a
/// zero- or one-element input). Uses wrapping arithmetic so the transform
/// is total — [`dod_decode`] inverts it exactly for any input.
pub fn dod_encode(ts: &[i64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(ts.len().saturating_sub(1));
    let mut prev_delta = 0i64;
    for pair in ts.windows(2) {
        let d = pair[1].wrapping_sub(pair[0]);
        out.push(zigzag(d.wrapping_sub(prev_delta)));
        prev_delta = d;
    }
    out
}

/// Reconstructs the timestamp vector from its first element and zigzagged
/// delta-of-deltas: the inverse of [`dod_encode`].
pub fn dod_decode(first: i64, dods: &[u64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(dods.len() + 1);
    out.push(first);
    let mut t = first;
    let mut delta = 0i64;
    // TrustedLen extend: the double prefix sum is a serial dependency
    // chain, so the surrounding bookkeeping must not add per-value cost.
    out.extend(dods.iter().map(|&z| {
        delta = delta.wrapping_add(unzigzag(z));
        t = t.wrapping_add(delta);
        t
    }));
    out
}

// ---------------------------------------------------------------------------
// Block stream: per-block max-width packing with varint spills
// ---------------------------------------------------------------------------

/// Picks the cheapest bit width for one block: lane bytes at width `w`
/// plus `(position, varint)` spill entries for every value wider than `w`.
/// Ties prefer the smaller width.
fn choose_width(block: &[u64]) -> u8 {
    let mut count = [0u32; 65];
    for &v in block {
        count[bits_needed(v) as usize] += 1;
    }
    let max_w = (0..=64).rev().find(|&w| count[w] > 0).unwrap_or(0);
    let mut best_w = max_w as u8;
    let mut best = packed_len(block.len(), max_w as u8);
    let mut spill = 0usize;
    for w in (0..max_w).rev() {
        // Values needing exactly w+1 bits start spilling at width w.
        spill += count[w + 1] as usize * (1 + (w + 1).div_ceil(7));
        let cost = packed_len(block.len(), w as u8) + spill;
        if cost <= best {
            best = cost;
            best_w = w as u8;
        }
    }
    best_w
}

/// Encodes a `u64` stream as length-prefixed blocks of [`LANE`] values,
/// each packed at its own best width with varint spills, using the
/// process-wide kernel.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    encode_u64s_with(values, active_kernel())
}

/// [`encode_u64s`] with an explicit kernel (for benches and equivalence
/// tests). Both kernels emit identical bytes.
pub fn encode_u64s_with(values: &[u64], kernel: Kernel) -> Vec<u8> {
    // Rough pre-size: header + two meta bytes per block + ~2 bytes/value.
    let mut out = Vec::with_capacity(4 + values.len() * 2 + values.len().div_ceil(LANE) * 2);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    let mut lanes: Vec<u64> = Vec::with_capacity(LANE);
    for block in values.chunks(LANE) {
        let w = choose_width(block);
        let spill_count = block.iter().filter(|&&v| bits_needed(v) > w).count();
        out.push(w);
        out.push(spill_count as u8);
        if spill_count == 0 {
            pack_bits_into(block, w, kernel, &mut out);
        } else {
            // Spilled slots pack as zero; their real values follow as
            // (position, varint) patches.
            lanes.clear();
            lanes.extend(block.iter().map(|&v| if bits_needed(v) > w { 0 } else { v }));
            pack_bits_into(&lanes, w, kernel, &mut out);
            for (i, &v) in block.iter().enumerate() {
                if bits_needed(v) > w {
                    out.push(i as u8);
                    write_varint(v, &mut out);
                }
            }
        }
    }
    out
}

/// Decodes a stream produced by [`encode_u64s`] with the process-wide
/// kernel. Total: malformed bytes return [`BlockError`], and allocation is
/// bounded by the remaining input, not by the decoded count field.
pub fn decode_u64s(r: &mut ByteReader<'_>) -> Result<Vec<u64>, BlockError> {
    decode_u64s_with(r, active_kernel())
}

/// [`decode_u64s`] with an explicit kernel.
pub fn decode_u64s_with(r: &mut ByteReader<'_>, kernel: Kernel) -> Result<Vec<u64>, BlockError> {
    let n = r.read_u32_le()? as usize;
    // A full block costs at least 2 bytes for LANE values; clamp the
    // preallocation so a tampered count cannot reserve gigabytes.
    let cap = n.min(r.remaining().saturating_mul(LANE / 2).saturating_add(LANE));
    let mut out = Vec::with_capacity(cap);
    let mut done = 0usize;
    while done < n {
        let len = LANE.min(n - done);
        decode_block(r, len, kernel, &mut out)?;
        done += len;
    }
    Ok(out)
}

/// Decodes one block — width byte, spill count, packed lanes, spill
/// patches — appending its `len` values to `out`. Shared by the u64
/// stream decoder and the fused delta-of-delta decoder.
#[inline]
fn decode_block(
    r: &mut ByteReader<'_>,
    len: usize,
    kernel: Kernel,
    out: &mut Vec<u64>,
) -> Result<(), BlockError> {
    let w = r.read_u8()?;
    if w > 64 {
        return Err(BlockError(format!("block width {w} exceeds 64")));
    }
    let spill_count = r.read_u8()? as usize;
    if spill_count > len {
        return Err(BlockError(format!("{spill_count} spills in a {len}-value block")));
    }
    let bytes = r.read_bytes(packed_len(len, w))?;
    let start = out.len();
    unpack_bits_into(bytes, len, w, kernel, out)?;
    if spill_count > 0 {
        // Single pass over the block's spill region with a local
        // offset: one cursor advance per block, and a one-byte fast
        // path for the common short varint.
        let rest = r.rest();
        let mut off = 0usize;
        for _ in 0..spill_count {
            if off >= rest.len() {
                return Err(BlockError("spill truncated".into()));
            }
            let pos = rest[off] as usize;
            if pos >= len {
                return Err(BlockError(format!("spill position {pos} in a {len}-value block")));
            }
            off += 1;
            let (v, used) = if off < rest.len() && rest[off] < 0x80 {
                (rest[off] as u64, 1)
            } else {
                varint_from(&rest[off..])?
            };
            off += used;
            out[start + pos] = v;
        }
        r.skip(off)?;
    }
    Ok(())
}

/// Decodes a blocked stream of zigzagged delta-of-deltas (as written by
/// [`encode_u64s`] over [`dod_encode`] output) straight into timestamps:
/// each block lands in one L1-resident scratch buffer and the double
/// prefix sum runs over it immediately, so the intermediate dod vector is
/// never materialised and the 8-bytes-per-value write happens once.
pub fn decode_dod_stream(r: &mut ByteReader<'_>, first: i64) -> Result<Vec<i64>, BlockError> {
    decode_dod_stream_with(r, first, active_kernel())
}

/// [`decode_dod_stream`] with an explicit kernel.
pub fn decode_dod_stream_with(
    r: &mut ByteReader<'_>,
    first: i64,
    kernel: Kernel,
) -> Result<Vec<i64>, BlockError> {
    let n = r.read_u32_le()? as usize;
    let cap = n.min(r.remaining().saturating_mul(LANE / 2).saturating_add(LANE));
    let mut out = Vec::with_capacity(cap + 1);
    out.push(first);
    let mut t = first;
    let mut delta = 0i64;
    let mut scratch: Vec<u64> = Vec::with_capacity(LANE);
    let mut done = 0usize;
    while done < n {
        let len = LANE.min(n - done);
        scratch.clear();
        decode_block(r, len, kernel, &mut scratch)?;
        // TrustedLen extend over the scratch block: no per-value
        // capacity check inside the serial prefix-sum chain.
        out.extend(scratch.iter().map(|&z| {
            delta = delta.wrapping_add(unzigzag(z));
            t = t.wrapping_add(delta);
            t
        }));
        done += len;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Word-backed bitset
// ---------------------------------------------------------------------------

/// A fixed-length bitset stored as 64-bit words: O(1) indexing, word-level
/// population counts, and byte serialization without a `Vec<bool>` in
/// sight. Bits beyond `len` in the last word are kept zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// All-zero bitset of `len` bits.
    pub fn with_len(len: usize) -> Self {
        Bitset { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no bits at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` (debug and release: the index math is the
    /// bounds check).
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits (word-level popcounts).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Serializes as `ceil(len / 8)` bytes, bit `i` at byte `i / 8`
    /// position `i % 8` (LSB-first — the natural word layout).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(nbytes);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(nbytes);
        out
    }

    /// Inverse of [`Bitset::to_le_bytes`]. Requires at least
    /// `ceil(len / 8)` bytes; extra pad bits are masked off.
    pub fn from_le_bytes(bytes: &[u8], len: usize) -> Result<Self, BlockError> {
        let nbytes = len.div_ceil(8);
        if bytes.len() < nbytes {
            return Err(BlockError(format!("{len}-bit bitmap needs {nbytes} bytes")));
        }
        let mut set = Bitset::with_len(len);
        for (j, chunk) in bytes[..nbytes].chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            set.words[j] = u64::from_le_bytes(b);
        }
        set.mask_tail();
        Ok(set)
    }

    /// Deserializes the legacy MSB-first layout (`BitWriter` bitmaps: bit
    /// `i` at byte `i / 8` position `7 - i % 8`), as the pre-blocked SZ
    /// format stored bitmaps. One `reverse_bits` per byte, no per-bit loop.
    pub fn from_msb_bytes(bytes: &[u8], len: usize) -> Result<Self, BlockError> {
        let nbytes = len.div_ceil(8);
        if bytes.len() < nbytes {
            return Err(BlockError(format!("{len}-bit bitmap needs {nbytes} bytes")));
        }
        let mut set = Bitset::with_len(len);
        for (j, chunk) in bytes[..nbytes].chunks(8).enumerate() {
            let mut b = [0u8; 8];
            for (dst, src) in b.iter_mut().zip(chunk) {
                *dst = src.reverse_bits();
            }
            set.words[j] = u64::from_le_bytes(b);
        }
        set.mask_tail();
        Ok(set)
    }

    /// Serializes in the legacy MSB-first layout (inverse of
    /// [`Bitset::from_msb_bytes`]).
    pub fn to_msb_bytes(&self) -> Vec<u8> {
        let mut out = self.to_le_bytes();
        for b in &mut out {
            *b = b.reverse_bits();
        }
        out
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn pack_unpack_roundtrip_both_kernels() {
        let values: Vec<u64> = (0..300u64).map(|i| i.wrapping_mul(0x9E37_79B9) % 1000).collect();
        for width in [10u8, 16, 32, 64] {
            for kernel in [Kernel::Blocked, Kernel::Scalar] {
                let mut bytes = Vec::new();
                pack_bits_into(&values, width, kernel, &mut bytes);
                assert_eq!(bytes.len(), packed_len(values.len(), width));
                let mut out = Vec::new();
                unpack_bits_into(&bytes, values.len(), width, kernel, &mut out).unwrap();
                assert_eq!(out, values, "width {width} kernel {kernel:?}");
            }
        }
    }

    #[test]
    fn kernels_are_byte_identical() {
        let values: Vec<u64> = (0..257u64).map(|i| i * i % 8191).collect();
        for width in 0u8..=64 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            pack_bits_into(&values, width, Kernel::Blocked, &mut a);
            pack_bits_into(&values, width, Kernel::Scalar, &mut b);
            assert_eq!(a, b, "width {width}");
        }
    }

    #[test]
    fn zero_width_packs_to_nothing() {
        let mut bytes = Vec::new();
        pack_bits_into(&[0, 0, 0], 0, Kernel::Blocked, &mut bytes);
        assert!(bytes.is_empty());
        assert_eq!(unpack_bits(&bytes, 3, 0).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn unpack_validates_input() {
        assert!(unpack_bits(&[0xFF], 3, 7).is_err(), "needs 3 bytes");
        assert!(unpack_bits(&[0xFF; 16], 1, 65).is_err(), "width over 64");
    }

    #[test]
    fn varint_roundtrip() {
        let mut out = Vec::new();
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            out.clear();
            write_varint(v, &mut out);
            assert_eq!(out.len(), varint_len(v), "{v}");
            let mut r = ByteReader::new(&out);
            assert_eq!(read_varint(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
        // Overlong / overflowing encodings are rejected.
        assert!(read_varint(&mut ByteReader::new(&[0x80; 10])).is_err());
        let mut bad = vec![0xFFu8; 9];
        bad.push(0x02);
        assert!(read_varint(&mut ByteReader::new(&bad)).is_err());
        assert!(read_varint(&mut ByteReader::new(&[0x80])).is_err(), "truncated");
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn dod_roundtrip() {
        let ts: Vec<i64> = (0..500).map(|i| 1_600_000_000 + i * 900 + (i % 7) * 3).collect();
        let dods = dod_encode(&ts);
        assert_eq!(dods.len(), ts.len() - 1);
        assert_eq!(dod_decode(ts[0], &dods), ts);
        // Regular series: all delta-of-deltas past the first are zero.
        let regular: Vec<i64> = (0..100).map(|i| 7 + i * 60).collect();
        let d = dod_encode(&regular);
        assert!(d[1..].iter().all(|&z| z == 0));
        // Extremes survive via wrapping arithmetic.
        let hostile = vec![i64::MIN, i64::MAX, 0, -1, i64::MAX];
        assert_eq!(dod_decode(hostile[0], &dod_encode(&hostile)), hostile);
    }

    #[test]
    fn stream_roundtrip_with_spills() {
        // Mostly-small values with rare huge outliers: the spill path.
        let values: Vec<u64> =
            (0..1000u64).map(|i| if i % 97 == 0 { u64::MAX - i } else { i % 50 }).collect();
        for kernel in [Kernel::Blocked, Kernel::Scalar] {
            let bytes = encode_u64s_with(&values, kernel);
            // Spills keep the stream far below the 8 bytes/value of raw
            // u64s even though 1% of values need all 64 bits.
            assert!(bytes.len() < values.len() * 2, "{} bytes", bytes.len());
            let mut r = ByteReader::new(&bytes);
            assert_eq!(decode_u64s_with(&mut r, kernel).unwrap(), values);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn stream_empty_and_partial_blocks() {
        for n in [0usize, 1, 2, LANE - 1, LANE, LANE + 1, 2 * LANE + 17] {
            let values: Vec<u64> = (0..n as u64).map(|i| i % 13).collect();
            let bytes = encode_u64s(&values);
            let mut r = ByteReader::new(&bytes);
            assert_eq!(decode_u64s(&mut r).unwrap(), values, "n={n}");
        }
    }

    #[test]
    fn stream_rejects_malformed() {
        // Truncated mid-block.
        let bytes = encode_u64s(&[5u64; 300]);
        assert!(decode_u64s(&mut ByteReader::new(&bytes[..bytes.len() - 1])).is_err());
        // Hostile width.
        let mut bad = encode_u64s(&[1u64, 2, 3]);
        bad[4] = 65;
        assert!(decode_u64s(&mut ByteReader::new(&bad)).is_err());
        // Spill count larger than the block.
        let mut bad = encode_u64s(&[1u64, 2, 3]);
        bad[5] = 200;
        assert!(decode_u64s(&mut ByteReader::new(&bad)).is_err());
        // Huge count over a tiny body cannot over-allocate (bounded by
        // input) and must error out.
        let mut huge = u32::MAX.to_le_bytes().to_vec();
        huge.extend_from_slice(&[3, 0, 1]);
        assert!(decode_u64s(&mut ByteReader::new(&huge)).is_err());
    }

    #[test]
    fn all_zero_blocks_cost_two_bytes() {
        let bytes = encode_u64s(&vec![0u64; LANE * 4]);
        // 4-byte count + 4 blocks × (width byte + spill byte).
        assert_eq!(bytes.len(), 4 + 4 * 2);
    }

    #[test]
    fn bitset_basics() {
        let mut b = Bitset::with_len(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.count_zeros(), 127);
        assert!(Bitset::with_len(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitset_set_bounds_checked() {
        Bitset::with_len(8).set(8);
    }

    #[test]
    fn bitset_le_roundtrip() {
        let mut b = Bitset::with_len(77);
        for i in [0usize, 7, 8, 63, 64, 70, 76] {
            b.set(i);
        }
        let bytes = b.to_le_bytes();
        assert_eq!(bytes.len(), 10);
        let back = Bitset::from_le_bytes(&bytes, 77).unwrap();
        assert_eq!(back, b);
        assert!(Bitset::from_le_bytes(&bytes, 90).is_err(), "too few bytes");
        // Pad bits beyond len are masked off on read.
        let dirty = vec![0xFFu8; 2];
        let set = Bitset::from_le_bytes(&dirty, 9).unwrap();
        assert_eq!(set.count_ones(), 9);
    }

    #[test]
    fn bitset_msb_layout_matches_bitwriter() {
        // The legacy layout is exactly what BitWriter::write_bit produces.
        let bits: Vec<bool> = (0..37).map(|i| i % 3 == 0 || i % 7 == 1).collect();
        let mut w = crate::bitstream::BitWriter::new();
        let mut set = Bitset::with_len(bits.len());
        for (i, &bit) in bits.iter().enumerate() {
            w.write_bit(bit);
            if bit {
                set.set(i);
            }
        }
        let legacy = w.into_bytes();
        assert_eq!(set.to_msb_bytes(), legacy);
        let back = Bitset::from_msb_bytes(&legacy, bits.len()).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn choose_width_prefers_spills_for_outliers() {
        // 127 tiny values and one huge one: packing everyone at 64 bits
        // would cost 1024 bytes; spilling the outlier keeps width small.
        let mut block = vec![3u64; LANE - 1];
        block.push(u64::MAX);
        let w = choose_width(&block);
        assert_eq!(w, 2, "outlier must spill, not widen the block");
        // Uniform blocks take their natural width.
        assert_eq!(choose_width(&[255u64; LANE]), 8);
        assert_eq!(choose_width(&[0u64; LANE]), 0);
    }
}
