//! Bit-level I/O used by every compressor in this crate.
//!
//! Bits are written MSB-first within each byte, which matches the layout of
//! Gorilla's reference description and keeps the Huffman decoder a simple
//! left-to-right walk.

use std::fmt;

/// Error returned when a reader runs past the end of its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bit reader exhausted")
    }
}

impl std::error::Error for OutOfBits {}

/// An append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8). 0 means byte-aligned.
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("just pushed");
            *last |= 0x80 >> self.bit_pos;
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Writes the low `n` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Total bits written.
    pub fn len_bits(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Finishes, padding the final byte with zero bits.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A sequential bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader at bit position zero.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Result<bool, OutOfBits> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(OutOfBits);
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits into the low bits of a `u64`, MSB first.
    pub fn read_bits(&mut self, n: u8) -> Result<u64, OutOfBits> {
        debug_assert!(n <= 64);
        let mut out = 0u64;
        for _ in 0..n {
            out = (out << 1) | self.read_bit()? as u64;
        }
        Ok(out)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multibit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0b1010_0000); // padding zeros
        assert_eq!(r.read_bit(), Err(OutOfBits));
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true); // should land in bit 7 of byte 0
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0b1000_0000);
    }

    #[test]
    fn position_and_remaining() {
        let bytes = [0xFF, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }
}
