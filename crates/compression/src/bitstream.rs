//! Bit-level I/O used by every compressor in this crate.
//!
//! Bits are written MSB-first within each byte, which matches the layout of
//! Gorilla's reference description and keeps the Huffman decoder a simple
//! left-to-right walk.
//!
//! The multi-bit paths ([`BitWriter::write_bits`], [`BitReader::read_bits`])
//! move whole bytes at a time instead of looping per bit; the wire format is
//! unchanged (DESIGN.md §11 proves equivalence with a per-bit reference in
//! `tests/block_props.rs`).

use std::fmt;

/// Error returned when a reader runs past the end of its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bit reader exhausted")
    }
}

impl std::error::Error for OutOfBits {}

/// An append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8). 0 means byte-aligned.
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with room for `bits` bits before reallocating.
    /// Encode paths size this from their value count so the output vector
    /// is grown once, not byte by byte.
    pub fn with_capacity(bits: usize) -> Self {
        BitWriter { bytes: Vec::with_capacity(bits.div_ceil(8)), bit_pos: 0 }
    }

    /// Reserves room for at least `bits` additional bits.
    pub fn reserve(&mut self, bits: usize) {
        self.bytes.reserve(bits.div_ceil(8));
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("just pushed");
            *last |= 0x80 >> self.bit_pos;
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Writes the low `n` bits of `value`, most significant first.
    ///
    /// Byte-at-a-time: the current partial byte is topped up, whole bytes
    /// are pushed directly, and at most one trailing partial byte remains —
    /// never a per-bit loop.
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let val = if n == 64 { value } else { value & ((1u64 << n) - 1) };
        let mut rem = n as u32;
        // Top up the partially filled final byte.
        if self.bit_pos != 0 {
            let free = 8 - self.bit_pos as u32;
            let take = free.min(rem);
            let chunk = ((val >> (rem - take)) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.last_mut().expect("partial byte exists");
            *last |= chunk << (free - take);
            self.bit_pos = ((self.bit_pos as u32 + take) % 8) as u8;
            rem -= take;
            if rem == 0 {
                return;
            }
        }
        // Whole bytes, MSB-first.
        while rem >= 8 {
            rem -= 8;
            self.bytes.push((val >> rem) as u8);
        }
        // Trailing partial byte.
        if rem > 0 {
            self.bytes.push(((val << (8 - rem)) & 0xFF) as u8);
            self.bit_pos = rem as u8;
        }
    }

    /// Total bits written.
    pub fn len_bits(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Finishes, padding the final byte with zero bits.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A sequential bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader at bit position zero.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Result<bool, OutOfBits> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(OutOfBits);
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits into the low bits of a `u64`, MSB first.
    ///
    /// Byte-at-a-time: one partial leading byte, whole bytes in the middle,
    /// one partial trailing byte — never a per-bit loop.
    pub fn read_bits(&mut self, n: u8) -> Result<u64, OutOfBits> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        let n = n as u32;
        let end = self.pos + n as usize;
        if end > self.bytes.len() * 8 {
            return Err(OutOfBits);
        }
        let mut byte = self.pos / 8;
        let off = (self.pos % 8) as u32;
        // First (possibly partial) byte.
        let avail = 8 - off;
        let take = avail.min(n);
        let cur = self.bytes[byte] as u32;
        let mut out = ((cur >> (avail - take)) & ((1u32 << take) - 1)) as u64;
        let mut got = take;
        byte += 1;
        // Whole bytes.
        while got + 8 <= n {
            out = (out << 8) | self.bytes[byte] as u64;
            byte += 1;
            got += 8;
        }
        // Trailing partial byte.
        if got < n {
            let tail = n - got;
            out = (out << tail) | (self.bytes[byte] >> (8 - tail)) as u64;
        }
        self.pos = end;
        Ok(out)
    }

    /// Peeks at the next 8 bits without advancing, or `None` when fewer
    /// than 8 bits remain. This is the lookahead the table-driven Huffman
    /// decoder uses; near the end of the stream it falls back to the
    /// per-bit walk, so short reads never need zero-padding semantics.
    pub fn peek8(&self) -> Option<u8> {
        if self.remaining() < 8 {
            return None;
        }
        let byte = self.pos / 8;
        let off = self.pos % 8;
        if off == 0 {
            return Some(self.bytes[byte]);
        }
        let hi = self.bytes[byte] << off;
        let lo = self.bytes[byte + 1] >> (8 - off);
        Some(hi | lo)
    }

    /// Advances past `n` bits that were already inspected via [`peek8`].
    ///
    /// [`peek8`]: BitReader::peek8
    pub fn skip_bits(&mut self, n: u8) -> Result<(), OutOfBits> {
        if self.remaining() < n as usize {
            return Err(OutOfBits);
        }
        self.pos += n as usize;
        Ok(())
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multibit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0b1010_0000); // padding zeros
        assert_eq!(r.read_bit(), Err(OutOfBits));
    }

    #[test]
    fn failed_read_does_not_advance() {
        let bytes = [0xA5u8];
        let mut r = BitReader::new(&bytes);
        r.read_bits(3).unwrap();
        assert_eq!(r.read_bits(8), Err(OutOfBits));
        assert_eq!(r.position(), 3, "failed multi-bit read must not consume");
        assert_eq!(r.read_bits(5).unwrap(), 0b00101);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true); // should land in bit 7 of byte 0
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0b1000_0000);
    }

    #[test]
    fn write_bits_matches_per_bit_reference() {
        // Differential check against the definitional per-bit encoding at
        // every width and several alignments.
        for n in 0u8..=64 {
            for &phase in &[0u8, 1, 3, 7] {
                let value = 0xA5A5_5A5A_DEAD_BEEFu64;
                let mut fast = BitWriter::new();
                let mut slow = BitWriter::new();
                fast.write_bits(0x15, phase.min(5));
                slow.write_bits(0x15, phase.min(5));
                fast.write_bits(value, n);
                for i in (0..n).rev() {
                    slow.write_bit((value >> i) & 1 == 1);
                }
                assert_eq!(fast.len_bits(), slow.len_bits(), "n={n} phase={phase}");
                assert_eq!(fast.into_bytes(), slow.into_bytes(), "n={n} phase={phase}");
            }
        }
    }

    #[test]
    fn read_bits_matches_per_bit_reference() {
        let bytes: Vec<u8> = (0..40u8).map(|i| i.wrapping_mul(0x9D) ^ 0x3C).collect();
        for n in 0u8..=64 {
            for &phase in &[0u8, 1, 4, 7] {
                let mut fast = BitReader::new(&bytes);
                let mut slow = BitReader::new(&bytes);
                fast.read_bits(phase).unwrap();
                slow.read_bits(phase).unwrap();
                let got = fast.read_bits(n).unwrap();
                let mut want = 0u64;
                for _ in 0..n {
                    want = (want << 1) | slow.read_bit().unwrap() as u64;
                }
                assert_eq!(got, want, "n={n} phase={phase}");
                assert_eq!(fast.position(), slow.position());
            }
        }
    }

    #[test]
    fn peek8_and_skip() {
        let mut w = BitWriter::new();
        w.write_bits(0b110_10110, 8);
        w.write_bits(0b0101_1010, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek8().unwrap(), 0b1101_0110);
        assert_eq!(r.position(), 0, "peek must not advance");
        r.skip_bits(3).unwrap();
        // Unaligned peek spans two bytes.
        assert_eq!(r.peek8().unwrap(), 0b1011_0010);
        r.skip_bits(8).unwrap();
        assert_eq!(r.peek8(), None, "only 5 bits left");
        assert_eq!(r.read_bits(5).unwrap(), 0b11010);
        assert!(r.skip_bits(1).is_err());
    }

    #[test]
    fn with_capacity_and_reserve() {
        let mut w = BitWriter::with_capacity(1000 * 64);
        assert!(w.len_bits() == 0);
        w.reserve(128);
        w.write_bits(0xFFFF, 16);
        assert_eq!(w.into_bytes(), vec![0xFF, 0xFF]);
    }

    #[test]
    fn position_and_remaining() {
        let bytes = [0xFF, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }
}
