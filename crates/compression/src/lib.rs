//! # compression — error-bounded lossy and lossless time-series codecs
//!
//! Implements the three pointwise error-bounded lossy compressors (PEBLC)
//! the paper evaluates — [`pmc::Pmc`], [`swing::Swing`] and [`sz::Sz`] —
//! plus the lossless [`gorilla::Gorilla`] baseline and the related-work
//! [`ppa::Ppa`] (quadratic piecewise approximation, used as an ablation of
//! the paper's low-degree-models argument), on top of from-scratch
//! substrates:
//!
//! * [`bitstream`] — MSB-first bit I/O with word-level multi-bit fast
//!   paths.
//! * [`block`] — blocked bitpacking kernels (128-value lanes, zigzag +
//!   delta-of-delta transforms, varint spills, word-backed bitsets) with a
//!   runtime-selected scalar fallback (DESIGN.md §11).
//! * [`huffman`] — canonical, length-limited Huffman coding.
//! * [`deflate`] — an LZ77 + Huffman lossless codec standing in for gzip
//!   (§3.2 applies gzip to every representation and to the raw data).
//! * [`timestamps`] — the shared timestamp header (§3.2).
//! * [`codec`] — the [`codec::PeblcCompressor`] trait, sizing rules (Eq. 3)
//!   and the paper's 13 error bounds.
//! * [`reader`] — the length-checked [`reader::ByteReader`] cursor every
//!   decode path is built on: malformed input is an error, never a panic
//!   (DESIGN.md §10).
//! * [`mutate`] — the seeded corpus mutator behind the decode-totality
//!   fuzz harness (`tests/fuzz_decode.rs` and the artifact fuzz in
//!   `evalcore`).
//!
//! All lossy compressors guarantee the *relative* pointwise bound of
//! Definition 4: `|v̂ - v| <= ε·|v|` for every point.
//!
//! ```
//! use compression::{Pmc, PeblcCompressor, find_bound_violation};
//! use tsdata::series::RegularTimeSeries;
//!
//! let series = RegularTimeSeries::new(0, 60, vec![10.0, 10.4, 10.1, 12.0]).unwrap();
//! let (decompressed, frame) = Pmc.transform(&series, 0.05).unwrap();
//! assert_eq!(decompressed.len(), series.len());
//! assert!(find_bound_violation(series.values(), decompressed.values(), 0.05, 1e-9).is_none());
//! assert!(frame.num_segments >= 1);
//! ```

pub mod bitstream;
pub mod block;
pub mod codec;
pub mod crc;
pub mod deflate;
pub mod gorilla;
pub mod huffman;
pub mod mutate;
pub mod pmc;
pub mod ppa;
pub mod reader;
pub mod streaming;
pub mod swing;
pub mod sz;
pub mod timestamps;

pub use codec::{
    check_epsilon, find_bound_violation, point_bound, raw_bytes, raw_compressed_size, CodecError,
    CompressedSeries, PeblcCompressor, ERROR_BOUNDS,
};
pub use crc::crc32;
pub use gorilla::Gorilla;
pub use pmc::Pmc;
pub use ppa::Ppa;
pub use reader::{ByteReader, ReadError};
pub use streaming::{compress_source, Emit, StreamingPmc, StreamingSwing};
pub use swing::Swing;
pub use sz::Sz;

/// The three lossy methods in the paper's order, as trait objects.
pub fn all_lossy() -> Vec<Box<dyn PeblcCompressor>> {
    vec![Box::new(Pmc), Box::new(Swing), Box::new(Sz)]
}

/// Lossy method identifiers, matching [`all_lossy`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Poor Man's Compression (PMC-Mean).
    Pmc,
    /// Swing filter.
    Swing,
    /// SZ.
    Sz,
}

/// All lossy methods in the paper's order.
pub const ALL_METHODS: [Method; 3] = [Method::Pmc, Method::Swing, Method::Sz];

impl Method {
    /// Name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Method::Pmc => "PMC",
            Method::Swing => "SWING",
            Method::Sz => "SZ",
        }
    }

    /// Returns the compressor implementation.
    pub fn compressor(self) -> Box<dyn PeblcCompressor> {
        match self {
            Method::Pmc => Box::new(Pmc),
            Method::Swing => Box::new(Swing),
            Method::Sz => Box::new(Sz),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper() {
        assert_eq!(Method::Pmc.name(), "PMC");
        assert_eq!(Method::Swing.name(), "SWING");
        assert_eq!(Method::Sz.name(), "SZ");
        assert_eq!(all_lossy().len(), 3);
    }

    #[test]
    fn method_dispatch_consistent() {
        for (m, c) in ALL_METHODS.iter().zip(all_lossy()) {
            assert_eq!(m.name(), c.name());
            assert_eq!(m.compressor().name(), c.name());
        }
    }
}
