//! Canonical Huffman coding.
//!
//! Used twice in this crate: as SZ's entropy stage for quantization codes
//! (paper §3.2) and inside the DEFLATE-style lossless codec that stands in
//! for gzip. Codes are canonical so only the code *lengths* need to be
//! stored; lengths are limited to [`MAX_CODE_LEN`] bits.

use crate::bitstream::{BitReader, BitWriter, OutOfBits};

/// Maximum code length (as in DEFLATE).
pub const MAX_CODE_LEN: u8 = 15;

/// Errors from building or using a Huffman code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// No symbol has a nonzero frequency.
    EmptyAlphabet,
    /// The encoded stream contains a code not present in the table.
    BadCode,
    /// The stream ended mid-code.
    Truncated,
    /// A stored code-length table violates the Kraft inequality.
    InvalidLengths,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::EmptyAlphabet => write!(f, "no symbols with nonzero frequency"),
            HuffmanError::BadCode => write!(f, "invalid Huffman code in stream"),
            HuffmanError::Truncated => write!(f, "stream ended mid-code"),
            HuffmanError::InvalidLengths => write!(f, "code length table violates Kraft"),
        }
    }
}

impl std::error::Error for HuffmanError {}

impl From<OutOfBits> for HuffmanError {
    fn from(_: OutOfBits) -> Self {
        HuffmanError::Truncated
    }
}

/// Computes length-limited Huffman code lengths for `freqs`.
///
/// Symbols with zero frequency get length 0 (absent). A single-symbol
/// alphabet gets length 1. Lengths never exceed `MAX_CODE_LEN`; if the
/// unrestricted tree is deeper, lengths are clamped and repaired to satisfy
/// the Kraft equality (the standard zlib-style overflow fix).
pub fn build_code_lengths(freqs: &[u64]) -> Result<Vec<u8>, HuffmanError> {
    let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    if active.is_empty() {
        return Err(HuffmanError::EmptyAlphabet);
    }
    let mut lengths = vec![0u8; freqs.len()];
    if active.len() == 1 {
        lengths[active[0]] = 1;
        return Ok(lengths);
    }

    // Standard Huffman via sorted merge of leaf and internal queues.
    #[derive(Clone)]
    struct Node {
        freq: u64,
        children: Option<(usize, usize)>, // indices into `nodes`
        symbol: usize,
    }
    let mut nodes: Vec<Node> =
        active.iter().map(|&s| Node { freq: freqs[s], children: None, symbol: s }).collect();
    nodes.sort_by_key(|n| n.freq);

    let mut leaves: std::collections::VecDeque<usize> = (0..nodes.len()).collect();
    let mut internals: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let pop_min = |nodes: &Vec<Node>,
                   leaves: &mut std::collections::VecDeque<usize>,
                   internals: &mut std::collections::VecDeque<usize>| {
        match (leaves.front(), internals.front()) {
            (Some(&l), Some(&i)) => {
                if nodes[l].freq <= nodes[i].freq {
                    leaves.pop_front().expect("front exists")
                } else {
                    internals.pop_front().expect("front exists")
                }
            }
            (Some(_), None) => leaves.pop_front().expect("front exists"),
            (None, Some(_)) => internals.pop_front().expect("front exists"),
            (None, None) => unreachable!("merge loop bounds"),
        }
    };
    let total = nodes.len();
    for _ in 0..total - 1 {
        let a = pop_min(&nodes, &mut leaves, &mut internals);
        let b = pop_min(&nodes, &mut leaves, &mut internals);
        let parent = Node {
            freq: nodes[a].freq + nodes[b].freq,
            children: Some((a, b)),
            symbol: usize::MAX,
        };
        nodes.push(parent);
        internals.push_back(nodes.len() - 1);
    }
    // Depth-first traversal assigning depths.
    let root = nodes.len() - 1;
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        match nodes[idx].children {
            Some((a, b)) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
            None => {
                lengths[nodes[idx].symbol] = depth.max(1);
            }
        }
    }

    // Length-limit: clamp and repair Kraft sum.
    if lengths.iter().any(|&l| l > MAX_CODE_LEN) {
        for l in lengths.iter_mut() {
            if *l > MAX_CODE_LEN {
                *l = MAX_CODE_LEN;
            }
        }
        // kraft sum in units of 2^-MAX_CODE_LEN
        let unit = 1u64 << MAX_CODE_LEN;
        let kraft = |lengths: &[u8]| -> u64 {
            lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum()
        };
        let mut k = kraft(&lengths);
        // Overfull: lengthen the shortest-freq... standard fix: repeatedly
        // take a symbol whose length < MAX and increase it; pick the symbol
        // with the smallest frequency among those with minimal impact.
        while k > unit {
            // find symbol with max length < MAX_CODE_LEN and smallest freq
            let mut best: Option<usize> = None;
            for (i, &l) in lengths.iter().enumerate() {
                if l > 0 && l < MAX_CODE_LEN {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            (lengths[b], freqs[i]) > (l, freqs[b]) && freqs[i] <= freqs[b]
                                || lengths[b] < l
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            let i = best.ok_or(HuffmanError::InvalidLengths)?;
            k -= unit >> lengths[i];
            lengths[i] += 1;
            k += unit >> lengths[i];
        }
        // Underfull is fine for decodability, but tighten anyway by
        // shortening the longest codes where possible.
        'outer: while k < unit {
            for l in lengths.iter_mut() {
                if *l > 1 {
                    let gain = (unit >> (*l - 1)) - (unit >> *l);
                    if k + gain <= unit {
                        *l -= 1;
                        k += gain;
                        continue 'outer;
                    }
                }
            }
            break;
        }
    }
    Ok(lengths)
}

/// A canonical Huffman code: encoder table plus decoder index, derived
/// purely from code lengths.
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    lengths: Vec<u8>,
    codes: Vec<u32>,
    /// Symbols sorted by (length, symbol), for decoding.
    sorted_symbols: Vec<u32>,
    /// For each length 1..=MAX: the first canonical code of that length.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// For each length: index into `sorted_symbols` of its first symbol.
    first_index: [u32; MAX_CODE_LEN as usize + 1],
    /// 8-bit prefix table: entry `w` is `(len << 12) | symbol` for the
    /// code prefixing window `w`, or 0 when no code of length ≤ 8 does
    /// (then [`CanonicalCode::decode_walk`] resolves the window).
    table: Vec<u16>,
}

/// Prefix-table window width: one byte of lookahead resolves every code of
/// up to this many bits in a single table hit.
const TABLE_BITS: u8 = 8;

impl CanonicalCode {
    /// Builds the canonical code from per-symbol lengths (0 = absent).
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, HuffmanError> {
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        let mut any = false;
        for &l in lengths {
            if l > MAX_CODE_LEN {
                return Err(HuffmanError::InvalidLengths);
            }
            if l > 0 {
                count[l as usize] += 1;
                any = true;
            }
        }
        if !any {
            return Err(HuffmanError::EmptyAlphabet);
        }
        // Kraft check (allow underfull — our builder tightens but tolerate).
        let unit = 1u64 << MAX_CODE_LEN;
        let kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum();
        if kraft > unit {
            return Err(HuffmanError::InvalidLengths);
        }

        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
        }
        let mut next = first_code;
        let mut codes = vec![0u32; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                codes[sym] = next[l as usize];
                next[l as usize] += 1;
            }
        }
        // Decoder index.
        let mut sorted_symbols: Vec<u32> =
            (0..lengths.len() as u32).filter(|&s| lengths[s as usize] > 0).collect();
        sorted_symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut first_index = [0u32; MAX_CODE_LEN as usize + 1];
        let mut acc = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_index[len] = acc;
            acc += count[len];
        }
        // Prefix table: every 8-bit window starting with a short code maps
        // straight to (length, symbol). Symbols that cannot fit the 12-bit
        // payload (alphabets past 4096) simply stay on the walk path.
        let mut table = vec![0u16; 1 << TABLE_BITS];
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 || l > TABLE_BITS || sym >= 1 << 12 {
                continue;
            }
            let start = (codes[sym] << (TABLE_BITS - l)) as usize;
            let entry = ((l as u16) << 12) | sym as u16;
            for slot in &mut table[start..start + (1 << (TABLE_BITS - l))] {
                *slot = entry;
            }
        }
        Ok(CanonicalCode {
            lengths: lengths.to_vec(),
            codes,
            sorted_symbols,
            first_code,
            first_index,
            table,
        })
    }

    /// Builds directly from frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Result<Self, HuffmanError> {
        Self::from_lengths(&build_code_lengths(freqs)?)
    }

    /// Reconstructs a code from an `alphabet`-sized table of 4-bit code
    /// lengths — the serialized-table layout both SZ and the DEFLATE
    /// container use. Total: a truncated table or a Kraft-violating one
    /// is an error, never a panic, so this is the one place untrusted
    /// Huffman tables enter the crate.
    pub fn read_lengths4(r: &mut BitReader<'_>, alphabet: usize) -> Result<Self, HuffmanError> {
        let mut lengths = vec![0u8; alphabet];
        for l in lengths.iter_mut() {
            *l = r.read_bits(4)? as u8;
        }
        Self::from_lengths(&lengths)
    }

    /// Serializes the table in the layout [`Self::read_lengths4`] reads.
    pub fn write_lengths4(&self, w: &mut BitWriter) {
        for &l in self.lengths() {
            debug_assert!(l <= 15, "4-bit table");
            w.write_bits(l as u64, 4);
        }
    }

    /// The per-symbol code lengths (for serialization).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Writes the code for `symbol`.
    ///
    /// # Panics
    /// Panics (debug) if the symbol has no code.
    pub fn encode(&self, symbol: usize, w: &mut BitWriter) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "encoding absent symbol {symbol}");
        w.write_bits(self.codes[symbol] as u64, len);
    }

    /// Reads one symbol: a single 8-bit lookahead resolves every code of
    /// up to 8 bits in one table hit; longer codes, codes near the end of
    /// the stream, and invalid prefixes fall back to
    /// [`CanonicalCode::decode_walk`], which has identical semantics.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize, HuffmanError> {
        if let Some(window) = r.peek8() {
            let entry = self.table[window as usize];
            if entry != 0 {
                let len = (entry >> 12) as u8;
                r.skip_bits(len).map_err(|_| HuffmanError::Truncated)?;
                return Ok((entry & 0x0FFF) as usize);
            }
        }
        self.decode_walk(r)
    }

    /// Reads one symbol bit by bit: the pre-table decode path, kept both
    /// as the fallback for [`CanonicalCode::decode`] and as the scalar
    /// baseline the codecs bench measures the table against.
    pub fn decode_walk(&self, r: &mut BitReader<'_>) -> Result<usize, HuffmanError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | r.read_bit()? as u32;
            let count = self.count_at(len);
            if count > 0 && code >= self.first_code[len] && code < self.first_code[len] + count {
                let idx = self.first_index[len] + (code - self.first_code[len]);
                return Ok(self.sorted_symbols[idx as usize] as usize);
            }
        }
        Err(HuffmanError::BadCode)
    }

    fn count_at(&self, len: usize) -> u32 {
        let next = if len == MAX_CODE_LEN as usize {
            self.sorted_symbols.len() as u32
        } else {
            self.first_index[len + 1]
        };
        next - self.first_index[len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[usize], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s] += 1;
        }
        let code = CanonicalCode::from_freqs(&freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in symbols {
            code.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn skewed_distribution_roundtrip() {
        let mut symbols = vec![0usize; 1000];
        for (i, s) in symbols.iter_mut().enumerate() {
            *s = match i % 10 {
                0..=6 => 0,
                7 | 8 => 1,
                _ => 2 + (i % 5),
            };
        }
        roundtrip(&symbols, 8);
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[3, 3, 3, 3], 5);
    }

    #[test]
    fn two_symbols_get_one_bit() {
        let lengths = build_code_lengths(&[10, 90]).unwrap();
        assert_eq!(lengths, vec![1, 1]);
    }

    #[test]
    fn skewed_code_is_shorter_for_frequent() {
        let lengths = build_code_lengths(&[1, 1, 1, 100]).unwrap();
        assert!(lengths[3] < lengths[0]);
    }

    #[test]
    fn compression_beats_fixed_width() {
        // 7/8 of mass on one symbol out of 256: entropy ≈ 0.67 bits/sym.
        let mut freqs = vec![1u64; 256];
        freqs[0] = 10_000;
        let code = CanonicalCode::from_freqs(&freqs).unwrap();
        assert_eq!(code.lengths()[0], 1);
    }

    #[test]
    fn empty_alphabet_rejected() {
        assert_eq!(build_code_lengths(&[0, 0]).unwrap_err(), HuffmanError::EmptyAlphabet);
    }

    #[test]
    fn fibonacci_frequencies_force_length_limit() {
        // Fibonacci frequencies create a maximally skewed tree deeper than
        // 15 for ~20+ symbols; the limiter must repair it.
        let mut freqs = vec![0u64; 25];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs).unwrap();
        assert!(lengths.iter().all(|&l| l > 0 && l <= MAX_CODE_LEN));
        // must be decodable
        let code = CanonicalCode::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        for s in 0..25 {
            code.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for s in 0..25 {
            assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn invalid_lengths_rejected() {
        // Three codes of length 1 violate Kraft.
        assert!(CanonicalCode::from_lengths(&[1, 1, 1]).is_err());
        assert!(CanonicalCode::from_lengths(&[16]).is_err());
    }

    #[test]
    fn truncated_stream_detected() {
        let code = CanonicalCode::from_freqs(&[1, 1, 1, 1]).unwrap();
        let mut w = BitWriter::new();
        code.encode(0, &mut w);
        let mut bytes = w.into_bytes();
        bytes.clear();
        let mut r = BitReader::new(&bytes);
        assert_eq!(code.decode(&mut r).unwrap_err(), HuffmanError::Truncated);
    }

    #[test]
    fn table_and_walk_decode_identically() {
        // Large skewed alphabet (SZ-sized): short codes hit the table,
        // rare symbols get >8-bit codes and exercise the fallback.
        let mut freqs = vec![1u64; 1026];
        freqs[513] = 100_000;
        freqs[512] = 30_000;
        freqs[514] = 30_000;
        for (i, f) in freqs.iter_mut().enumerate().take(64) {
            *f = 500 + i as u64;
        }
        let code = CanonicalCode::from_freqs(&freqs).unwrap();
        assert!(code.lengths().iter().any(|&l| l > 8), "long codes present");
        let symbols: Vec<usize> =
            (0..5000usize).map(|i| if i % 3 == 0 { 513 } else { (i * 131) % 1026 }).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut fast = BitReader::new(&bytes);
        let mut slow = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(code.decode(&mut fast).unwrap(), s);
            assert_eq!(code.decode_walk(&mut slow).unwrap(), s);
            assert_eq!(fast.position(), slow.position());
        }
    }

    #[test]
    fn table_decode_handles_stream_tail() {
        // Codes whose final symbols sit in the last partial byte must fall
        // back to the walk, not require 8 bits of lookahead.
        let code = CanonicalCode::from_freqs(&[40, 30, 20, 10]).unwrap();
        let symbols = [0usize, 3, 1, 2, 0, 0, 3];
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn lengths_survive_canonical_reconstruction() {
        let freqs = [5u64, 9, 12, 13, 16, 45, 0, 3];
        let code = CanonicalCode::from_freqs(&freqs).unwrap();
        let rebuilt = CanonicalCode::from_lengths(code.lengths()).unwrap();
        let mut w1 = BitWriter::new();
        let mut w2 = BitWriter::new();
        for s in [0usize, 1, 2, 3, 4, 5, 7] {
            code.encode(s, &mut w1);
            rebuilt.encode(s, &mut w2);
        }
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }
}
