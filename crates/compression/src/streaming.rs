//! Streaming (online) compression — the paper's deployment scenario (§1):
//! "the time series are lossy compressed on the wind turbine" and shipped
//! segment by segment over a constrained link.
//!
//! [`StreamingPmc`] and [`StreamingSwing`] accept points one at a time and
//! emit closed segments as soon as the error bound forces a cut, so memory
//! stays O(1) regardless of stream length. Their output is identical to
//! the batch `segment_values` of the respective modules (tested below),
//! except that the streaming side also enforces the 16-bit segment-length
//! cap during segmentation — both algorithms are single-pass by
//! construction; the batch API merely materializes everything at once.
//! Cap-forced cuts are counted (`cap_cuts`) so callers that promise
//! byte-identity with the batch frames ([`compress_source`], store chunk
//! sealing) can fail with a typed error instead of silently diverging.

use tsdata::series::SeriesSource;

use crate::codec::point_bound;
use crate::codec::{check_epsilon, CodecError, CompressedSeries, PeblcCompressor};
use crate::pmc::PmcSegment;
use crate::swing::SwingSegment;
use crate::Method;

/// An emitted streaming segment event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Emit<S> {
    /// No segment closed on this point.
    Pending,
    /// The previous window closed with this segment.
    Segment(S),
}

/// Online PMC-Mean: push points, receive closed segments.
#[derive(Debug, Clone)]
pub struct StreamingPmc {
    epsilon: f64,
    lo: f64,
    hi: f64,
    sum: f64,
    count: usize,
    mean: f64,
    cap_cuts: usize,
}

impl StreamingPmc {
    /// Creates a streaming compressor with relative bound `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        StreamingPmc {
            epsilon,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            sum: 0.0,
            count: 0,
            mean: 0.0,
            cap_cuts: 0,
        }
    }

    /// Number of points in the open window.
    pub fn pending_len(&self) -> usize {
        self.count
    }

    /// How many segments were cut by the 16-bit length cap rather than the
    /// error bound. Non-zero means this stream's segmentation diverged
    /// from the batch compressor's (which splits at encode time, keeping
    /// one mean per logical segment), so byte-identity no longer holds.
    pub fn cap_cuts(&self) -> usize {
        self.cap_cuts
    }

    /// Pushes one point; returns the segment that closed, if any.
    pub fn push(&mut self, v: f64) -> Emit<PmcSegment> {
        let b = point_bound(v, self.epsilon);
        let nlo = self.lo.max(v - b);
        let nhi = self.hi.min(v + b);
        let nsum = self.sum + v;
        let ncount = self.count + 1;
        let nmean = nsum / ncount as f64;
        if nlo <= nhi && nmean >= nlo && nmean <= nhi {
            self.lo = nlo;
            self.hi = nhi;
            self.sum = nsum;
            self.count = ncount;
            self.mean = nmean;
            // Respect the 16-bit segment-length storage cap.
            if self.count == u16::MAX as usize {
                self.cap_cuts += 1;
                return Emit::Segment(self.take_segment(f64::NAN));
            }
            Emit::Pending
        } else {
            Emit::Segment(self.take_segment(v))
        }
    }

    /// Flushes the open window at end of stream.
    pub fn finish(mut self) -> Option<PmcSegment> {
        self.drain()
    }

    /// Flushes the open window without consuming the encoder: the store
    /// seals an active chunk this way and keeps pushing into the same
    /// wrapper. After a drain the next `push` starts a fresh segment.
    pub fn drain(&mut self) -> Option<PmcSegment> {
        (self.count > 0).then(|| self.take_segment(f64::NAN))
    }

    fn take_segment(&mut self, next: f64) -> PmcSegment {
        let seg = PmcSegment {
            len: self.count,
            value: crate::pmc::snap_near_mean_public(self.lo, self.hi, self.mean),
        };
        if next.is_nan() {
            self.lo = f64::NEG_INFINITY;
            self.hi = f64::INFINITY;
            self.sum = 0.0;
            self.count = 0;
            self.mean = 0.0;
        } else {
            let b = point_bound(next, self.epsilon);
            self.lo = next - b;
            self.hi = next + b;
            self.sum = next;
            self.count = 1;
            self.mean = next;
        }
        seg
    }
}

/// Online Swing filter: push points, receive closed line segments.
#[derive(Debug, Clone)]
pub struct StreamingSwing {
    epsilon: f64,
    anchor: f64,
    offset: usize,
    slope_lo: f64,
    slope_hi: f64,
    started: bool,
    cap_cuts: usize,
}

impl StreamingSwing {
    /// Creates a streaming Swing filter with relative bound `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        StreamingSwing {
            epsilon,
            anchor: 0.0,
            offset: 0,
            slope_lo: f64::NEG_INFINITY,
            slope_hi: f64::INFINITY,
            started: false,
            cap_cuts: 0,
        }
    }

    /// Number of points in the open window.
    pub fn pending_len(&self) -> usize {
        if self.started {
            self.offset + 1
        } else {
            0
        }
    }

    /// How many segments were cut by the 16-bit length cap rather than
    /// the error bound (see [`StreamingPmc::cap_cuts`]).
    pub fn cap_cuts(&self) -> usize {
        self.cap_cuts
    }

    fn close(&mut self) -> SwingSegment {
        let slope = if self.slope_lo.is_finite() && self.slope_hi.is_finite() {
            (self.slope_lo + self.slope_hi) / 2.0
        } else {
            0.0
        };
        SwingSegment { len: self.offset + 1, intercept: self.anchor, slope }
    }

    fn reanchor(&mut self, v: f64) {
        self.anchor = v;
        self.offset = 0;
        self.slope_lo = f64::NEG_INFINITY;
        self.slope_hi = f64::INFINITY;
        self.started = true;
    }

    /// Pushes one point; returns the segment that closed, if any.
    pub fn push(&mut self, v: f64) -> Emit<SwingSegment> {
        if !self.started {
            self.reanchor(v);
            return Emit::Pending;
        }
        // Mirrors `swing::segment_values`: exact zeros either extend a
        // zero-anchored zero-slope line or force a cut.
        if v == 0.0 && self.epsilon < 1.0 {
            if self.anchor == 0.0 && self.slope_lo <= 0.0 && 0.0 <= self.slope_hi {
                self.slope_lo = 0.0;
                self.slope_hi = 0.0;
                self.offset += 1;
                return Emit::Pending;
            }
            let seg = self.close();
            self.reanchor(v);
            return Emit::Segment(seg);
        }
        let off = (self.offset + 1) as f64;
        let b = point_bound(v, self.epsilon);
        let margin = 2.0 * f32::EPSILON as f64 * (self.anchor.abs() + v.abs() + b);
        let b_eff = b - margin;
        let nlo = self.slope_lo.max((v - b_eff - self.anchor) / off);
        let nhi = self.slope_hi.min((v + b_eff - self.anchor) / off);
        let fits = b_eff > 0.0 && nlo <= nhi;
        if fits && self.offset + 2 <= u16::MAX as usize {
            self.slope_lo = nlo;
            self.slope_hi = nhi;
            self.offset += 1;
            Emit::Pending
        } else {
            if fits {
                // The bound would have admitted the point; only the 16-bit
                // length cap forced this cut.
                self.cap_cuts += 1;
            }
            let seg = self.close();
            self.reanchor(v);
            Emit::Segment(seg)
        }
    }

    /// Flushes the open window at end of stream.
    pub fn finish(mut self) -> Option<SwingSegment> {
        self.drain()
    }

    /// Flushes the open window without consuming the filter (see
    /// [`StreamingPmc::drain`]); the next `push` re-anchors from scratch.
    pub fn drain(&mut self) -> Option<SwingSegment> {
        if !self.started {
            return None;
        }
        let seg = self.close();
        self.anchor = 0.0;
        self.offset = 0;
        self.slope_lo = f64::NEG_INFINITY;
        self.slope_hi = f64::INFINITY;
        self.started = false;
        Some(seg)
    }
}

/// Compresses a [`SeriesSource`] under `(method, epsilon)` by streaming its
/// values through the online encoders, producing a frame *byte-identical*
/// to `method.compressor().compress(...)` of the materialised series. PMC
/// and Swing never hold more than the open window; SZ is block-based and
/// falls back to collecting the values.
///
/// If a segment reaches the 16-bit length cap the streaming side is forced
/// to cut where the batch side would not (the batch encoder splits at
/// encode time, keeping one model per logical segment), so byte-identity
/// cannot hold — that case returns [`CodecError::SegmentCap`] instead of
/// silently diverging.
///
/// This is how the store re-encodes chunk-backed reads: identical frame
/// bytes mean identical sizes, segment counts and decoded series, so a
/// store-backed grid reproduces the in-memory grid's CSVs exactly.
pub fn compress_source(
    source: &dyn SeriesSource,
    method: Method,
    epsilon: f64,
) -> Result<CompressedSeries, CodecError> {
    check_epsilon(epsilon)?;
    match method {
        Method::Pmc => {
            let mut enc = StreamingPmc::new(epsilon);
            let mut segs = Vec::new();
            for v in source.iter_values() {
                if let Emit::Segment(s) = enc.push(v) {
                    segs.push(s);
                }
            }
            segs.extend(enc.drain());
            if enc.cap_cuts() > 0 {
                return Err(CodecError::SegmentCap { method: "PMC" });
            }
            Ok(CompressedSeries {
                method: "PMC",
                bytes: crate::pmc::encode_segments(source.start(), source.interval(), &segs)?,
                num_segments: segs.len(),
            })
        }
        Method::Swing => {
            let mut enc = StreamingSwing::new(epsilon);
            let mut segs = Vec::new();
            for v in source.iter_values() {
                if let Emit::Segment(s) = enc.push(v) {
                    segs.push(s);
                }
            }
            segs.extend(enc.drain());
            if enc.cap_cuts() > 0 {
                return Err(CodecError::SegmentCap { method: "SWING" });
            }
            Ok(CompressedSeries {
                method: "SWING",
                bytes: crate::swing::encode_segments(source.start(), source.interval(), &segs)?,
                num_segments: segs.len(),
            })
        }
        Method::Sz => {
            // SZ quantizes over fixed blocks, so it needs the values at
            // hand; materialise and defer to the batch implementation.
            let series = source.materialize().map_err(CodecError::from)?;
            crate::Sz.compress(&series, epsilon)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::datasets::{generate_univariate, DatasetKind, GenOptions};

    fn drain_pmc(values: &[f64], eps: f64) -> Vec<PmcSegment> {
        let mut s = StreamingPmc::new(eps);
        let mut out = Vec::new();
        for &v in values {
            if let Emit::Segment(seg) = s.push(v) {
                out.push(seg);
            }
        }
        out.extend(s.finish());
        out
    }

    fn drain_swing(values: &[f64], eps: f64) -> Vec<SwingSegment> {
        let mut s = StreamingSwing::new(eps);
        let mut out = Vec::new();
        for &v in values {
            if let Emit::Segment(seg) = s.push(v) {
                out.push(seg);
            }
        }
        out.extend(s.finish());
        out
    }

    #[test]
    fn streaming_pmc_matches_batch() {
        let series = generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(3_000));
        for eps in [0.01, 0.1, 0.4] {
            let streamed = drain_pmc(series.values(), eps);
            let batch = crate::pmc::segment_values(series.values(), eps);
            assert_eq!(streamed, batch, "eps {eps}");
        }
    }

    #[test]
    fn streaming_swing_matches_batch() {
        let series = generate_univariate(DatasetKind::Solar, GenOptions::with_len(3_000));
        for eps in [0.01, 0.1, 0.4] {
            let streamed = drain_swing(series.values(), eps);
            let batch = crate::swing::segment_values(series.values(), eps);
            assert_eq!(streamed, batch, "eps {eps}");
        }
    }

    #[test]
    fn segments_cover_the_stream() {
        let series = generate_univariate(DatasetKind::Wind, GenOptions::with_len(2_000));
        let segs = drain_pmc(series.values(), 0.1);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 2_000);
        let segs = drain_swing(series.values(), 0.1);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 2_000);
    }

    #[test]
    fn compress_source_is_byte_identical_to_batch() {
        for kind in [DatasetKind::ETTm1, DatasetKind::Solar, DatasetKind::Wind] {
            let series = generate_univariate(kind, GenOptions::with_len(2_500));
            for method in crate::ALL_METHODS {
                for eps in [0.01, 0.1, 0.4] {
                    let streamed = compress_source(&series, method, eps).unwrap();
                    let batch = method.compressor().compress(&series, eps).unwrap();
                    assert_eq!(streamed.bytes, batch.bytes, "{kind:?} {method:?} eps {eps}");
                    assert_eq!(streamed.num_segments, batch.num_segments);
                    assert_eq!(streamed.method, batch.method);
                }
            }
        }
    }

    #[test]
    fn compress_source_rejects_bad_epsilon() {
        let series = generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(64));
        assert!(compress_source(&series, Method::Pmc, -1.0).is_err());
        assert!(compress_source(&series, Method::Swing, f64::NAN).is_err());
    }

    #[test]
    fn pending_len_tracks_open_window() {
        let mut s = StreamingPmc::new(0.5);
        assert_eq!(s.pending_len(), 0);
        s.push(10.0);
        s.push(10.1);
        assert_eq!(s.pending_len(), 2);
        let mut w = StreamingSwing::new(0.5);
        w.push(1.0);
        w.push(2.0);
        assert_eq!(w.pending_len(), 2);
    }

    #[test]
    fn empty_stream_finishes_empty() {
        assert!(StreamingPmc::new(0.1).finish().is_none());
        assert!(StreamingSwing::new(0.1).finish().is_none());
    }

    #[test]
    fn drain_then_continue_starts_a_fresh_segment() {
        // Seal-then-continue (the store's chunk boundary): the drained
        // window must not leak state into the next segment.
        let mut p = StreamingPmc::new(0.1);
        p.push(10.0);
        p.push(10.2);
        assert_eq!(p.drain().map(|s| s.len), Some(2));
        assert_eq!(p.pending_len(), 0);
        assert!(p.drain().is_none(), "second drain on an empty window");
        // 50.0 would have violated the [10-ish] window; a fresh segment
        // accepts it as its first point.
        assert_eq!(p.push(50.0), Emit::Pending);
        assert_eq!(p.drain(), Some(PmcSegment { len: 1, value: 50.0 }));

        let mut w = StreamingSwing::new(0.1);
        w.push(1.0);
        w.push(2.0);
        let seg = w.drain().unwrap();
        assert_eq!((seg.len, seg.intercept), (2, 1.0));
        assert_eq!(w.pending_len(), 0);
        assert!(w.drain().is_none());
        // The next point re-anchors: drained state must not constrain it.
        assert_eq!(w.push(-7.0), Emit::Pending);
        let seg = w.drain().unwrap();
        assert_eq!((seg.len, seg.intercept, seg.slope), (1, -7.0, 0.0));
    }

    #[test]
    fn drain_segments_match_chunked_batch() {
        // Draining every k points must equal batch segmentation of each
        // k-point slice — the store's byte-identity precondition.
        let series = generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(1_024));
        for k in [37usize, 256] {
            let mut s = StreamingPmc::new(0.1);
            let mut streamed = Vec::new();
            for chunk in series.values().chunks(k) {
                for &v in chunk {
                    if let Emit::Segment(seg) = s.push(v) {
                        streamed.push(seg);
                    }
                }
                streamed.extend(s.drain());
            }
            let batch: Vec<PmcSegment> = series
                .values()
                .chunks(k)
                .flat_map(|c| crate::pmc::segment_values(c, 0.1))
                .collect();
            assert_eq!(streamed, batch, "k={k}");
        }
    }

    #[test]
    fn long_constant_stream_respects_u16_cap() {
        let mut s = StreamingPmc::new(0.1);
        let mut segments = 0;
        for _ in 0..200_000 {
            if let Emit::Segment(seg) = s.push(5.0) {
                assert!(seg.len <= u16::MAX as usize);
                segments += 1;
            }
        }
        assert!(segments >= 3, "u16 cap should have forced cuts: {segments}");
        // Every one of those cuts was cap-forced, not bound-forced, and
        // the encoder kept count of each.
        assert_eq!(s.cap_cuts(), segments);
    }

    #[test]
    fn swing_counts_cap_forced_cuts() {
        let mut s = StreamingSwing::new(0.1);
        for _ in 0..70_000 {
            s.push(5.0);
        }
        assert_eq!(s.cap_cuts(), 1, "one cap cut past u16::MAX constant points");
        // Bound-forced cuts don't count: alternate far-apart values so
        // every point breaks the previous line.
        let mut s = StreamingSwing::new(0.01);
        for i in 0..1_000 {
            s.push(if i % 2 == 0 { 1.0 } else { 100.0 });
        }
        assert_eq!(s.cap_cuts(), 0);
    }

    #[test]
    fn compress_source_errors_at_segment_cap() {
        use tsdata::series::RegularTimeSeries;
        // 70k identical values form one logical segment longer than
        // u16::MAX. The batch compressor keeps one model and splits at
        // encode time; the streaming side would have to cut mid-segment
        // (changing the fitted model), so byte-identity is impossible and
        // the typed error replaces the old documented caveat.
        let series = RegularTimeSeries::new(0, 60, vec![5.0; 70_000]).unwrap();
        for method in [Method::Pmc, Method::Swing] {
            let err = compress_source(&series, method, 0.1).unwrap_err();
            assert!(matches!(err, CodecError::SegmentCap { .. }), "{method:?}: {err}");
            // The batch side still compresses the same series fine.
            let batch = method.compressor().compress(&series, 0.1).unwrap();
            assert_eq!(batch.num_segments, 1, "{method:?}");
        }
    }
}
