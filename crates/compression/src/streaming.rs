//! Streaming (online) compression — the paper's deployment scenario (§1):
//! "the time series are lossy compressed on the wind turbine" and shipped
//! segment by segment over a constrained link.
//!
//! [`StreamingPmc`] and [`StreamingSwing`] accept points one at a time and
//! emit closed segments as soon as the error bound forces a cut, so memory
//! stays O(1) regardless of stream length. Their output is identical to
//! the batch `segment_values` of the respective modules (tested below),
//! except that the streaming side also enforces the 16-bit segment-length
//! cap during segmentation — both algorithms are single-pass by
//! construction; the batch API merely materializes everything at once.

use crate::codec::point_bound;
use crate::pmc::PmcSegment;
use crate::swing::SwingSegment;

/// An emitted streaming segment event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Emit<S> {
    /// No segment closed on this point.
    Pending,
    /// The previous window closed with this segment.
    Segment(S),
}

/// Online PMC-Mean: push points, receive closed segments.
#[derive(Debug, Clone)]
pub struct StreamingPmc {
    epsilon: f64,
    lo: f64,
    hi: f64,
    sum: f64,
    count: usize,
    mean: f64,
}

impl StreamingPmc {
    /// Creates a streaming compressor with relative bound `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        StreamingPmc {
            epsilon,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            sum: 0.0,
            count: 0,
            mean: 0.0,
        }
    }

    /// Number of points in the open window.
    pub fn pending_len(&self) -> usize {
        self.count
    }

    /// Pushes one point; returns the segment that closed, if any.
    pub fn push(&mut self, v: f64) -> Emit<PmcSegment> {
        let b = point_bound(v, self.epsilon);
        let nlo = self.lo.max(v - b);
        let nhi = self.hi.min(v + b);
        let nsum = self.sum + v;
        let ncount = self.count + 1;
        let nmean = nsum / ncount as f64;
        if nlo <= nhi && nmean >= nlo && nmean <= nhi {
            self.lo = nlo;
            self.hi = nhi;
            self.sum = nsum;
            self.count = ncount;
            self.mean = nmean;
            // Respect the 16-bit segment-length storage cap.
            if self.count == u16::MAX as usize {
                return Emit::Segment(self.take_segment(f64::NAN));
            }
            Emit::Pending
        } else {
            Emit::Segment(self.take_segment(v))
        }
    }

    /// Flushes the open window at end of stream.
    pub fn finish(mut self) -> Option<PmcSegment> {
        (self.count > 0).then(|| self.take_segment(f64::NAN))
    }

    fn take_segment(&mut self, next: f64) -> PmcSegment {
        let seg = PmcSegment {
            len: self.count,
            value: crate::pmc::snap_near_mean_public(self.lo, self.hi, self.mean),
        };
        if next.is_nan() {
            self.lo = f64::NEG_INFINITY;
            self.hi = f64::INFINITY;
            self.sum = 0.0;
            self.count = 0;
            self.mean = 0.0;
        } else {
            let b = point_bound(next, self.epsilon);
            self.lo = next - b;
            self.hi = next + b;
            self.sum = next;
            self.count = 1;
            self.mean = next;
        }
        seg
    }
}

/// Online Swing filter: push points, receive closed line segments.
#[derive(Debug, Clone)]
pub struct StreamingSwing {
    epsilon: f64,
    anchor: f64,
    offset: usize,
    slope_lo: f64,
    slope_hi: f64,
    started: bool,
}

impl StreamingSwing {
    /// Creates a streaming Swing filter with relative bound `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        StreamingSwing {
            epsilon,
            anchor: 0.0,
            offset: 0,
            slope_lo: f64::NEG_INFINITY,
            slope_hi: f64::INFINITY,
            started: false,
        }
    }

    /// Number of points in the open window.
    pub fn pending_len(&self) -> usize {
        if self.started {
            self.offset + 1
        } else {
            0
        }
    }

    fn close(&mut self) -> SwingSegment {
        let slope = if self.slope_lo.is_finite() && self.slope_hi.is_finite() {
            (self.slope_lo + self.slope_hi) / 2.0
        } else {
            0.0
        };
        SwingSegment { len: self.offset + 1, intercept: self.anchor, slope }
    }

    fn reanchor(&mut self, v: f64) {
        self.anchor = v;
        self.offset = 0;
        self.slope_lo = f64::NEG_INFINITY;
        self.slope_hi = f64::INFINITY;
        self.started = true;
    }

    /// Pushes one point; returns the segment that closed, if any.
    pub fn push(&mut self, v: f64) -> Emit<SwingSegment> {
        if !self.started {
            self.reanchor(v);
            return Emit::Pending;
        }
        // Mirrors `swing::segment_values`: exact zeros either extend a
        // zero-anchored zero-slope line or force a cut.
        if v == 0.0 && self.epsilon < 1.0 {
            if self.anchor == 0.0 && self.slope_lo <= 0.0 && 0.0 <= self.slope_hi {
                self.slope_lo = 0.0;
                self.slope_hi = 0.0;
                self.offset += 1;
                return Emit::Pending;
            }
            let seg = self.close();
            self.reanchor(v);
            return Emit::Segment(seg);
        }
        let off = (self.offset + 1) as f64;
        let b = point_bound(v, self.epsilon);
        let margin = 2.0 * f32::EPSILON as f64 * (self.anchor.abs() + v.abs() + b);
        let b_eff = b - margin;
        let nlo = self.slope_lo.max((v - b_eff - self.anchor) / off);
        let nhi = self.slope_hi.min((v + b_eff - self.anchor) / off);
        if b_eff > 0.0 && nlo <= nhi && self.offset + 2 <= u16::MAX as usize {
            self.slope_lo = nlo;
            self.slope_hi = nhi;
            self.offset += 1;
            Emit::Pending
        } else {
            let seg = self.close();
            self.reanchor(v);
            Emit::Segment(seg)
        }
    }

    /// Flushes the open window at end of stream.
    pub fn finish(mut self) -> Option<SwingSegment> {
        self.started.then(|| self.close())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::datasets::{generate_univariate, DatasetKind, GenOptions};

    fn drain_pmc(values: &[f64], eps: f64) -> Vec<PmcSegment> {
        let mut s = StreamingPmc::new(eps);
        let mut out = Vec::new();
        for &v in values {
            if let Emit::Segment(seg) = s.push(v) {
                out.push(seg);
            }
        }
        out.extend(s.finish());
        out
    }

    fn drain_swing(values: &[f64], eps: f64) -> Vec<SwingSegment> {
        let mut s = StreamingSwing::new(eps);
        let mut out = Vec::new();
        for &v in values {
            if let Emit::Segment(seg) = s.push(v) {
                out.push(seg);
            }
        }
        out.extend(s.finish());
        out
    }

    #[test]
    fn streaming_pmc_matches_batch() {
        let series = generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(3_000));
        for eps in [0.01, 0.1, 0.4] {
            let streamed = drain_pmc(series.values(), eps);
            let batch = crate::pmc::segment_values(series.values(), eps);
            assert_eq!(streamed, batch, "eps {eps}");
        }
    }

    #[test]
    fn streaming_swing_matches_batch() {
        let series = generate_univariate(DatasetKind::Solar, GenOptions::with_len(3_000));
        for eps in [0.01, 0.1, 0.4] {
            let streamed = drain_swing(series.values(), eps);
            let batch = crate::swing::segment_values(series.values(), eps);
            assert_eq!(streamed, batch, "eps {eps}");
        }
    }

    #[test]
    fn segments_cover_the_stream() {
        let series = generate_univariate(DatasetKind::Wind, GenOptions::with_len(2_000));
        let segs = drain_pmc(series.values(), 0.1);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 2_000);
        let segs = drain_swing(series.values(), 0.1);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 2_000);
    }

    #[test]
    fn pending_len_tracks_open_window() {
        let mut s = StreamingPmc::new(0.5);
        assert_eq!(s.pending_len(), 0);
        s.push(10.0);
        s.push(10.1);
        assert_eq!(s.pending_len(), 2);
        let mut w = StreamingSwing::new(0.5);
        w.push(1.0);
        w.push(2.0);
        assert_eq!(w.pending_len(), 2);
    }

    #[test]
    fn empty_stream_finishes_empty() {
        assert!(StreamingPmc::new(0.1).finish().is_none());
        assert!(StreamingSwing::new(0.1).finish().is_none());
    }

    #[test]
    fn long_constant_stream_respects_u16_cap() {
        let mut s = StreamingPmc::new(0.1);
        let mut segments = 0;
        for _ in 0..200_000 {
            if let Emit::Segment(seg) = s.push(5.0) {
                assert!(seg.len <= u16::MAX as usize);
                segments += 1;
            }
        }
        assert!(segments >= 3, "u16 cap should have forced cuts: {segments}");
    }
}
