//! A DEFLATE-style lossless codec: LZ77 with hash-chain matching followed by
//! canonical Huffman coding of literal/length and distance symbols.
//!
//! This is the repo's stand-in for gzip. The paper (§3.2) gzips the
//! compressed representations of PMC and Swing "since SZ applies gzip as the
//! final step", and also gzips the raw dataset to obtain the Eq. 3 sizes.
//! gzip's payload *is* DEFLATE; we re-implement the algorithm rather than
//! pulling in a compression dependency (DESIGN.md §1). The container framing
//! is our own (mode byte + length), not RFC 1951 bit-exact, but the
//! compression behaviour — LZ77 window, 3..258 match lengths, Huffman over
//! the DEFLATE alphabets — matches.

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman::{CanonicalCode, HuffmanError};
use crate::reader::ByteReader;

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeflateError {
    /// The input is shorter than its header claims.
    Truncated,
    /// Unknown mode byte.
    BadMode(u8),
    /// Entropy decoding failed.
    Huffman(HuffmanError),
    /// A back-reference pointed before the start of output.
    BadDistance { dist: usize, have: usize },
    /// Decoded length does not match the header.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for DeflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeflateError::Truncated => write!(f, "deflate stream truncated"),
            DeflateError::BadMode(m) => write!(f, "unknown deflate mode byte {m}"),
            DeflateError::Huffman(e) => write!(f, "huffman error: {e}"),
            DeflateError::BadDistance { dist, have } => {
                write!(f, "back-reference distance {dist} exceeds output size {have}")
            }
            DeflateError::LengthMismatch { expected, got } => {
                write!(f, "decoded {got} bytes, header said {expected}")
            }
        }
    }
}

impl std::error::Error for DeflateError {}

impl From<HuffmanError> for DeflateError {
    fn from(e: HuffmanError) -> Self {
        DeflateError::Huffman(e)
    }
}

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: usize = 15;
const CHAIN_LIMIT: usize = 96;
const EOB: usize = 256;
const NUM_LIT_LEN: usize = 286;
const NUM_DIST: usize = 30;

/// DEFLATE length codes: (symbol - 257) -> (base_length, extra_bits).
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// DEFLATE distance codes: symbol -> (base_distance, extra_bits).
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn length_symbol(len: usize) -> (usize, u16, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let mut i = LEN_TABLE.len() - 1;
    while LEN_TABLE[i].0 as usize > len {
        i -= 1;
    }
    (257 + i, LEN_TABLE[i].0, LEN_TABLE[i].1)
}

fn distance_symbol(dist: usize) -> (usize, u16, u8) {
    debug_assert!((1..=WINDOW).contains(&dist));
    let mut i = DIST_TABLE.len() - 1;
    while DIST_TABLE[i].0 as usize > dist {
        i -= 1;
    }
    (i, DIST_TABLE[i].0, DIST_TABLE[i].1)
}

#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

fn hash(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(506_832_829)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(2_654_435_761))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(2_246_822_519));
    (h >> (32 - HASH_BITS)) as usize
}

/// Greedy LZ77 tokenization with hash chains.
fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    // Literal-heavy inputs produce close to one token per byte, matches
    // far fewer; half-and-half keeps reallocation to one doubling.
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0;
    let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, data: &[u8], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash(data, pos);
            prev[pos] = head[h];
            head[h] = pos;
        }
    };
    while i < n {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= n {
            let h = hash(data, i);
            let mut cand = head[h];
            let mut chains = 0;
            let limit = (n - i).min(MAX_MATCH);
            while cand != usize::MAX && chains < CHAIN_LIMIT {
                let dist = i - cand;
                if dist > WINDOW {
                    break;
                }
                // Extend match.
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chains += 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match { len: best_len, dist: best_dist });
            for k in 0..best_len {
                insert(&mut head, &mut prev, data, i + k);
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            insert(&mut head, &mut prev, data, i);
            i += 1;
        }
    }
    tokens
}

/// Compresses `data`. Falls back to a stored block when entropy coding does
/// not help (e.g. incompressible input).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = tokenize(data);

    // Gather symbol frequencies.
    let mut lit_freq = vec![0u64; NUM_LIT_LEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_symbol(len).0] += 1;
                dist_freq[distance_symbol(dist).0] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;

    let lit_code = CanonicalCode::from_freqs(&lit_freq).expect("EOB guarantees a symbol");
    // Distance alphabet may be empty (no matches) — use a dummy 1-symbol code.
    let dist_code = if dist_freq.iter().any(|&f| f > 0) {
        CanonicalCode::from_freqs(&dist_freq).expect("checked nonzero")
    } else {
        let mut f = vec![0u64; NUM_DIST];
        f[0] = 1;
        CanonicalCode::from_freqs(&f).expect("one symbol")
    };

    // Two 4-bit length tables plus ~9–12 bits per token.
    let mut w = BitWriter::with_capacity((NUM_LIT_LEN + NUM_DIST) * 4 + tokens.len() * 12);
    // Header: code lengths, 4 bits each.
    lit_code.write_lengths4(&mut w);
    dist_code.write_lengths4(&mut w);
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_code.encode(b as usize, &mut w),
            Token::Match { len, dist } => {
                let (sym, base, extra) = length_symbol(len);
                lit_code.encode(sym, &mut w);
                w.write_bits((len - base as usize) as u64, extra);
                let (dsym, dbase, dextra) = distance_symbol(dist);
                dist_code.encode(dsym, &mut w);
                w.write_bits((dist - dbase as usize) as u64, dextra);
            }
        }
    }
    lit_code.encode(EOB, &mut w);
    let payload = w.into_bytes();

    let mut out = Vec::with_capacity(payload.len() + 5);
    if payload.len() >= data.len() {
        out.push(0); // stored
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(data);
    } else {
        out.push(1); // huffman
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DeflateError> {
    let mut hdr = ByteReader::new(input);
    let mode = hdr.read_u8().map_err(|_| DeflateError::Truncated)?;
    let expected = hdr.read_u32_le().map_err(|_| DeflateError::Truncated)? as usize;
    let body = hdr.rest();
    match mode {
        0 => {
            if body.len() < expected {
                return Err(DeflateError::Truncated);
            }
            Ok(body[..expected].to_vec())
        }
        1 => {
            let mut r = BitReader::new(body);
            let lit_code = CanonicalCode::read_lengths4(&mut r, NUM_LIT_LEN)?;
            let dist_code = CanonicalCode::read_lengths4(&mut r, NUM_DIST)?;
            // A match token costs ≥ 2 bits and emits ≤ 258 bytes, so an
            // honest stream expands ≤ 1032x: cap the preallocation so a
            // tampered length field cannot reserve gigabytes up front.
            let plausible = body.len().saturating_mul(1032).saturating_add(16);
            let mut out = Vec::with_capacity(expected.min(plausible));
            loop {
                if out.len() > expected {
                    // Already past the promised size — stop before a
                    // hostile stream makes us materialize it all.
                    return Err(DeflateError::LengthMismatch { expected, got: out.len() });
                }
                let sym = lit_code.decode(&mut r)?;
                if sym == EOB {
                    break;
                }
                if sym < 256 {
                    out.push(sym as u8);
                } else {
                    let (base, extra) = LEN_TABLE[sym - 257];
                    let len = base as usize
                        + r.read_bits(extra).map_err(|_| DeflateError::Truncated)? as usize;
                    let dsym = dist_code.decode(&mut r)?;
                    let (dbase, dextra) = DIST_TABLE[dsym];
                    let dist = dbase as usize
                        + r.read_bits(dextra).map_err(|_| DeflateError::Truncated)? as usize;
                    if dist == 0 || dist > out.len() {
                        return Err(DeflateError::BadDistance { dist, have: out.len() });
                    }
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
            if out.len() != expected {
                return Err(DeflateError::LengthMismatch { expected, got: out.len() });
            }
            Ok(out)
        }
        m => Err(DeflateError::BadMode(m)),
    }
}

/// Size in bytes after compression (the paper's ".gz file size").
pub fn compressed_size(data: &[u8]) -> usize {
    compress(data).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data: Vec<u8> = b"the quick brown fox ".repeat(500);
        let c = compress(&data);
        assert!(c.len() < data.len() / 10, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn constant_bytes_compress_extremely() {
        let data = vec![42u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 1000, "constant run compressed to {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        // High-entropy data from a simple xorshift.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + 5);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_matches_cross_thresholds() {
        // Exercise every length bucket including 258.
        let mut data = Vec::new();
        for rep in [3usize, 10, 30, 130, 258, 300, 1000] {
            data.extend(std::iter::repeat_n(b'x', rep));
            data.extend_from_slice(b"SEP");
            data.extend((0..16u8).map(|i| i.wrapping_mul(37)));
        }
        roundtrip(&data);
    }

    #[test]
    fn distant_backreferences() {
        // A repeated phrase separated by > 16 KiB of filler.
        let mut data = Vec::new();
        data.extend_from_slice(b"needle-needle-needle");
        for i in 0..20_000u32 {
            data.push((i % 251) as u8);
        }
        data.extend_from_slice(b"needle-needle-needle");
        roundtrip(&data);
    }

    #[test]
    fn float_series_compress() {
        // The actual workload: little-endian f64 streams.
        let vals: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.01).sin() * 10.0).collect();
        let mut data = Vec::new();
        for v in vals {
            data.extend_from_slice(&v.to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(decompress(&[1, 0, 0]).unwrap_err(), DeflateError::Truncated);
        let c = compress(b"hello world hello world hello world");
        let cut = &c[..c.len() - 1];
        // Either truncated or length mismatch depending on where the cut is.
        assert!(decompress(cut).is_err());
    }

    #[test]
    fn bad_mode_rejected() {
        assert_eq!(decompress(&[7, 0, 0, 0, 0]).unwrap_err(), DeflateError::BadMode(7));
    }

    #[test]
    fn length_symbol_buckets() {
        assert_eq!(length_symbol(3).0, 257);
        assert_eq!(length_symbol(10).0, 264);
        assert_eq!(length_symbol(258).0, 285);
        assert_eq!(distance_symbol(1).0, 0);
        assert_eq!(distance_symbol(24577).0, 29);
        assert_eq!(distance_symbol(32768).0, 29);
    }

    #[test]
    fn constant_coefficient_stream_beats_pair_stream() {
        // The paper's PMC-vs-Swing CR argument: constant-value segment
        // streams gzip better than slope/intercept pair streams. Verify our
        // codec reproduces that.
        let constants: Vec<u8> = (0..1000).flat_map(|_| 13.25f64.to_le_bytes()).collect();
        let pairs: Vec<u8> = (0..500)
            .flat_map(|i| {
                let slope = (i as f64) * 1e-4 + 0.123;
                let intercept = (i as f64).sin() * 5.0;
                let mut v = slope.to_le_bytes().to_vec();
                v.extend_from_slice(&intercept.to_le_bytes());
                v
            })
            .collect();
        assert_eq!(constants.len(), pairs.len());
        assert!(compressed_size(&constants) < compressed_size(&pairs));
    }
}
