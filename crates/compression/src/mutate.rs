//! Deterministic corpus mutation for the decode-totality fuzz harness.
//!
//! The workspace has no fuzzer dependency (hermetic build), so this module
//! provides the next best thing: a seeded, reproducible stream of hostile
//! byte buffers derived from *valid* encoded corpora. Every mutation a
//! seed produces is a pure function of that seed, so a failure reported by
//! CI (`tests/fuzz_decode.rs`, `evalcore`'s artifact fuzz) replays locally
//! from the seed alone.
//!
//! The mutation classes mirror how checkpoint bytes actually go bad in
//! production — torn writes (truncation), bit rot (bit flips), buggy
//! writers (length-field tampering) — plus cross-codec splicing, which
//! feeds one codec's valid output into another codec's decoder.

/// A 64-bit linear congruential generator (Knuth's MMIX multiplier).
///
/// Not statistically strong, deliberately: it is tiny, dependency-free,
/// and — unlike `rand` — identical on every platform and toolchain, which
/// is what makes the fuzz suite's CI seed sweep reproducible.
#[derive(Debug, Clone)]
pub struct Lcg64 {
    state: u64,
}

impl Lcg64 {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // Scramble the seed so small seeds do not start in a low-entropy
        // regime of the LCG.
        Lcg64 { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // The high bits of an LCG are the strong ones; fold them down.
        self.state ^ (self.state >> 33)
    }

    /// Uniform value in `0..bound` (`bound` = 0 returns 0).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }
}

/// The mutation classes the harness sweeps. `Splice` needs a second
/// corpus buffer, so [`mutate`] takes the whole corpus and picks donors
/// itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop a random-length tail (torn read / partial write).
    Truncate,
    /// Flip 1–8 random bits (bit rot).
    BitFlip,
    /// Overwrite a random aligned 4-byte window with an extreme LE value
    /// (length-field tampering: huge counts, zero counts, sign garbage).
    LengthTamper,
    /// Replace a random span with a span from another corpus entry
    /// (cross-codec / cross-version splicing).
    Splice,
    /// Overwrite a random span with random bytes (general corruption).
    Scramble,
}

/// All mutation classes, in sweep order.
pub const ALL_MUTATIONS: [Mutation; 5] = [
    Mutation::Truncate,
    Mutation::BitFlip,
    Mutation::LengthTamper,
    Mutation::Splice,
    Mutation::Scramble,
];

/// Extreme 32-bit values to plant in length fields: the decoder must
/// neither panic nor allocate proportionally to them.
const TAMPER_VALUES: [u32; 6] = [u32::MAX, u32::MAX - 1, 0x7FFF_FFFF, 0x0100_0000, 0, 1];

/// Produces one mutated buffer from `corpus[target]` using `rng`.
///
/// The result is never byte-identical to the source unless the corpus
/// entry is empty. `corpus` must be non-empty; `target` is an index into
/// it.
pub fn mutate(corpus: &[Vec<u8>], target: usize, kind: Mutation, rng: &mut Lcg64) -> Vec<u8> {
    let mut buf = corpus[target].clone();
    match kind {
        Mutation::Truncate => {
            let keep = rng.below(buf.len() + 1).saturating_sub(1);
            buf.truncate(keep);
        }
        Mutation::BitFlip => {
            if !buf.is_empty() {
                for _ in 0..1 + rng.below(8) {
                    let bit = rng.below(buf.len() * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
            }
        }
        Mutation::LengthTamper => {
            if buf.len() >= 4 {
                let at = rng.below(buf.len() - 3);
                let v = TAMPER_VALUES[rng.below(TAMPER_VALUES.len())];
                buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
            } else {
                buf.extend_from_slice(&u32::MAX.to_le_bytes());
            }
        }
        Mutation::Splice => {
            let donor = &corpus[rng.below(corpus.len())];
            if donor.is_empty() || buf.is_empty() {
                buf.extend_from_slice(donor);
            } else {
                let cut = rng.below(buf.len());
                let from = rng.below(donor.len());
                buf.truncate(cut);
                buf.extend_from_slice(&donor[from..]);
            }
        }
        Mutation::Scramble => {
            if buf.is_empty() {
                buf.extend((0..4 + rng.below(32)).map(|_| rng.byte()));
            } else {
                let at = rng.below(buf.len());
                let len = (1 + rng.below(16)).min(buf.len() - at);
                for b in &mut buf[at..at + len] {
                    *b = rng.byte();
                }
            }
        }
    }
    buf
}

/// Runs `check` over `rounds` mutations per corpus entry per mutation
/// class, deterministically from `seed`. `check` receives the mutated
/// bytes and a human-readable case label to embed in assertion messages.
/// Returns the total number of mutated buffers exercised.
pub fn sweep(
    corpus: &[Vec<u8>],
    seed: u64,
    rounds: usize,
    mut check: impl FnMut(&[u8], &str),
) -> usize {
    let mut rng = Lcg64::new(seed);
    let mut total = 0;
    for kind in ALL_MUTATIONS {
        for target in 0..corpus.len() {
            for round in 0..rounds {
                let buf = mutate(corpus, target, kind, &mut rng);
                let label = format!("seed={seed} kind={kind:?} target={target} round={round}");
                check(&buf, &label);
                total += 1;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_covers_bytes() {
        let a: Vec<u64> = {
            let mut r = Lcg64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Lcg64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = Lcg64::new(7);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[r.byte() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every byte value reachable");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Lcg64::new(1);
        for bound in [1usize, 2, 7, 100] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn mutations_are_reproducible() {
        let corpus = vec![vec![1u8; 64], (0..128u8).collect()];
        for kind in ALL_MUTATIONS {
            let x = mutate(&corpus, 0, kind, &mut Lcg64::new(99));
            let y = mutate(&corpus, 0, kind, &mut Lcg64::new(99));
            assert_eq!(x, y, "{kind:?} must be a pure function of the seed");
        }
    }

    #[test]
    fn truncate_shortens_and_tamper_plants_extremes() {
        let corpus = vec![vec![0xAAu8; 100]];
        let mut rng = Lcg64::new(3);
        let t = mutate(&corpus, 0, Mutation::Truncate, &mut rng);
        assert!(t.len() < 100);
        let mut planted = false;
        for round in 0..50 {
            let m = mutate(&corpus, 0, Mutation::LengthTamper, &mut Lcg64::new(round));
            assert_eq!(m.len(), 100);
            planted |= m.windows(4).any(|w| w == u32::MAX.to_le_bytes());
        }
        assert!(planted, "the extreme-count value must appear in the sweep");
    }

    #[test]
    fn sweep_counts_cases() {
        let corpus = vec![vec![1u8; 32], vec![2u8; 32], vec![3u8; 32]];
        let mut calls = 0;
        let total = sweep(&corpus, 11, 4, |buf, label| {
            calls += 1;
            assert!(!label.is_empty());
            let _ = buf;
        });
        assert_eq!(total, ALL_MUTATIONS.len() * corpus.len() * 4);
        assert_eq!(calls, total);
    }
}
