//! CRC32 (IEEE 802.3) — the integrity checksum shared by the artifact
//! format in `evalcore` and the store's chunk headers.
//!
//! The table is built at compile time from the reflected polynomial
//! `0xEDB88320`, so the per-byte loop is a single table lookup and shift.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"chunk payload bytes".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() * 8 {
            let mut tampered = data.clone();
            tampered[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&tampered), base, "bit {i}");
        }
    }
}
