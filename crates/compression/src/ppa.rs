//! PPA — Piecewise Polynomial Approximation (Eichinger et al., VLDB J.
//! 2015), the related-work compressor the paper cites twice: §3.2 argues
//! that "PMC and SWING learn constant and linear approximations which have
//! been shown to represent time series more efficiently than higher-level
//! polynomials \[10\]", and §6.3 describes PPA's own forecasting study.
//!
//! Implementing PPA lets the repo *test* that claim (see the
//! `ppa_vs_low_degree` ablation test below and `benches/ablations.rs`):
//! a quadratic needs three coefficients per segment, so — like Swing's two
//! — the per-segment overhead usually outweighs the longer segments.
//!
//! Greedy online algorithm: grow a window, refit the least-squares
//! polynomial of the configured degree from running moments, and close the
//! window (without the newest point) when the refit polynomial can no
//! longer satisfy every point's relative bound.

use tsdata::series::RegularTimeSeries;

use crate::codec::{check_epsilon, point_bound, CodecError, CompressedSeries, PeblcCompressor};
use crate::deflate;
use crate::reader::ByteReader;
use crate::timestamps;

/// Maximum window length the greedy fitter grows before forcing a cut
/// (bounds the O(window) revalidation cost).
const MAX_SEGMENT: usize = 512;

/// The PPA compressor with polynomial degree ≤ 2.
#[derive(Debug, Clone, Copy)]
pub struct Ppa {
    /// Polynomial degree: 0 (constant), 1 (linear) or 2 (quadratic).
    pub degree: usize,
}

impl Default for Ppa {
    fn default() -> Self {
        Ppa { degree: 2 }
    }
}

/// One PPA segment: `v̂(i) = c0 + c1·i + c2·i²` over `len` points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaSegment {
    /// Points covered.
    pub len: usize,
    /// Polynomial coefficients (low order first).
    pub coeffs: [f64; 3],
}

impl PpaSegment {
    /// Reconstructs the segment's values.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| {
            let x = i as f64;
            self.coeffs[0] + self.coeffs[1] * x + self.coeffs[2] * x * x
        })
    }
}

/// Least-squares polynomial fit of `values` at abscissae `0..n`, degree
/// capped by sample count. Returns `[c0, c1, c2]`.
fn fit_poly(values: &[f64], degree: usize) -> [f64; 3] {
    let n = values.len();
    let d = degree.min(2).min(n.saturating_sub(1));
    match d {
        0 => [values.iter().sum::<f64>() / n as f64, 0.0, 0.0],
        _ => {
            // Normal equations over the monomial basis (window lengths are
            // capped, so conditioning is acceptable in f64).
            let cols = d + 1;
            let mut ata = [[0.0f64; 3]; 3];
            let mut aty = [0.0f64; 3];
            for (i, &y) in values.iter().enumerate() {
                let x = i as f64;
                let basis = [1.0, x, x * x];
                for r in 0..cols {
                    aty[r] += basis[r] * y;
                    for c in 0..cols {
                        ata[r][c] += basis[r] * basis[c];
                    }
                }
            }
            // Tiny Gaussian elimination (cols <= 3).
            let mut m = [[0.0f64; 4]; 3];
            for r in 0..cols {
                m[r][..cols].copy_from_slice(&ata[r][..cols]);
                m[r][3] = aty[r];
            }
            for col in 0..cols {
                let mut pivot = col;
                for r in col + 1..cols {
                    if m[r][col].abs() > m[pivot][col].abs() {
                        pivot = r;
                    }
                }
                m.swap(col, pivot);
                if m[col][col].abs() < 1e-12 {
                    return [values.iter().sum::<f64>() / n as f64, 0.0, 0.0];
                }
                let prow = m[col];
                for row in m.iter_mut().take(cols).skip(col + 1) {
                    let f = row[col] / prow[col];
                    for (v, &p) in row[col..4].iter_mut().zip(&prow[col..4]) {
                        *v -= f * p;
                    }
                }
            }
            let mut out = [0.0f64; 3];
            for r in (0..cols).rev() {
                let mut s = m[r][3];
                for c in r + 1..cols {
                    s -= m[r][c] * out[c];
                }
                out[r] = s / m[r][r];
            }
            out
        }
    }
}

/// Whether the polynomial (after f32 coefficient rounding) satisfies every
/// point's relative bound.
fn poly_fits(values: &[f64], coeffs: &[f64; 3], epsilon: f64) -> bool {
    let c = [coeffs[0] as f32 as f64, coeffs[1] as f32 as f64, coeffs[2] as f32 as f64];
    values.iter().enumerate().all(|(i, &v)| {
        let x = i as f64;
        let p = c[0] + c[1] * x + c[2] * x * x;
        (p - v).abs() <= point_bound(v, epsilon)
    })
}

/// Runs the PPA windowing, returning segments.
pub fn segment_values(values: &[f64], epsilon: f64, degree: usize) -> Vec<PpaSegment> {
    let mut segments = Vec::new();
    let mut start = 0usize;
    let mut last_good: Option<[f64; 3]> = None;
    let mut i = 0usize;
    while i < values.len() {
        let window = &values[start..=i];
        let coeffs = fit_poly(window, degree);
        let len = window.len();
        if len <= MAX_SEGMENT && poly_fits(window, &coeffs, epsilon) {
            last_good = Some(coeffs);
            i += 1;
        } else {
            // Close without the newest point.
            let seg_len = i - start;
            match last_good.take() {
                Some(coeffs) if seg_len > 0 => {
                    segments.push(PpaSegment { len: seg_len, coeffs });
                    start = i;
                }
                _ => {
                    // The single point itself does not fit (e.g. a zero):
                    // store it verbatim as a constant segment.
                    segments.push(PpaSegment { len: 1, coeffs: [values[start], 0.0, 0.0] });
                    start += 1;
                    i = i.max(start);
                }
            }
        }
    }
    if let Some(coeffs) = last_good {
        let seg_len = values.len() - start;
        if seg_len > 0 {
            segments.push(PpaSegment { len: seg_len, coeffs });
        }
    }
    segments
}

impl PeblcCompressor for Ppa {
    fn name(&self) -> &'static str {
        "PPA"
    }

    fn compress(
        &self,
        series: &RegularTimeSeries,
        epsilon: f64,
    ) -> Result<CompressedSeries, CodecError> {
        check_epsilon(epsilon)?;
        let segments = segment_values(series.values(), epsilon, self.degree);
        let mut inner = timestamps::try_encode_header(series.start(), series.interval())?;
        inner.push(self.degree.min(2) as u8);
        inner.extend_from_slice(&(segments.len() as u32).to_le_bytes());
        for seg in &segments {
            // Windows are capped at MAX_SEGMENT < u16::MAX, so the length
            // always fits.
            inner.extend_from_slice(&(seg.len as u16).to_le_bytes());
            for c in 0..=self.degree.min(2) {
                inner.extend_from_slice(&(seg.coeffs[c] as f32).to_le_bytes());
            }
        }
        Ok(CompressedSeries {
            method: self.name(),
            bytes: deflate::compress(&inner),
            num_segments: segments.len(),
        })
    }

    fn decompress(&self, compressed: &CompressedSeries) -> Result<RegularTimeSeries, CodecError> {
        let inner = deflate::decompress(&compressed.bytes)?;
        let mut r = ByteReader::new(&inner);
        let (start, interval) = timestamps::read_header(&mut r)?;
        let degree = r.read_u8()? as usize;
        if degree > 2 {
            return Err(CodecError::Corrupt(format!("bad PPA degree {degree}")));
        }
        let n_seg = r.read_u32_le()? as usize;
        let rec = 2 + 4 * (degree + 1);
        // Each segment costs `rec` bytes; a tampered count cannot demand
        // more segments than the remaining input can hold.
        if n_seg > r.bounded_capacity(n_seg, rec) {
            return Err(CodecError::Corrupt(format!(
                "segment count {n_seg} exceeds the {} remaining bytes",
                r.remaining()
            )));
        }
        // Fixed `rec`-byte records: pre-scan the length fields to size the
        // output exactly (clamped against hostile lengths).
        let rest = r.rest();
        let total: usize = (0..n_seg)
            .map(|i| u16::from_le_bytes([rest[rec * i], rest[rec * i + 1]]) as usize)
            .sum();
        let mut values = Vec::with_capacity(total.min(1 << 20));
        for _ in 0..n_seg {
            let len = r.read_u16_le()? as usize;
            let mut coeffs = [0.0f64; 3];
            for coeff in coeffs.iter_mut().take(degree + 1) {
                *coeff = r.read_f32_le()? as f64;
            }
            values.extend(PpaSegment { len, coeffs }.values());
        }
        Ok(RegularTimeSeries::new(start, interval, values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::find_bound_violation;

    fn series(values: Vec<f64>) -> RegularTimeSeries {
        RegularTimeSeries::new(0, 60, values).unwrap()
    }

    #[test]
    fn quadratic_fits_parabola_in_one_segment() {
        let vals: Vec<f64> = (0..200).map(|i| 100.0 + 0.01 * (i * i) as f64).collect();
        let segs = segment_values(&vals, 0.01, 2);
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert!((segs[0].coeffs[2] - 0.01).abs() < 1e-3);
    }

    #[test]
    fn degree_zero_matches_constant_behavior() {
        let segs = segment_values(&[5.0; 50], 0.01, 0);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].coeffs[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        let vals: Vec<f64> = (0..3000)
            .map(|i| 30.0 + (i as f64 * 0.02).sin() * 10.0 + ((i * 7) % 5) as f64 * 0.05)
            .collect();
        for degree in [0usize, 1, 2] {
            let ppa = Ppa { degree };
            for eps in [0.02, 0.1, 0.4] {
                let (d, _) = ppa.transform(&series(vals.clone()), eps).unwrap();
                assert!(
                    find_bound_violation(&vals, d.values(), eps, 1e-9).is_none(),
                    "degree {degree} eps {eps} violated"
                );
            }
        }
    }

    #[test]
    fn exact_zeros_preserved() {
        let vals = vec![0.0, 0.0, 3.0, 4.0, 0.0, 5.0];
        let (d, _) = Ppa::default().transform(&series(vals.clone()), 0.3).unwrap();
        assert_eq!(d.values()[0], 0.0);
        assert_eq!(d.values()[4], 0.0);
        assert!(find_bound_violation(&vals, d.values(), 0.3, 1e-9).is_none());
    }

    #[test]
    fn fewer_segments_than_swing_on_curved_data() {
        // A quadratic-degree model should need fewer segments than a
        // linear one on curvy data...
        let vals: Vec<f64> = (0..4000).map(|i| 50.0 + 20.0 * (i as f64 * 0.01).sin()).collect();
        let ppa = segment_values(&vals, 0.05, 2).len();
        let swing = crate::swing::segment_values(&vals, 0.05).len();
        assert!(ppa < swing, "ppa {ppa} vs swing {swing}");
    }

    #[test]
    fn ppa_vs_low_degree_storage_tradeoff() {
        // ...but the paper's §3.2 claim is about STORAGE: despite longer
        // segments, three coefficients per segment generally lose to PMC's
        // one after the lossless pass on realistic data.
        let s = tsdata::datasets::generate_univariate(
            tsdata::datasets::DatasetKind::ETTm1,
            tsdata::datasets::GenOptions::with_len(6_000),
        );
        let pmc = crate::pmc::Pmc.compress(&s, 0.2).unwrap().size_bytes();
        let ppa = Ppa::default().compress(&s, 0.2).unwrap().size_bytes();
        assert!(pmc < ppa, "PMC ({pmc} B) should store ETTm1 more compactly than PPA ({ppa} B)");
    }

    #[test]
    fn long_series_segment_cap() {
        let vals = vec![7.0; 5000];
        let segs = segment_values(&vals, 0.1, 2);
        assert!(segs.iter().all(|s| s.len <= MAX_SEGMENT));
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 5000);
    }

    #[test]
    fn corrupt_buffer_rejected() {
        let c = Ppa::default().compress(&series(vec![1.0, 2.0, 3.0]), 0.1).unwrap();
        let truncated = CompressedSeries {
            method: "PPA",
            bytes: deflate::compress(&[1, 2, 3]),
            num_segments: 0,
        };
        assert!(Ppa::default().decompress(&truncated).is_err());
        let d = Ppa::default().decompress(&c).unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn timestamps_roundtrip() {
        let s = RegularTimeSeries::new(123, 900, vec![4.0, 5.0, 6.0]).unwrap();
        let (d, _) = Ppa::default().transform(&s, 0.1).unwrap();
        assert_eq!(d.start(), 123);
        assert_eq!(d.interval(), 900);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        assert!(Ppa::default().compress(&series(vec![1.0]), f64::NAN).is_err());
    }
}
