//! PMC-Mean (Poor Man's Compression; Lazaridis & Mehrotra, ICDE 2003) with a
//! relative pointwise error bound.
//!
//! The algorithm grows an adaptive window, maintaining the running mean of
//! its points. A point `v_i` admits a representative `m` iff
//! `|m - v_i| <= eps * |v_i|`, i.e. `m` lies in
//! `[v_i - b_i, v_i + b_i]` with `b_i = eps * |v_i|`. The window therefore
//! stays open while the running mean lies inside the intersection of all
//! per-point intervals; when adding a point would empty the intersection or
//! push the mean outside it, the window *without the latest point* becomes a
//! segment represented by its mean (paper §3.2).
//!
//! Segments are serialized as `(length: u16, mean: f64)` after the shared
//! timestamp header, then passed through the DEFLATE layer (the gzip step
//! of §3.2). Constant-value segments are exactly what makes PMC's stream
//! respond so well to that final lossless pass (paper §4.2).

use tsdata::series::RegularTimeSeries;

use crate::codec::{
    check_epsilon, point_bound, shortest_decimal_in, CodecError, CompressedSeries, PeblcCompressor,
};
use crate::deflate;
use crate::reader::ByteReader;
use crate::timestamps;

/// The PMC-Mean compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pmc;

/// A decoded PMC segment (exposed for Figure 1 style inspection and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmcSegment {
    /// Number of points the segment covers.
    pub len: usize,
    /// The constant value representing every point.
    pub value: f64,
}

/// Which representative a closed window stores (the DESIGN.md §5 PMC
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representative {
    /// The exact window mean (the original PMC-Mean).
    Mean,
    /// The midrange of the constraint interval (PMC-Midrange).
    Midrange,
    /// The most compressible round decimal near the mean (this crate's
    /// default; see `codec::shortest_decimal_in`).
    Snapped,
}

/// Runs the PMC windowing with an explicit representative policy.
pub fn segment_values_repr(values: &[f64], epsilon: f64, repr: Representative) -> Vec<PmcSegment> {
    segment_values_impl(values, epsilon, repr)
}

/// Runs the PMC-Mean windowing on raw values, returning segments with the
/// default (snapped) representative.
pub fn segment_values(values: &[f64], epsilon: f64) -> Vec<PmcSegment> {
    segment_values_impl(values, epsilon, Representative::Snapped)
}

fn segment_values_impl(values: &[f64], epsilon: f64, repr: Representative) -> Vec<PmcSegment> {
    let mut segments = Vec::new();
    // Intersection of allowed intervals and running sum for the open window.
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut mean = 0.0;

    for &v in values.iter() {
        let b = point_bound(v, epsilon);
        let nlo = lo.max(v - b);
        let nhi = hi.min(v + b);
        let nsum = sum + v;
        let ncount = count + 1;
        let nmean = nsum / ncount as f64;
        if nlo <= nhi && nmean >= nlo && nmean <= nhi {
            // Window absorbs the point.
            lo = nlo;
            hi = nhi;
            sum = nsum;
            count = ncount;
            mean = nmean;
        } else {
            // Close the window without the latest point. The mean is
            // guaranteed to lie in [lo, hi]; the stored representative is
            // the most compressible value near the mean (see
            // `codec::shortest_decimal_in`).
            segments.push(PmcSegment { len: count, value: representative(lo, hi, mean, repr) });
            lo = v - b;
            hi = v + b;
            sum = v;
            count = 1;
            mean = v;
        }
    }
    if count > 0 {
        segments.push(PmcSegment { len: count, value: representative(lo, hi, mean, repr) });
    }
    segments
}

fn representative(lo: f64, hi: f64, mean: f64, repr: Representative) -> f64 {
    match repr {
        Representative::Mean => mean,
        Representative::Midrange => {
            if lo.is_finite() && hi.is_finite() {
                (lo + hi) / 2.0
            } else {
                mean
            }
        }
        Representative::Snapped => snap_near_mean(lo, hi, mean),
    }
}

/// Snaps within the half of `[lo, hi]` centered on the mean, trading a
/// little of the allowed slack for a round (compressible) representative
/// while staying close to PMC-Mean's reconstruction error profile.
fn snap_near_mean(lo: f64, hi: f64, mean: f64) -> f64 {
    snap_near_mean_public(lo, hi, mean)
}

/// Crate-visible snapping used by the streaming compressor so its segments
/// match the batch output exactly.
pub(crate) fn snap_near_mean_public(lo: f64, hi: f64, mean: f64) -> f64 {
    let l = mean - 0.5 * (mean - lo).max(0.0);
    let h = mean + 0.5 * (hi - mean).max(0.0);
    shortest_decimal_in(l, h)
}

/// Serializes already-segmented PMC output into the deflated frame format
/// `Pmc::decompress` reads. `Pmc::compress` is `segment_values` followed by
/// this; the store re-encodes streamed segments through the same path so
/// its frames are byte-identical to the batch compressor's.
pub fn encode_segments(
    start: i64,
    interval: i64,
    segments: &[PmcSegment],
) -> Result<Vec<u8>, CodecError> {
    let mut inner = timestamps::try_encode_header(start, interval)?;
    // Count after 16-bit splitting so the stream is self-describing.
    let stored: Vec<(u16, f64)> = segments
        .iter()
        .flat_map(|s| timestamps::split_segment_len(s.len).map(move |l| (l, s.value)))
        .collect();
    inner.extend_from_slice(&(stored.len() as u32).to_le_bytes());
    for (len, value) in &stored {
        inner.extend_from_slice(&len.to_le_bytes());
        // Coefficients are single precision, as in ModelarDB (§3.2
        // "Implementations Used"); the rounding is covered by the
        // f32 allowance documented in `codec::find_bound_violation`.
        inner.extend_from_slice(&(*value as f32).to_le_bytes());
    }
    Ok(deflate::compress(&inner))
}

impl PeblcCompressor for Pmc {
    fn name(&self) -> &'static str {
        "PMC"
    }

    fn compress(
        &self,
        series: &RegularTimeSeries,
        epsilon: f64,
    ) -> Result<CompressedSeries, CodecError> {
        check_epsilon(epsilon)?;
        let segments = segment_values(series.values(), epsilon);
        Ok(CompressedSeries {
            method: self.name(),
            bytes: encode_segments(series.start(), series.interval(), &segments)?,
            num_segments: segments.len(),
        })
    }

    fn decompress(&self, compressed: &CompressedSeries) -> Result<RegularTimeSeries, CodecError> {
        let inner = deflate::decompress(&compressed.bytes)?;
        let mut r = ByteReader::new(&inner);
        let (start, interval) = timestamps::read_header(&mut r)?;
        let n_seg = r.read_u32_le()? as usize;
        // Each stored segment costs 6 bytes, so a tampered count cannot
        // reach the body of the loop past the honest record supply; the
        // explicit check turns the excess into a clean error.
        if n_seg > r.bounded_capacity(n_seg, 6) {
            return Err(CodecError::Corrupt(format!(
                "segment count {n_seg} exceeds the {} remaining bytes",
                r.remaining()
            )));
        }
        // Records are fixed-size, so one cheap pre-scan of the length
        // fields sizes the output exactly (clamped so hostile lengths
        // cannot demand a huge allocation up front).
        let rest = r.rest();
        let total: usize =
            (0..n_seg).map(|i| u16::from_le_bytes([rest[6 * i], rest[6 * i + 1]]) as usize).sum();
        let mut values = Vec::with_capacity(total.min(1 << 20));
        for _ in 0..n_seg {
            let len = r.read_u16_le()? as usize;
            let value = r.read_f32_le()? as f64;
            values.extend(std::iter::repeat_n(value, len));
        }
        Ok(RegularTimeSeries::new(start, interval, values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::find_bound_violation;

    fn series(values: Vec<f64>) -> RegularTimeSeries {
        RegularTimeSeries::new(0, 60, values).unwrap()
    }

    #[test]
    fn constant_series_is_one_segment() {
        let segs = segment_values(&[5.0; 100], 0.01);
        assert_eq!(segs, vec![PmcSegment { len: 100, value: 5.0 }]);
    }

    #[test]
    fn zero_epsilon_splits_on_change() {
        let segs = segment_values(&[1.0, 1.0, 2.0, 2.0, 2.0], 0.0);
        assert_eq!(
            segs,
            vec![PmcSegment { len: 2, value: 1.0 }, PmcSegment { len: 3, value: 2.0 }]
        );
    }

    #[test]
    fn mean_respects_all_points() {
        // values 10, 11 with eps 0.1: bounds [9,11] and [9.9,12.1];
        // the representative must lie in the intersection [9.9, 11].
        let segs = segment_values(&[10.0, 11.0], 0.1);
        assert_eq!(segs.len(), 1);
        assert!((9.9..=11.0).contains(&segs[0].value), "value {}", segs[0].value);
        // 10 then 13 with eps 0.1: intersection [11.7, 11.0] is empty -> split.
        let segs = segment_values(&[10.0, 13.0], 0.1);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn representative_is_round_decimal() {
        // Mean 10.5, allowed interval [9.9, 11]: the snapped half-interval
        // [10.2, 10.75] admits the one-decimal value 10.5.
        let segs = segment_values(&[10.0, 11.0], 0.1);
        assert_eq!(segs[0].value, 10.5);
        // A wide interval snaps to an integer.
        let segs = segment_values(&[100.0, 104.0], 0.3);
        assert_eq!(segs[0].value.fract(), 0.0, "value {}", segs[0].value);
    }

    #[test]
    fn exact_zeros_preserved() {
        // Solar night-time: relative bound at v=0 is 0, so zeros must be
        // reconstructed exactly.
        let vals = vec![0.0, 0.0, 0.0, 4.0, 5.0, 0.0, 0.0];
        let (d, _) = Pmc.transform(&series(vals.clone()), 0.5).unwrap();
        assert_eq!(d.values()[0], 0.0);
        assert_eq!(d.values()[5], 0.0);
        assert!(find_bound_violation(&vals, d.values(), 0.5, 1e-9).is_none());
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        let vals: Vec<f64> = (0..2000)
            .map(|i| 10.0 + (i as f64 * 0.05).sin() * 3.0 + (i % 7) as f64 * 0.1)
            .collect();
        for eps in [0.01, 0.1, 0.5] {
            let (d, c) = Pmc.transform(&series(vals.clone()), eps).unwrap();
            assert_eq!(d.len(), vals.len());
            assert!(
                find_bound_violation(&vals, d.values(), eps, 1e-9).is_none(),
                "bound violated at eps {eps}"
            );
            assert!(c.num_segments >= 1);
        }
    }

    #[test]
    fn higher_epsilon_fewer_segments() {
        let vals: Vec<f64> = (0..5000)
            .map(|i| 20.0 + (i as f64 * 0.01).sin() * 5.0 + ((i * 13) % 11) as f64 * 0.05)
            .collect();
        let s = series(vals);
        let segs: Vec<usize> = [0.01, 0.05, 0.2, 0.8]
            .iter()
            .map(|&e| Pmc.compress(&s, e).unwrap().num_segments)
            .collect();
        assert!(segs.windows(2).all(|w| w[0] >= w[1]), "{segs:?}");
        assert!(segs[0] > segs[3], "{segs:?}");
    }

    #[test]
    fn compression_ratio_improves_with_epsilon() {
        let vals: Vec<f64> = (0..5000).map(|i| 100.0 + (i as f64 * 0.02).sin() * 10.0).collect();
        let s = series(vals);
        let raw = crate::codec::raw_compressed_size(&s);
        let small = Pmc.compress(&s, 0.01).unwrap().size_bytes();
        let large = Pmc.compress(&s, 0.5).unwrap().size_bytes();
        assert!(large < small);
        assert!(raw > large, "raw gz {raw} should exceed PMC@0.5 {large}");
    }

    #[test]
    fn timestamps_roundtrip() {
        let s = RegularTimeSeries::new(1_000_000, 900, vec![1.0, 1.01, 1.02, 5.0]).unwrap();
        let (d, _) = Pmc.transform(&s, 0.05).unwrap();
        assert_eq!(d.start(), 1_000_000);
        assert_eq!(d.interval(), 900);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn negative_values_bounded_by_magnitude() {
        let vals = vec![-10.0, -10.5, -9.8, -10.2, 10.0];
        let (d, _) = Pmc.transform(&series(vals.clone()), 0.1).unwrap();
        assert!(find_bound_violation(&vals, d.values(), 0.1, 1e-9).is_none());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let s = series(vec![1.0, 2.0]);
        assert!(Pmc.compress(&s, -1.0).is_err());
        assert!(Pmc.compress(&s, f64::NAN).is_err());
    }

    #[test]
    fn corrupt_buffer_rejected() {
        let s = series(vec![1.0, 2.0, 3.0]);
        let mut c = Pmc.compress(&s, 0.1).unwrap();
        c.bytes = deflate::compress(&[0u8; 3]); // too short for header+count
        assert!(Pmc.decompress(&c).is_err());
    }

    #[test]
    fn long_segment_split_at_u16() {
        let vals = vec![7.0; 70_000];
        let (d, c) = Pmc.transform(&series(vals.clone()), 0.1).unwrap();
        assert_eq!(d.values(), &vals[..]);
        // one logical segment even though storage splits it
        assert_eq!(c.num_segments, 1);
    }
}
