//! Common interfaces for the pointwise error-bounded lossy compressors
//! (PEBLC, paper Definition 4) and the sizing rules of Eq. 3.
//!
//! All sizes follow §3.2: each compressor's representation (including the
//! shared timestamp header) is passed through the DEFLATE-style lossless
//! codec (the gzip stand-in), and the raw dataset size is the deflated size
//! of its binary representation. CR = raw `.gz` bytes / compressed `.gz`
//! bytes.

use tsdata::series::{RegularTimeSeries, SeriesError};

use crate::deflate;
use crate::timestamps::{self, TimestampError};

/// Errors from compressing or decompressing a series.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The compressed buffer is malformed.
    Corrupt(String),
    /// Timestamp header errors.
    Timestamps(TimestampError),
    /// Lossless layer errors.
    Deflate(deflate::DeflateError),
    /// Reconstructed series failed validation.
    Series(SeriesError),
    /// The requested error bound is not usable (negative or NaN).
    BadErrorBound(f64),
    /// A streamed segment hit the 16-bit length cap, forcing the online
    /// encoder to cut where the batch compressor would not — the streamed
    /// frame would no longer be byte-identical to the batch frame, so the
    /// caller gets an explicit error instead of silent divergence.
    SegmentCap {
        /// The codec whose encoder was forced to cut.
        method: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(msg) => write!(f, "corrupt compressed data: {msg}"),
            CodecError::Timestamps(e) => write!(f, "timestamp header: {e}"),
            CodecError::Deflate(e) => write!(f, "lossless layer: {e}"),
            CodecError::Series(e) => write!(f, "series reconstruction: {e}"),
            CodecError::BadErrorBound(e) => write!(f, "invalid error bound {e}"),
            CodecError::SegmentCap { method } => write!(
                f,
                "{method}: a segment hit the 16-bit length cap; \
                 streamed output would diverge from the batch frame"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<TimestampError> for CodecError {
    fn from(e: TimestampError) -> Self {
        CodecError::Timestamps(e)
    }
}

impl From<deflate::DeflateError> for CodecError {
    fn from(e: deflate::DeflateError) -> Self {
        CodecError::Deflate(e)
    }
}

impl From<SeriesError> for CodecError {
    fn from(e: SeriesError) -> Self {
        CodecError::Series(e)
    }
}

/// The output of a lossy (or lossless) compressor: the final on-disk bytes
/// (already passed through the lossless layer) plus bookkeeping the paper's
/// figures need.
#[derive(Debug, Clone)]
pub struct CompressedSeries {
    /// Compressor name ("PMC", "SWING", "SZ", "GORILLA").
    pub method: &'static str,
    /// Final bytes, i.e. the ".gz file" of §3.2.
    pub bytes: Vec<u8>,
    /// Number of segments the compressor produced (Figure 3). For SZ this
    /// is the number of blocks; for Gorilla it is 1.
    pub num_segments: usize,
}

impl CompressedSeries {
    /// Size in bytes of the final representation (numerator/denominator of
    /// Eq. 3).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }
}

/// A pointwise error-bounded lossy compressor with a *relative* error bound
/// (Definition 4): every decompressed value satisfies
/// `|v̂ - v| <= epsilon * |v|`.
pub trait PeblcCompressor: Send + Sync {
    /// Method name as printed in the paper.
    fn name(&self) -> &'static str;

    /// Compresses under relative bound `epsilon` (>= 0; 0 means lossless
    /// within float representation).
    fn compress(
        &self,
        series: &RegularTimeSeries,
        epsilon: f64,
    ) -> Result<CompressedSeries, CodecError>;

    /// Decompresses a buffer produced by this compressor.
    fn decompress(&self, compressed: &CompressedSeries) -> Result<RegularTimeSeries, CodecError>;

    /// The transformation `T` of Definition 5: compress then decompress,
    /// returning both the reconstructed series and the compressed frame.
    /// This is the chokepoint every grid transform goes through, so it
    /// carries the codec telemetry: bytes in/out counters and a round-trip
    /// duration histogram, labelled by method.
    fn transform(
        &self,
        series: &RegularTimeSeries,
        epsilon: f64,
    ) -> Result<(RegularTimeSeries, CompressedSeries), CodecError> {
        let start = std::time::Instant::now();
        let c = self.compress(series, epsilon)?;
        let d = self.decompress(&c)?;
        let label = [("method", self.name())];
        telemetry::counter_add(
            "codec_bytes_in_total",
            &label,
            (series.len() * std::mem::size_of::<f64>()) as u64,
        );
        telemetry::counter_add("codec_bytes_out_total", &label, c.size_bytes() as u64);
        telemetry::observe("codec_transform_seconds", &label, telemetry::secs(start.elapsed()));
        Ok((d, c))
    }
}

/// Validates an error bound parameter.
pub fn check_epsilon(epsilon: f64) -> Result<(), CodecError> {
    if !epsilon.is_finite() || epsilon < 0.0 {
        Err(CodecError::BadErrorBound(epsilon))
    } else {
        Ok(())
    }
}

/// The per-point allowed absolute deviation under a relative bound.
#[inline]
pub fn point_bound(value: f64, epsilon: f64) -> f64 {
    epsilon * value.abs()
}

/// Picks the representative with the fewest significant decimal digits
/// inside `[lo, hi]` (midpoint when the interval is degenerate).
///
/// Any value in the interval satisfies every point's error bound, so the
/// codec is free to choose the *most compressible* one: round decimals
/// repeat across segments and across series, which is what lets the final
/// DEFLATE pass shrink constant-coefficient streams so effectively
/// (the paper's PMC-vs-Swing gzip argument, §4.2).
pub fn shortest_decimal_in(lo: f64, hi: f64) -> f64 {
    // Written to pass for NaN bounds (a NaN point's interval), which the
    // non-finite branch below handles.
    debug_assert!(lo <= hi || lo.is_nan() || hi.is_nan(), "inverted interval");
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return (lo + hi) / 2.0;
    }
    // Shrink slightly so f32 storage cannot push the choice outside.
    let margin = 1e-6 * lo.abs().max(hi.abs()).max(1e-30);
    let (l, h) = (lo + margin, hi - margin);
    if l > h {
        return (lo + hi) / 2.0;
    }
    let mid = (l + h) / 2.0;
    // Try steps from coarse (1e9) to fine; the first step with a multiple
    // inside the interval wins.
    let mut step = 1e9;
    for _ in 0..25 {
        let candidate = (mid / step).round() * step;
        if candidate >= l && candidate <= h {
            return candidate;
        }
        step /= 10.0;
    }
    mid
}

/// The raw binary representation of a series: the timestamp header followed
/// by little-endian `f64` values. This is what "the raw dataset" means for
/// Eq. 3 before gzipping.
pub fn raw_bytes(series: &RegularTimeSeries) -> Vec<u8> {
    let mut out = timestamps::encode_header(series.start(), series.interval());
    out.extend_from_slice(&(series.len() as u32).to_le_bytes());
    for &v in series.values() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deflated size of the raw representation: the paper's
/// `size_of_raw_data` (gzip applied directly to the raw dataset).
pub fn raw_compressed_size(series: &RegularTimeSeries) -> usize {
    deflate::compressed_size(&raw_bytes(series))
}

/// The paper's 13 evaluation error bounds (§3.2), denser below 0.1.
pub const ERROR_BOUNDS: [f64; 13] =
    [0.01, 0.03, 0.05, 0.07, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.65, 0.8];

/// Checks the PEBLC guarantee between an original and decompressed series:
/// returns the index of the first violating point, if any. `slack` absorbs
/// floating-point rounding. An `f32`-rounding allowance proportional to
/// `|v|` is always included because PMC and Swing store coefficients in
/// single precision, exactly as ModelarDB (the paper's implementation)
/// does.
pub fn find_bound_violation(
    original: &[f64],
    decompressed: &[f64],
    epsilon: f64,
    slack: f64,
) -> Option<usize> {
    original.iter().zip(decompressed).position(|(&v, &d)| {
        let f32_allowance = 4.0 * f32::EPSILON as f64 * v.abs().max(d.abs());
        (d - v).abs() > point_bound(v, epsilon) + slack + f32_allowance
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(0.0).is_ok());
        assert!(check_epsilon(0.8).is_ok());
        assert!(check_epsilon(-0.1).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn point_bound_is_relative() {
        assert_eq!(point_bound(10.0, 0.1), 1.0);
        assert_eq!(point_bound(-10.0, 0.1), 1.0);
        assert_eq!(point_bound(0.0, 0.5), 0.0);
    }

    #[test]
    fn raw_bytes_layout() {
        let s = RegularTimeSeries::new(100, 60, vec![1.0, 2.0]).unwrap();
        let b = raw_bytes(&s);
        // header + count + 2 values
        assert_eq!(b.len(), timestamps::HEADER_LEN + 4 + 16);
    }

    #[test]
    fn raw_compressed_size_smaller_than_raw_for_redundant_series() {
        let s = RegularTimeSeries::new(0, 60, vec![5.0; 10_000]).unwrap();
        assert!(raw_compressed_size(&s) < raw_bytes(&s).len() / 50);
    }

    #[test]
    fn violation_finder() {
        let orig = [10.0, 20.0, 30.0];
        let ok = [10.5, 19.0, 31.0];
        assert_eq!(find_bound_violation(&orig, &ok, 0.1, 1e-9), None);
        let bad = [10.5, 17.0, 31.0];
        assert_eq!(find_bound_violation(&orig, &bad, 0.1, 1e-9), Some(1));
    }

    #[test]
    fn error_bounds_match_paper() {
        assert_eq!(ERROR_BOUNDS.len(), 13);
        assert_eq!(ERROR_BOUNDS[0], 0.01);
        assert_eq!(ERROR_BOUNDS[12], 0.8);
        assert!(ERROR_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }
}
