//! Swing filter (Elmeleegy et al., VLDB 2009) with a relative pointwise
//! error bound.
//!
//! The filter grows a window anchored at the window's first value and
//! maintains the set of line slopes that keep every later point within its
//! allowed interval. Adding point `v_i` at offset `i` (in samples) requires
//! the slope `s` to satisfy `anchor + s*i ∈ [v_i - b_i, v_i + b_i]` with
//! `b_i = eps * |v_i|`, i.e. `s ∈ [(v_i - b_i - anchor)/i, (v_i + b_i -
//! anchor)/i]`. When the running intersection of these slope intervals
//! empties, the window (without the new point) becomes a segment.
//!
//! Following ModelarDB's implementation — which the paper uses — the emitted
//! slope is the mean of the surviving upper and lower slope bounds (§3.2
//! "Implementations Used"). Each segment stores two single-precision
//! coefficients (intercept = anchor, slope), which is exactly the storage
//! overhead the paper blames for Swing's low CR after gzip (§4.2): unlike
//! PMC's snapped constants, slope/intercept pairs are unique and deflate
//! poorly.

use tsdata::series::RegularTimeSeries;

use crate::codec::{check_epsilon, point_bound, CodecError, CompressedSeries, PeblcCompressor};
use crate::deflate;
use crate::reader::ByteReader;
use crate::timestamps;

/// The Swing filter compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Swing;

/// A decoded Swing segment: a line over `len` points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwingSegment {
    /// Number of points covered.
    pub len: usize,
    /// Line value at the segment's first point.
    pub intercept: f64,
    /// Per-sample slope.
    pub slope: f64,
}

impl SwingSegment {
    /// Reconstructs the segment's values.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| self.intercept + self.slope * i as f64)
    }
}

/// Runs the Swing filter over raw values, returning line segments.
pub fn segment_values(values: &[f64], epsilon: f64) -> Vec<SwingSegment> {
    let mut segments = Vec::new();
    if values.is_empty() {
        return segments;
    }
    let mut anchor = values[0];
    let mut start = 0usize;
    let mut slope_lo = f64::NEG_INFINITY;
    let mut slope_hi = f64::INFINITY;

    let mut i = 1usize;
    while i < values.len() {
        let v = values[i];
        // Exact zeros have a zero bound under the relative-error model, so
        // the reconstruction must hit them exactly. A zero-anchored
        // zero-slope line represents runs of zeros; any other case forces
        // a new segment anchored at the zero (a pinned nonzero slope would
        // not survive single-precision coefficient storage).
        if v == 0.0 && epsilon < 1.0 {
            if anchor == 0.0 && slope_lo <= 0.0 && 0.0 <= slope_hi {
                slope_lo = 0.0;
                slope_hi = 0.0;
            } else {
                segments.push(close_segment(start, i, anchor, slope_lo, slope_hi));
                anchor = v;
                start = i;
                slope_lo = f64::NEG_INFINITY;
                slope_hi = f64::INFINITY;
            }
            i += 1;
            continue;
        }
        let off = (i - start) as f64;
        // Shrink the bound by the worst-case single-precision coefficient
        // rounding (|Δanchor| + off·|Δslope|, with off·|slope| bounded by
        // |v| + |anchor| + b), so the stored f32 line still satisfies the
        // exact bound.
        let b = point_bound(v, epsilon);
        let margin = 2.0 * f32::EPSILON as f64 * (anchor.abs() + v.abs() + b);
        let b_eff = b - margin;
        let nlo = slope_lo.max((v - b_eff - anchor) / off);
        let nhi = slope_hi.min((v + b_eff - anchor) / off);
        if b_eff > 0.0 && nlo <= nhi {
            slope_lo = nlo;
            slope_hi = nhi;
        } else {
            segments.push(close_segment(start, i, anchor, slope_lo, slope_hi));
            anchor = v;
            start = i;
            slope_lo = f64::NEG_INFINITY;
            slope_hi = f64::INFINITY;
        }
        i += 1;
    }
    segments.push(close_segment(start, values.len(), anchor, slope_lo, slope_hi));
    segments
}

fn close_segment(start: usize, end: usize, anchor: f64, lo: f64, hi: f64) -> SwingSegment {
    let len = end - start;
    let slope = if !lo.is_finite() || !hi.is_finite() {
        // Single-point segment: any slope works; use 0.
        0.0
    } else {
        // The mean of the surviving slope bounds, exactly as ModelarDB's
        // Swing computes its coefficients (§3.2 "Implementations Used").
        (lo + hi) / 2.0
    };
    SwingSegment { len, intercept: anchor, slope }
}

/// Serializes already-segmented Swing output into the deflated frame format
/// `Swing::decompress` reads (the batch `compress` is `segment_values` plus
/// this; the store re-encodes streamed segments through the same path).
pub fn encode_segments(
    start: i64,
    interval: i64,
    segments: &[SwingSegment],
) -> Result<Vec<u8>, CodecError> {
    let mut inner = timestamps::try_encode_header(start, interval)?;
    // Split lengths at the 16-bit cap; continuation chunks re-anchor the
    // line so reconstruction stays exact.
    let mut stored: Vec<(u16, f64, f64)> = Vec::with_capacity(segments.len());
    for s in segments {
        let mut offset = 0usize;
        for chunk in timestamps::split_segment_len(s.len) {
            stored.push((chunk, s.intercept + s.slope * offset as f64, s.slope));
            offset += chunk as usize;
        }
    }
    inner.extend_from_slice(&(stored.len() as u32).to_le_bytes());
    for (len, intercept, slope) in &stored {
        inner.extend_from_slice(&len.to_le_bytes());
        // Two single-precision coefficients per segment, matching
        // ModelarDB's storage (and the paper's storage-overhead
        // argument for Swing's low CR, §4.2).
        inner.extend_from_slice(&(*intercept as f32).to_le_bytes());
        inner.extend_from_slice(&(*slope as f32).to_le_bytes());
    }
    Ok(deflate::compress(&inner))
}

impl PeblcCompressor for Swing {
    fn name(&self) -> &'static str {
        "SWING"
    }

    fn compress(
        &self,
        series: &RegularTimeSeries,
        epsilon: f64,
    ) -> Result<CompressedSeries, CodecError> {
        check_epsilon(epsilon)?;
        let segments = segment_values(series.values(), epsilon);
        Ok(CompressedSeries {
            method: self.name(),
            bytes: encode_segments(series.start(), series.interval(), &segments)?,
            num_segments: segments.len(),
        })
    }

    fn decompress(&self, compressed: &CompressedSeries) -> Result<RegularTimeSeries, CodecError> {
        let inner = deflate::decompress(&compressed.bytes)?;
        let mut r = ByteReader::new(&inner);
        let (start, interval) = timestamps::read_header(&mut r)?;
        let n_seg = r.read_u32_le()? as usize;
        // 10 bytes per stored segment (u16 length + two f32 coefficients).
        if n_seg > r.bounded_capacity(n_seg, 10) {
            return Err(CodecError::Corrupt(format!(
                "segment count {n_seg} exceeds the {} remaining bytes",
                r.remaining()
            )));
        }
        // Fixed 10-byte records: pre-scan the length fields to size the
        // output exactly (clamped against hostile lengths).
        let rest = r.rest();
        let total: usize =
            (0..n_seg).map(|i| u16::from_le_bytes([rest[10 * i], rest[10 * i + 1]]) as usize).sum();
        let mut values = Vec::with_capacity(total.min(1 << 20));
        for _ in 0..n_seg {
            let len = r.read_u16_le()? as usize;
            let intercept = r.read_f32_le()? as f64;
            let slope = r.read_f32_le()? as f64;
            values.extend((0..len).map(|i| intercept + slope * i as f64));
        }
        Ok(RegularTimeSeries::new(start, interval, values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::find_bound_violation;

    fn series(values: Vec<f64>) -> RegularTimeSeries {
        RegularTimeSeries::new(0, 60, values).unwrap()
    }

    #[test]
    fn perfect_line_is_one_segment() {
        let vals: Vec<f64> = (0..1000).map(|i| 5.0 + 0.25 * i as f64).collect();
        let segs = segment_values(&vals, 0.01);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].slope - 0.25).abs() < 1e-9);
        assert!((segs[0].intercept - 5.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_linear_splits_at_knees() {
        // Odd values avoid exact zeros (which force their own re-anchor).
        let mut vals: Vec<f64> = (0..100).map(|i| 10.0 + i as f64).collect();
        vals.extend((0..100).map(|i| 111.0 - 2.0 * i as f64));
        let segs = segment_values(&vals, 0.0001);
        assert_eq!(segs.len(), 2, "{segs:?}");
    }

    #[test]
    fn exact_zero_inside_segment_forces_reanchor() {
        // A ramp through zero: the zero point must reconstruct exactly.
        let vals: Vec<f64> = (0..21).map(|i| 10.0 - i as f64).collect();
        let segs = segment_values(&vals, 0.05);
        let rebuilt: Vec<f64> = segs.iter().flat_map(|s| s.values().collect::<Vec<_>>()).collect();
        assert_eq!(rebuilt[10], 0.0, "zero at index 10 must be exact");
    }

    #[test]
    fn zero_runs_share_one_segment() {
        // Solar nights: long zero runs must not explode into per-point
        // segments.
        let mut vals = vec![5.0, 4.0];
        vals.extend(vec![0.0; 100]);
        vals.extend([3.0, 4.0]);
        let segs = segment_values(&vals, 0.1);
        assert!(segs.len() <= 4, "{} segments for a zero run", segs.len());
    }

    #[test]
    fn anchor_is_exact_first_value() {
        let vals = vec![10.0, 12.0, 14.0, 100.0, 90.0];
        let segs = segment_values(&vals, 0.05);
        assert_eq!(segs[0].intercept, 10.0);
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        let vals: Vec<f64> = (0..3000)
            .map(|i| 20.0 + (i as f64 * 0.03).sin() * 8.0 + ((i * 7) % 5) as f64 * 0.02)
            .collect();
        for eps in [0.01, 0.1, 0.4] {
            let (d, _) = Swing.transform(&series(vals.clone()), eps).unwrap();
            assert!(
                find_bound_violation(&vals, d.values(), eps, 1e-9).is_none(),
                "bound violated at eps {eps}"
            );
        }
    }

    #[test]
    fn fewer_segments_than_pmc_on_trending_data() {
        // Swing's two-coefficient model fits trends PMC cannot (Figure 3:
        // Swing has the lowest segment counts).
        let vals: Vec<f64> =
            (0..4000).map(|i| (i as f64 * 0.01) * 10.0 + (i as f64 * 0.2).sin()).collect();
        let swing = segment_values(&vals, 0.05).len();
        let pmc = crate::pmc::segment_values(&vals, 0.05).len();
        assert!(swing < pmc, "swing {swing} vs pmc {pmc}");
    }

    #[test]
    fn lower_cr_than_pmc_despite_fewer_segments() {
        // The paper's §4.2 storage argument: Swing's slope/intercept pairs
        // gzip worse than PMC's constants, so PMC wins CR at high eps.
        let vals: Vec<f64> = (0..8000)
            .map(|i| 50.0 + (i as f64 * 0.01).sin() * 10.0 + ((i * 31) % 17) as f64 * 0.01)
            .collect();
        let s = series(vals);
        let pmc = crate::pmc::Pmc.compress(&s, 0.5).unwrap().size_bytes();
        let swing = Swing.compress(&s, 0.5).unwrap().size_bytes();
        assert!(pmc < swing, "pmc {pmc} vs swing {swing}");
    }

    #[test]
    fn exact_zeros_preserved() {
        let vals = vec![0.0, 0.0, 3.0, 4.0, 0.0];
        let (d, _) = Swing.transform(&series(vals.clone()), 0.8).unwrap();
        assert_eq!(d.values()[0], 0.0);
        assert!(find_bound_violation(&vals, d.values(), 0.8, 1e-9).is_none());
    }

    #[test]
    fn single_point_series() {
        let (d, c) = Swing.transform(&series(vec![42.0]), 0.1).unwrap();
        assert_eq!(d.values(), &[42.0]);
        assert_eq!(c.num_segments, 1);
    }

    #[test]
    fn timestamps_roundtrip() {
        let s = RegularTimeSeries::new(5_000, 1800, vec![1.0, 2.0, 3.0]).unwrap();
        let (d, _) = Swing.transform(&s, 0.1).unwrap();
        assert_eq!(d.start(), 5_000);
        assert_eq!(d.interval(), 1800);
    }

    #[test]
    fn long_segment_split_reconstructs_exactly() {
        let vals: Vec<f64> = (0..70_000).map(|i| 1.0 + 0.001 * i as f64).collect();
        let (d, c) = Swing.transform(&series(vals.clone()), 0.05).unwrap();
        assert_eq!(c.num_segments, 1);
        assert!(find_bound_violation(&vals, d.values(), 0.05, 1e-9).is_none());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        assert!(Swing.compress(&series(vec![1.0]), -0.5).is_err());
    }
}
