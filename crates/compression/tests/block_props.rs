//! Property tests for the blocked codec kernels (DESIGN.md §11): at every
//! bit width 0..=64, over empty inputs, partial final blocks, and
//! spill-heavy distributions, packing must roundtrip exactly and the
//! Blocked and Scalar kernels must emit byte-identical streams.

use compression::block::{self, Bitset, Kernel, LANE};
use compression::reader::ByteReader;
use proptest::prelude::*;

/// Deterministic xorshift64* fill so each case derives from one
/// proptest-provided seed.
fn fill(len: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect()
}

/// Masks `v` down to `width` bits (the packing-domain invariant).
fn mask(v: u64, width: u8) -> u64 {
    if width == 0 {
        0
    } else if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// A mostly-narrow stream with occasional wide outliers, the distribution
/// the per-block spill fallback exists for.
fn spiky(len: usize, seed: u64) -> Vec<u64> {
    fill(len, seed).into_iter().map(|r| if r % 23 == 0 { r } else { r % 17 }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pack → unpack is the identity at every width, for lengths that
    /// cover empty, sub-lane, exact-lane, and partial-final-block cases.
    #[test]
    fn pack_unpack_roundtrip_every_width(
        width in 0u8..=64,
        len in 0usize..(3 * LANE + 7),
        seed in any::<u64>(),
    ) {
        let values: Vec<u64> = fill(len, seed).into_iter().map(|v| mask(v, width)).collect();
        for kernel in [Kernel::Blocked, Kernel::Scalar] {
            let mut packed = Vec::new();
            block::pack_bits_into(&values, width, kernel, &mut packed);
            prop_assert_eq!(packed.len(), block::packed_len(len, width));
            let mut out = Vec::new();
            block::unpack_bits_into(&packed, len, width, kernel, &mut out).unwrap();
            prop_assert_eq!(&out, &values, "kernel {:?} width {}", kernel, width);
        }
    }

    /// The two kernels are interchangeable: byte-identical packs, and each
    /// kernel decodes the other's bytes.
    #[test]
    fn kernels_emit_and_accept_identical_bytes(
        width in 0u8..=64,
        len in 0usize..(2 * LANE + 5),
        seed in any::<u64>(),
    ) {
        let values: Vec<u64> = fill(len, seed).into_iter().map(|v| mask(v, width)).collect();
        let mut blocked = Vec::new();
        let mut scalar = Vec::new();
        block::pack_bits_into(&values, width, Kernel::Blocked, &mut blocked);
        block::pack_bits_into(&values, width, Kernel::Scalar, &mut scalar);
        prop_assert_eq!(&blocked, &scalar, "width {}", width);
        let mut cross = Vec::new();
        block::unpack_bits_into(&blocked, len, width, Kernel::Scalar, &mut cross).unwrap();
        prop_assert_eq!(&cross, &values);
    }

    /// The full block stream (per-block widths + varint spills) roundtrips
    /// arbitrary u64s, both kernels agree byte-for-byte, and decode stops
    /// exactly at the stream's end even with trailing junk.
    #[test]
    fn stream_roundtrip_with_spills(
        len in 0usize..(3 * LANE + 9),
        seed in any::<u64>(),
        junk in any::<u8>(),
    ) {
        let values = spiky(len, seed);
        let enc = block::encode_u64s_with(&values, Kernel::Blocked);
        prop_assert_eq!(&enc, &block::encode_u64s_with(&values, Kernel::Scalar));
        let mut framed = enc.clone();
        framed.extend_from_slice(&[junk; 5]);
        for kernel in [Kernel::Blocked, Kernel::Scalar] {
            let mut r = ByteReader::new(&framed);
            let out = block::decode_u64s_with(&mut r, kernel).unwrap();
            prop_assert_eq!(&out, &values, "kernel {:?}", kernel);
            prop_assert_eq!(r.position(), enc.len(), "stream must be self-delimiting");
        }
    }

    /// Uniform random u64s roundtrip too (worst case: near-64-bit widths,
    /// few spills worth taking).
    #[test]
    fn stream_roundtrip_wide_values(len in 0usize..300, seed in any::<u64>()) {
        let values = fill(len, seed);
        let enc = block::encode_u64s_with(&values, Kernel::Blocked);
        let mut r = ByteReader::new(&enc);
        prop_assert_eq!(block::decode_u64s_with(&mut r, Kernel::Blocked).unwrap(), values);
    }

    /// Varints roundtrip every u64 and match their predicted length.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        block::write_varint(v, &mut buf);
        prop_assert_eq!(buf.len(), block::varint_len(v));
        let mut r = ByteReader::new(&buf);
        prop_assert_eq!(block::read_varint(&mut r).unwrap(), v);
        prop_assert!(r.is_empty());
    }

    /// Zigzag and delta-of-delta are exact inverses for any i64 input,
    /// including wrap-around magnitudes.
    #[test]
    fn zigzag_and_dod_are_inverses(ts in prop::collection::vec(any::<i64>(), 0..200)) {
        for &t in &ts {
            prop_assert_eq!(block::unzigzag(block::zigzag(t)), t);
        }
        if let Some(&first) = ts.first() {
            let dods = block::dod_encode(&ts);
            prop_assert_eq!(dods.len(), ts.len() - 1);
            prop_assert_eq!(block::dod_decode(first, &dods), ts);
        }
    }

    /// Bitset bit-indexing agrees with a Vec<bool> model, and both byte
    /// layouts (LSB-first wire, MSB-first legacy) roundtrip.
    #[test]
    fn bitset_matches_bool_model(
        len in 0usize..300,
        seed in any::<u64>(),
    ) {
        let model: Vec<bool> = fill(len, seed).iter().map(|v| v % 3 == 0).collect();
        let mut bs = Bitset::with_len(len);
        for (i, &b) in model.iter().enumerate() {
            if b {
                bs.set(i);
            }
        }
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(bs.get(i), b);
        }
        prop_assert_eq!(bs.count_ones(), model.iter().filter(|&&b| b).count());
        prop_assert_eq!(bs.count_zeros(), model.iter().filter(|&&b| !b).count());
        let le = Bitset::from_le_bytes(&bs.to_le_bytes(), len).unwrap();
        prop_assert_eq!(&le, &bs);
        let msb = Bitset::from_msb_bytes(&bs.to_msb_bytes(), len).unwrap();
        prop_assert_eq!(&msb, &bs);
    }

    /// Truncating a valid stream anywhere yields Err, never a panic and
    /// never a silently short result.
    #[test]
    fn truncated_streams_rejected(
        len in 1usize..(LANE + 40),
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let values = spiky(len, seed);
        let enc = block::encode_u64s_with(&values, Kernel::Blocked);
        let cut = ((enc.len() - 1) as f64 * frac) as usize;
        let mut r = ByteReader::new(&enc[..cut]);
        prop_assert!(block::decode_u64s_with(&mut r, Kernel::Blocked).is_err());
    }
}
