//! Deterministic fuzz harness for decode totality (DESIGN.md §10).
//!
//! Every codec decoder must be *total* over arbitrary bytes: it returns
//! `Ok` or `Err(CodecError)` — never a panic, and never an allocation
//! proportional to a hostile length field rather than to the input. The
//! harness drives each decoder with seeded mutations of *valid* encoded
//! corpora (see [`compression::mutate`]): truncation, bit flips,
//! length-field tampering, cross-codec splicing, and byte scrambling, at
//! both container layers — the outer DEFLATE frame and the codec's inner
//! byte stream (re-wrapped in a valid frame so the inner parser, not the
//! DEFLATE checksum of structure, is what gets exercised).
//!
//! Failures replay from the case label alone (`seed=… kind=… target=…
//! round=…`): the mutation stream is a pure function of the seed.
//!
//! Alongside never-panics, the harness pins down the semantics corrupt
//! input must NOT have:
//! - decoding is deterministic (same bytes → bit-identical values);
//! - anything that decodes re-encodes without panicking (possibly to an
//!   `Err` — mutated series can hold NaN);
//! - Gorilla (lossless) is a strict byte fixpoint;
//! - PMC at ε = 0 is bitwise idempotent (decoded values are exactly the
//!   stored f32s);
//! - every lossy codec keeps its second generation inside the bound.

use compression::codec::{find_bound_violation, CompressedSeries, PeblcCompressor};
use compression::gorilla::Gorilla;
use compression::mutate::{sweep, ALL_MUTATIONS};
use compression::pmc::Pmc;
use compression::ppa::Ppa;
use compression::reader::ByteReader;
use compression::swing::Swing;
use compression::sz::{self, Sz};
use compression::{block, deflate, timestamps};
use tsdata::series::RegularTimeSeries;

/// The per-format floor the CI fuzz smoke job guarantees.
const MIN_CASES: usize = 1_000;

fn codecs() -> Vec<Box<dyn PeblcCompressor>> {
    vec![Box::new(Pmc), Box::new(Swing), Box::new(Sz), Box::new(Gorilla), Box::new(Ppa::default())]
}

/// Small but structurally diverse series: smooth, constant, zero/negative
/// crossings, realistic sensor data, and a minimal 3-point series.
fn corpus_series() -> Vec<RegularTimeSeries> {
    let smooth: Vec<f64> = (0..400).map(|i| 25.0 + (i as f64 * 0.05).sin() * 8.0).collect();
    let crossings: Vec<f64> =
        (0..200).map(|i| if i % 7 == 0 { 0.0 } else { ((i % 13) as f64 - 6.0) * 1.7 }).collect();
    let sensor = tsdata::datasets::generate_univariate(
        tsdata::datasets::DatasetKind::ETTm1,
        tsdata::datasets::GenOptions::with_len(300),
    );
    vec![
        RegularTimeSeries::new(0, 60, smooth).unwrap(),
        RegularTimeSeries::new(1_600_000_000, 900, vec![13.25; 150]).unwrap(),
        RegularTimeSeries::new(-120, 1, crossings).unwrap(),
        sensor,
        RegularTimeSeries::new(7, 3600, vec![1.0, -2.5, 1.0e6]).unwrap(),
    ]
}

/// Valid compressed frames for one codec over the corpus series.
fn encoded_corpus(codec: &dyn PeblcCompressor) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for s in corpus_series() {
        for eps in [0.01, 0.1] {
            out.push(codec.compress(&s, eps).expect("corpus encodes").bytes);
        }
    }
    out
}

/// The decode-totality oracle: decoding mutated bytes may fail but must
/// not panic; anything that decodes must decode deterministically and
/// re-encode without panicking.
fn assert_total(codec: &dyn PeblcCompressor, bytes: &[u8], label: &str) {
    let frame = CompressedSeries { method: codec.name(), bytes: bytes.to_vec(), num_segments: 0 };
    if let Ok(series) = codec.decompress(&frame) {
        let again = codec
            .decompress(&frame)
            .unwrap_or_else(|e| panic!("second decode of same bytes failed ({label}): {e}"));
        let a: Vec<u64> = series.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = again.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "decode must be deterministic: {label}");
        // A mutated-but-decodable series (which may contain NaN or huge
        // values) must round through the encoder without panicking;
        // rejecting it is fine.
        let _ = codec.compress(&series, 0.1);
    }
}

/// Sweeps mutations of the outer (DEFLATE-framed) representation.
#[test]
fn outer_frame_mutations_never_panic() {
    for codec in codecs() {
        let corpus = encoded_corpus(codec.as_ref());
        let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
        let total = sweep(&corpus, 0xC0DEC, rounds, |buf, label| {
            assert_total(codec.as_ref(), buf, label);
        });
        assert!(total >= MIN_CASES, "{}: only {total} outer cases", codec.name());
    }
}

/// Sweeps mutations of the inner byte stream, re-wrapped in a valid
/// DEFLATE frame so the codec's own parser sees every hostile byte.
#[test]
fn inner_stream_mutations_never_panic() {
    for codec in codecs() {
        let corpus: Vec<Vec<u8>> = encoded_corpus(codec.as_ref())
            .iter()
            .map(|bytes| deflate::decompress(bytes).expect("corpus frames are valid"))
            .collect();
        let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
        let total = sweep(&corpus, 0x1AE5, rounds, |buf, label| {
            assert_total(codec.as_ref(), &deflate::compress(buf), label);
        });
        assert!(total >= MIN_CASES, "{}: only {total} inner cases", codec.name());
    }
}

/// Raw DEFLATE container: mutated frames must decode to `Ok`/`Err`, never
/// panic, and whatever decodes must re-compress/re-decode to itself.
#[test]
fn deflate_mutations_never_panic() {
    let corpus: Vec<Vec<u8>> = [
        b"the quick brown fox ".repeat(80),
        vec![42u8; 4096],
        (0..2048u32).flat_map(|i| ((i as f64 * 0.01).sin()).to_le_bytes()).collect(),
        Vec::new(),
    ]
    .into_iter()
    .map(|data| deflate::compress(&data))
    .collect();
    let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
    let total = sweep(&corpus, 0xDEF1A7E, rounds, |buf, label| {
        if let Ok(data) = deflate::decompress(buf) {
            let back = deflate::decompress(&deflate::compress(&data)).expect("roundtrip");
            assert_eq!(back, data, "deflate roundtrip after decode: {label}");
        }
    });
    assert!(total >= MIN_CASES, "only {total} deflate cases");
}

/// Mutated blocked timestamp streams (format tag 1) and varbit streams
/// (tag 0) must decode totally: `Ok`/`Err`, deterministic, never a panic.
#[test]
fn timestamp_stream_mutations_never_panic() {
    let corpora: Vec<Vec<i64>> = vec![
        (0..500).map(|i| 1_600_000_000 + i * 60).collect(),
        (0..200).map(|i| i * 900 + if i % 17 == 0 { 3 } else { 0 }).collect(),
        vec![i64::MIN, -1, 0, 1, i64::MAX],
        (0..130).map(|i| (i * i) as i64).collect(),
    ];
    let corpus: Vec<Vec<u8>> = corpora
        .iter()
        .flat_map(|ts| {
            [timestamps::encode_stream_blocked(ts), timestamps::encode_stream_varbit(ts)]
        })
        .collect();
    let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
    let total = sweep(&corpus, 0x715_57A7, rounds, |buf, label| {
        let mut r = ByteReader::new(buf);
        if let Ok(ts) = timestamps::decode_stream(&mut r) {
            let mut r2 = ByteReader::new(buf);
            let again = timestamps::decode_stream(&mut r2)
                .unwrap_or_else(|e| panic!("second decode failed ({label}): {e}"));
            assert_eq!(ts, again, "decode must be deterministic: {label}");
        }
    });
    assert!(total >= MIN_CASES, "only {total} timestamp stream cases");
}

/// Mutated raw block streams must decode totally, under both kernels,
/// with identical outcomes.
#[test]
fn block_stream_mutations_never_panic() {
    let corpus: Vec<Vec<u8>> = [
        (0..300u64).collect::<Vec<u64>>(),
        (0..300u64).map(|i| if i % 19 == 0 { u64::MAX - i } else { i % 31 }).collect(),
        vec![0u64; 257],
        vec![u64::MAX; 40],
        Vec::new(),
    ]
    .iter()
    .map(|vals| block::encode_u64s(vals))
    .collect();
    let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
    let total = sweep(&corpus, 0xB10C, rounds, |buf, label| {
        let mut rb = ByteReader::new(buf);
        let blocked = block::decode_u64s_with(&mut rb, block::Kernel::Blocked);
        let mut rs = ByteReader::new(buf);
        let scalar = block::decode_u64s_with(&mut rs, block::Kernel::Scalar);
        match (blocked, scalar) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "kernels diverged: {label}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("kernels disagree on validity ({label}): {a:?} vs {b:?}"),
        }
    });
    assert!(total >= MIN_CASES, "only {total} block stream cases");
}

/// Mutated legacy SZ mode-1 frames (Huffman symbols, MSB-first bitmaps)
/// must stay total through the same decoder that handles mode-2 frames.
#[test]
fn legacy_sz_mode_mutations_never_panic() {
    let corpus: Vec<Vec<u8>> = corpus_series()
        .iter()
        .flat_map(|s| {
            [0.01, 0.1].map(|eps| sz::compress_huffman(s, eps).expect("corpus encodes").bytes)
        })
        .collect();
    let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
    let total = sweep(&corpus, 0x52_1E6A, rounds, |buf, label| {
        assert_total(&Sz, buf, label);
    });
    assert!(total >= MIN_CASES, "only {total} legacy SZ cases");
}

/// Empty and near-empty inputs are rejected, not sliced.
#[test]
fn degenerate_inputs_rejected() {
    for codec in codecs() {
        for bytes in [Vec::new(), vec![0u8], deflate::compress(&[]), deflate::compress(&[1])] {
            let frame = CompressedSeries { method: codec.name(), bytes, num_segments: 0 };
            assert!(codec.decompress(&frame).is_err(), "{}", codec.name());
        }
    }
}

/// Plants maximal count fields directly behind valid headers: the decoder
/// must reject them (the remaining input cannot hold that many records)
/// instead of reserving gigabytes.
#[test]
fn huge_count_fields_rejected_cheaply() {
    let header = timestamps::encode_header(0, 60);
    let huge = u32::MAX.to_le_bytes();

    // PMC / Swing / Gorilla: header + count.
    for codec in [&Pmc as &dyn PeblcCompressor, &Swing, &Gorilla] {
        let mut inner = header.clone();
        inner.extend_from_slice(&huge);
        inner.extend_from_slice(&[0xAB; 32]);
        let frame = CompressedSeries {
            method: codec.name(),
            bytes: deflate::compress(&inner),
            num_segments: 0,
        };
        assert!(codec.decompress(&frame).is_err(), "{}", codec.name());
    }

    // PPA: header + degree + count.
    let mut inner = header.clone();
    inner.push(2);
    inner.extend_from_slice(&huge);
    inner.extend_from_slice(&[0xAB; 32]);
    let frame =
        CompressedSeries { method: "PPA", bytes: deflate::compress(&inner), num_segments: 0 };
    assert!(Ppa::default().decompress(&frame).is_err());

    // SZ mode 0: header + count + mode byte.
    let mut inner = header.clone();
    inner.extend_from_slice(&huge);
    inner.push(0);
    inner.extend_from_slice(&[0xAB; 32]);
    let frame =
        CompressedSeries { method: "SZ", bytes: deflate::compress(&inner), num_segments: 0 };
    assert!(Sz.decompress(&frame).is_err());

    // DEFLATE frame claiming a u32::MAX expansion of a 3-byte body.
    assert!(deflate::decompress(&[1, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3]).is_err());
}

/// Gorilla is lossless, so compress ∘ decompress is a strict byte
/// fixpoint: re-encoding a decoded series reproduces the frame exactly.
#[test]
fn gorilla_byte_fixpoint() {
    for s in corpus_series() {
        let c1 = Gorilla.compress(&s, 0.0).unwrap();
        let d1 = Gorilla.decompress(&c1).unwrap();
        let c2 = Gorilla.compress(&d1, 0.0).unwrap();
        assert_eq!(c1.bytes, c2.bytes, "gorilla re-encode must be byte-identical");
    }
}

/// PMC stores each segment value as an f32, so at ε = 0 a decoded series
/// is already exactly representable and a second pass is bitwise
/// idempotent.
#[test]
fn pmc_eps0_bitwise_idempotent() {
    for s in corpus_series() {
        let (d1, _) = Pmc.transform(&s, 0.0).unwrap();
        let (d2, _) = Pmc.transform(&d1, 0.0).unwrap();
        let a: Vec<u64> = d1.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = d2.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }
}

/// Every lossy codec's second generation stays within the bound of its
/// first: decode → encode → decode does not drift past ε (up to the f32
/// coefficient allowance `find_bound_violation` already grants).
#[test]
fn second_generation_stays_in_bound() {
    let lossy: Vec<Box<dyn PeblcCompressor>> =
        vec![Box::new(Pmc), Box::new(Swing), Box::new(Sz), Box::new(Ppa::default())];
    for codec in lossy {
        for s in corpus_series() {
            for eps in [0.01, 0.1] {
                let (d1, _) = codec.transform(&s, eps).unwrap();
                let (d2, _) = codec.transform(&d1, eps).unwrap();
                assert!(
                    find_bound_violation(d1.values(), d2.values(), eps, 1e-12).is_none(),
                    "{} second generation drifted at eps {eps}",
                    codec.name()
                );
            }
        }
    }
}
