//! Property tests for model checkpointing: for every one of the paper's
//! seven models, `save_state` on a fitted model followed by `load_state`
//! into an identically configured fresh model must reproduce
//! bit-identical predictions, for any training series and input window.
//!
//! Tiny windows and series keep each fit to milliseconds while still
//! exercising every parameter tensor.

use forecast::model::{ForecastError, ModelKind, ALL_MODELS};
use forecast::{build_model, BuildOptions};
use proptest::prelude::*;
use tsdata::datasets::{generate, DatasetKind, GenOptions};
use tsdata::series::MultiSeries;
use tsdata::split::{split, SplitSpec};

const INPUT_LEN: usize = 16;
const HORIZON: usize = 4;

fn tiny_options(seed: u64) -> BuildOptions {
    BuildOptions { input_len: INPUT_LEN, horizon: HORIZON, seed, ..BuildOptions::default() }
}

/// A small but structured univariate series: enough points for a 70/10/20
/// split to leave room for at least one training window.
fn tiny_series(data_seed: u64) -> MultiSeries {
    generate(DatasetKind::ETTm1, GenOptions { len: Some(360), channels: Some(1), seed: data_seed })
}

/// Fits `kind`, round-trips its state through a fresh model, and checks
/// that both predict bit-identically on the given window start.
fn assert_roundtrip(kind: ModelKind, seed: u64, data_seed: u64, start: usize) {
    let data = tiny_series(data_seed);
    let s = split(&data, SplitSpec::default()).expect("360 points split cleanly");

    let mut fitted = build_model(kind, tiny_options(seed));
    fitted.fit(&s.train, &s.val).expect("tiny fit succeeds");
    let state = fitted.save_state().expect("fitted model exports state");

    let mut reloaded = build_model(kind, tiny_options(seed));
    assert_eq!(
        reloaded.save_state(),
        Err(ForecastError::NotFitted),
        "{}: save before fit must be rejected",
        kind.name()
    );
    reloaded.load_state(&state).expect("state loads into an identical build");

    let window = vec![s.test.target().values()[start..start + INPUT_LEN].to_vec()];
    let before = fitted.predict(&window).expect("fitted predicts");
    let after = reloaded.predict(&window).expect("reloaded predicts");
    assert_eq!(before.len(), HORIZON);
    // Bit-identity, not approximate equality: the artifact store replays
    // exact f64 bit patterns, so reloaded models must be exact replicas.
    let before_bits: Vec<u64> = before.iter().map(|v| v.to_bits()).collect();
    let after_bits: Vec<u64> = after.iter().map(|v| v.to_bits()).collect();
    assert_eq!(before_bits, after_bits, "{}: reloaded predictions drifted", kind.name());
}

macro_rules! roundtrip_props {
    ($($test:ident => $kind:expr),+ $(,)?) => {$(
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]

            #[test]
            fn $test(seed in 0u64..1_000, data_seed in 0u64..1_000, start in 0usize..40) {
                assert_roundtrip($kind, seed, data_seed, start);
            }
        }
    )+};
}

roundtrip_props! {
    arima_state_roundtrip_bit_identical => ModelKind::Arima,
    gboost_state_roundtrip_bit_identical => ModelKind::GBoost,
    dlinear_state_roundtrip_bit_identical => ModelKind::DLinear,
    gru_state_roundtrip_bit_identical => ModelKind::Gru,
    informer_state_roundtrip_bit_identical => ModelKind::Informer,
    nbeats_state_roundtrip_bit_identical => ModelKind::NBeats,
    transformer_state_roundtrip_bit_identical => ModelKind::Transformer,
}

/// A snapshot of one model kind must not load into another: every state
/// dict is tagged with its model name and the tag is checked on import.
#[test]
fn cross_model_state_rejected() {
    let data = tiny_series(7);
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut dlinear = build_model(ModelKind::DLinear, tiny_options(1));
    dlinear.fit(&s.train, &s.val).expect("fits");
    let state = dlinear.save_state().expect("exports");

    for kind in ALL_MODELS {
        if kind == ModelKind::DLinear {
            continue;
        }
        let mut other = build_model(kind, tiny_options(1));
        let err = other.load_state(&state).expect_err("foreign state must be rejected");
        assert!(
            matches!(err, ForecastError::InvalidState(_)),
            "{}: expected InvalidState, got {err:?}",
            kind.name()
        );
    }
}

/// A truncated state dict (missing parameter tensors) must be rejected
/// rather than leaving the model half-loaded.
#[test]
fn truncated_state_rejected() {
    let data = tiny_series(11);
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut gru = build_model(ModelKind::Gru, tiny_options(2));
    gru.fit(&s.train, &s.val).expect("fits");
    let full = gru.save_state().expect("exports");

    let mut truncated = neural::state::StateDict::new();
    for (name, tensor) in full.entries().take(full.len() - 1) {
        truncated.insert(name, tensor.clone());
    }
    let mut fresh = build_model(ModelKind::Gru, tiny_options(2));
    assert!(
        matches!(fresh.load_state(&truncated), Err(ForecastError::InvalidState(_))),
        "truncated state must not load"
    );
    // The failed load must not leave the model claiming to be fitted.
    assert!(fresh.predict(&[vec![0.0; INPUT_LEN]]).is_err());
}

/// Dropping ANY single entry from a saved state must surface as
/// `InvalidState` — never a panic or a half-loaded model. This sweeps
/// every entry, not just the last one, so no import path is left
/// trusting an entry's presence.
#[test]
fn any_missing_entry_rejected() {
    let data = tiny_series(13);
    let s = split(&data, SplitSpec::default()).expect("splits");
    for kind in [ModelKind::GBoost, ModelKind::Gru, ModelKind::DLinear] {
        let mut model = build_model(kind, tiny_options(3));
        model.fit(&s.train, &s.val).expect("fits");
        let full = model.save_state().expect("exports");
        let names: Vec<String> = full.entries().map(|(n, _)| n.to_string()).collect();
        for missing in &names {
            let mut partial = neural::state::StateDict::new();
            for (name, tensor) in full.entries().filter(|(n, _)| n != missing) {
                partial.insert(name, tensor.clone());
            }
            let mut fresh = build_model(kind, tiny_options(3));
            let err =
                fresh.load_state(&partial).expect_err("state without `{missing}` must be rejected");
            assert!(
                matches!(err, ForecastError::InvalidState(_)),
                "{}: dropping `{missing}` gave {err:?}",
                kind.name()
            );
            assert!(
                fresh.predict(&[vec![0.0; INPUT_LEN]]).is_err(),
                "{}: model claims fitted after failed load",
                kind.name()
            );
        }
    }
}

/// A state dict whose model tag holds garbage (values that are not byte
/// codes) must be rejected as invalid, not decoded into a panic.
#[test]
fn garbage_model_tag_rejected() {
    let data = tiny_series(17);
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut model = build_model(ModelKind::DLinear, tiny_options(4));
    model.fit(&s.train, &s.val).expect("fits");
    let full = model.save_state().expect("exports");

    for bad in [f64::NAN, -1.0, 256.0, 65.5] {
        let mut evil = neural::state::StateDict::new();
        for (name, tensor) in full.entries() {
            // "meta.model" is the tag entry every state dict carries
            // (see forecast::stateio).
            if name == "meta.model" {
                evil.insert(name, neural::tensor::Tensor::row(&[bad]));
            } else {
                evil.insert(name, tensor.clone());
            }
        }
        let mut fresh = build_model(ModelKind::DLinear, tiny_options(4));
        assert!(
            matches!(fresh.load_state(&evil), Err(ForecastError::InvalidState(_))),
            "tag byte {bad} must be rejected"
        );
    }
}

/// After a successful load the model must behave as fitted: window
/// validation still applies and the horizon is preserved.
#[test]
fn reloaded_model_validates_windows() {
    let data = tiny_series(3);
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut model = build_model(ModelKind::GBoost, tiny_options(5));
    model.fit(&s.train, &s.val).expect("fits");
    let state = model.save_state().expect("exports");

    let mut reloaded = build_model(ModelKind::GBoost, tiny_options(5));
    reloaded.load_state(&state).expect("loads");
    assert_eq!(reloaded.input_len(), INPUT_LEN);
    assert_eq!(reloaded.horizon(), HORIZON);
    assert!(matches!(
        reloaded.predict(&[vec![0.0; INPUT_LEN - 1]]),
        Err(ForecastError::BadWindow { .. })
    ));
}
