//! Property tests for the matrix-in/matrix-out inference path: for every
//! one of the paper's seven models (plus the ensemble), `predict_batch`
//! over a random batch of windows must be bitwise equal to looping
//! `predict` over the same windows — including batches of one and counts
//! that leave ragged chunks at any staging granularity.
//!
//! This is the contract `evalcore::scenario::score_windows` relies on to
//! keep batched grid CSVs byte-identical to the legacy per-window path.

use forecast::ensemble::{Combine, Ensemble};
use forecast::model::{ForecastError, Forecaster, ModelKind};
use forecast::{build_model, BuildOptions};
use neural::tensor::Tensor;
use proptest::prelude::*;
use tsdata::datasets::{generate, DatasetKind, GenOptions};
use tsdata::series::MultiSeries;
use tsdata::split::{split, SplitSpec};

const INPUT_LEN: usize = 16;
const HORIZON: usize = 4;

fn tiny_options(seed: u64) -> BuildOptions {
    BuildOptions { input_len: INPUT_LEN, horizon: HORIZON, seed, ..BuildOptions::default() }
}

fn tiny_series(data_seed: u64) -> MultiSeries {
    generate(DatasetKind::ETTm1, GenOptions { len: Some(360), channels: Some(1), seed: data_seed })
}

/// Draws `n` overlapping windows from the test subset, spread over the
/// available starts by a stride derived from `spread`.
fn sample_windows(test_vals: &[f64], n: usize, spread: usize) -> Vec<Vec<f64>> {
    let max_start = test_vals.len() - INPUT_LEN;
    (0..n)
        .map(|i| {
            let start = (i * (spread + 1)) % (max_start + 1);
            test_vals[start..start + INPUT_LEN].to_vec()
        })
        .collect()
}

fn stage(windows: &[Vec<f64>]) -> Tensor {
    let mut staged = Tensor::zeros(windows.len(), INPUT_LEN);
    for (r, w) in windows.iter().enumerate() {
        staged.data_mut()[r * INPUT_LEN..(r + 1) * INPUT_LEN].copy_from_slice(w);
    }
    staged
}

fn assert_batch_identity(model: &dyn Forecaster, windows: &[Vec<f64>]) {
    let batched = model.predict_batch(&stage(windows)).expect("batched predict succeeds");
    assert_eq!(batched.shape(), (windows.len(), HORIZON));
    for (r, w) in windows.iter().enumerate() {
        let single = model.predict(std::slice::from_ref(w)).expect("per-window predict succeeds");
        let batched_bits: Vec<u64> =
            batched.data()[r * HORIZON..(r + 1) * HORIZON].iter().map(|v| v.to_bits()).collect();
        let single_bits: Vec<u64> = single.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            batched_bits,
            single_bits,
            "{}: window {r} of {} diverged from the per-window oracle",
            model.name(),
            windows.len()
        );
    }
}

fn assert_model_batches(kind: ModelKind, seed: u64, data_seed: u64, n: usize, spread: usize) {
    let data = tiny_series(data_seed);
    let s = split(&data, SplitSpec::default()).expect("360 points split cleanly");
    let mut model = build_model(kind, tiny_options(seed));
    model.fit(&s.train, &s.val).expect("tiny fit succeeds");
    let windows = sample_windows(s.test.target().values(), n, spread);
    assert_batch_identity(model.as_ref(), &windows);
}

macro_rules! batch_props {
    ($($test:ident => $kind:expr),+ $(,)?) => {$(
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]

            #[test]
            fn $test(
                seed in 0u64..1_000,
                data_seed in 0u64..1_000,
                n in 1usize..9,
                spread in 0usize..12,
            ) {
                assert_model_batches($kind, seed, data_seed, n, spread);
            }
        }
    )+};
}

batch_props! {
    arima_batch_matches_per_window => ModelKind::Arima,
    gboost_batch_matches_per_window => ModelKind::GBoost,
    dlinear_batch_matches_per_window => ModelKind::DLinear,
    gru_batch_matches_per_window => ModelKind::Gru,
    informer_batch_matches_per_window => ModelKind::Informer,
    nbeats_batch_matches_per_window => ModelKind::NBeats,
    transformer_batch_matches_per_window => ModelKind::Transformer,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The ensemble combines member batches in the same order and with the
    /// same accumulation as its per-window path.
    #[test]
    fn ensemble_batch_matches_per_window(seed in 0u64..1_000, n in 1usize..6) {
        let data = tiny_series(seed);
        let s = split(&data, SplitSpec::default()).expect("splits");
        let mut ens = Ensemble::new(
            vec![
                build_model(ModelKind::Arima, tiny_options(seed)),
                build_model(ModelKind::DLinear, tiny_options(seed)),
            ],
            Combine::InverseValidationError,
        );
        ens.fit(&s.train, &s.val).expect("ensemble fits");
        let windows = sample_windows(s.test.target().values(), n, 5);
        assert_batch_identity(&ens, &windows);
    }
}

/// Batch of one must work: the batched path may never assume n > 1.
#[test]
fn single_window_batches_work() {
    let data = tiny_series(3);
    let s = split(&data, SplitSpec::default()).expect("splits");
    for kind in [ModelKind::GBoost, ModelKind::DLinear, ModelKind::Transformer] {
        let mut model = build_model(kind, tiny_options(1));
        model.fit(&s.train, &s.val).expect("fits");
        let windows = sample_windows(s.test.target().values(), 1, 0);
        assert_batch_identity(model.as_ref(), &windows);
    }
}

/// Shape errors surface as `BadWindow`, and unfitted models as
/// `NotFitted`, matching the per-window contract.
#[test]
fn batch_validation_errors() {
    let unfitted = build_model(ModelKind::DLinear, tiny_options(1));
    assert_eq!(
        unfitted.predict_batch(&Tensor::zeros(2, INPUT_LEN)).unwrap_err(),
        ForecastError::NotFitted
    );

    let data = tiny_series(5);
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut model = build_model(ModelKind::GBoost, tiny_options(1));
    model.fit(&s.train, &s.val).expect("fits");
    assert!(matches!(
        model.predict_batch(&Tensor::zeros(2, INPUT_LEN + 1)).unwrap_err(),
        ForecastError::BadWindow { .. }
    ));
    // Empty batches are well-formed: [0, horizon] out.
    let empty = model.predict_batch(&Tensor::zeros(0, INPUT_LEN)).expect("empty batch is fine");
    assert_eq!(empty.shape(), (0, HORIZON));
}

/// Ensemble degenerate inputs: an empty batch is well-formed (`[0, h]`
/// out, no member ever sees a zero-row stage), a batch of exactly one
/// window works, and a count that leaves a ragged tail of one past the
/// deep members' staging granularity stays bit-identical to the
/// per-window oracle.
#[test]
fn ensemble_degenerate_batches() {
    let data = tiny_series(11);
    let s = split(&data, SplitSpec::default()).expect("splits");
    let mut ens = Ensemble::new(
        vec![
            build_model(ModelKind::Gru, tiny_options(2)),
            build_model(ModelKind::DLinear, tiny_options(2)),
        ],
        Combine::Mean,
    );
    ens.fit(&s.train, &s.val).expect("ensemble fits");

    let empty = ens.predict_batch(&Tensor::zeros(0, INPUT_LEN)).expect("empty batch is fine");
    assert_eq!(empty.shape(), (0, HORIZON));

    // 9 windows: one full sub-batch of 8 plus a ragged tail of 1 at the
    // deep path's staging granularity.
    let windows = sample_windows(s.test.target().values(), 9, 3);
    assert_batch_identity(&ens, &windows);
    assert_batch_identity(&ens, &windows[..1]);
}
