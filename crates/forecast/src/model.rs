//! The common forecasting interface (paper Definition 7).
//!
//! Every model consumes the `k = 96` previous timestamps and predicts the
//! next `h = 24` (§3.4). Models are fit once on the raw training subset and
//! then queried with (possibly lossy-transformed) input windows — exactly
//! the evaluation scenario of Algorithm 1.

use neural::state::StateDict;
use neural::tensor::Tensor;
use tsdata::series::MultiSeries;

/// Errors from fitting or predicting.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// `predict` was called before `fit`.
    NotFitted,
    /// The training series is too short for the configured window/horizon.
    TooShort { needed: usize, got: usize },
    /// An input window has the wrong length or channel count.
    BadWindow { expected: usize, got: usize },
    /// A numerical routine failed (e.g. a singular normal-equation system).
    Numerical(String),
    /// A state snapshot could not be produced or applied (wrong model kind,
    /// missing or malformed entries).
    InvalidState(String),
}

impl std::fmt::Display for ForecastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForecastError::NotFitted => write!(f, "model is not fitted"),
            ForecastError::TooShort { needed, got } => {
                write!(f, "series too short: need {needed} points, got {got}")
            }
            ForecastError::BadWindow { expected, got } => {
                write!(f, "bad input window: expected length {expected}, got {got}")
            }
            ForecastError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            ForecastError::InvalidState(msg) => write!(f, "invalid model state: {msg}"),
        }
    }
}

impl std::error::Error for ForecastError {}

/// A trained (or trainable) forecasting model `F` (Definition 7):
/// `ŷ_{t+1..t+h} = F(x_{t-k..t})`.
pub trait Forecaster: Send {
    /// Model name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Input window length `k` the model was configured with.
    fn input_len(&self) -> usize;

    /// Forecast horizon `h`.
    fn horizon(&self) -> usize;

    /// Fits on the training subset, using the validation subset for early
    /// stopping where applicable. Models scale inputs internally (§3.4's
    /// standard scaler) and always predict in original units.
    fn fit(&mut self, train: &MultiSeries, val: &MultiSeries) -> Result<(), ForecastError>;

    /// Predicts `horizon()` future target values from one input window.
    /// `inputs[ch]` is channel `ch`'s last `input_len()` values (channel 0
    /// is the target).
    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError>;

    /// Predicts every row of `windows` (`[n, input_len]` target-channel
    /// windows) at once, returning an `[n, horizon]` matrix whose row `i`
    /// is the forecast for window `i`.
    ///
    /// The default implementation loops [`Forecaster::predict`] row by row,
    /// so external implementations keep working unchanged; the in-tree
    /// models override it with natively batched paths that produce
    /// bit-identical outputs (the per-window path stays the reference
    /// oracle — see `forecast/tests/batch_identity.rs`).
    fn predict_batch(&self, windows: &Tensor) -> Result<Tensor, ForecastError> {
        validate_batch(windows, self.input_len())?;
        let k = self.input_len();
        let h = self.horizon();
        let mut out = Tensor::zeros(windows.rows(), h);
        for r in 0..windows.rows() {
            let row = windows.data()[r * k..(r + 1) * k].to_vec();
            let pred = self.predict(&[row])?;
            out.data_mut()[r * h..(r + 1) * h].copy_from_slice(&pred);
        }
        Ok(out)
    }

    /// Serializes the fitted state as named tensors, such that
    /// [`Forecaster::load_state`] on an identically configured model
    /// reproduces bit-identical predictions. Implementations must fail with
    /// [`ForecastError::NotFitted`] before `fit`.
    fn save_state(&self) -> Result<StateDict, ForecastError> {
        Err(ForecastError::InvalidState(format!("{} does not support state export", self.name())))
    }

    /// Restores a fitted state produced by [`Forecaster::save_state`] on an
    /// identically configured model, leaving this model fitted.
    fn load_state(&mut self, state: &StateDict) -> Result<(), ForecastError> {
        let _ = state;
        Err(ForecastError::InvalidState(format!("{} does not support state import", self.name())))
    }
}

/// Checks the batch-matrix invariant shared by every
/// [`Forecaster::predict_batch`] implementation: each row is one window of
/// the target channel, so the column count must equal `input_len`.
pub fn validate_batch(windows: &Tensor, input_len: usize) -> Result<(), ForecastError> {
    if windows.cols() != input_len {
        return Err(ForecastError::BadWindow { expected: input_len, got: windows.cols() });
    }
    Ok(())
}

/// Checks the standard window invariants shared by all implementations.
pub fn validate_window(inputs: &[Vec<f64>], input_len: usize) -> Result<(), ForecastError> {
    if inputs.is_empty() {
        return Err(ForecastError::BadWindow { expected: input_len, got: 0 });
    }
    for ch in inputs {
        if ch.len() != input_len {
            return Err(ForecastError::BadWindow { expected: input_len, got: ch.len() });
        }
    }
    Ok(())
}

/// The seven models in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// ARIMA with Fourier terms.
    Arima,
    /// Gradient boosting over regression trees.
    GBoost,
    /// Decomposition-linear network.
    DLinear,
    /// Encoder-decoder gated recurrent network.
    Gru,
    /// Informer (ProbSparse Transformer).
    Informer,
    /// NBeats residual MLP stacks.
    NBeats,
    /// Vanilla encoder-decoder Transformer.
    Transformer,
}

/// All models, in the paper's Table 2 order.
pub const ALL_MODELS: [ModelKind; 7] = [
    ModelKind::Arima,
    ModelKind::GBoost,
    ModelKind::DLinear,
    ModelKind::Gru,
    ModelKind::Informer,
    ModelKind::NBeats,
    ModelKind::Transformer,
];

impl ModelKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Arima => "Arima",
            ModelKind::GBoost => "GBoost",
            ModelKind::DLinear => "DLinear",
            ModelKind::Gru => "GRU",
            ModelKind::Informer => "Informer",
            ModelKind::NBeats => "NBeats",
            ModelKind::Transformer => "Transformer",
        }
    }

    /// Whether the model is a deep neural network (run with 10 seeds in the
    /// paper; simpler models use 5).
    pub fn is_deep(self) -> bool {
        !matches!(self, ModelKind::Arima | ModelKind::GBoost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_validation() {
        assert!(validate_window(&[vec![1.0; 96]], 96).is_ok());
        assert!(validate_window(&[], 96).is_err());
        assert!(validate_window(&[vec![1.0; 95]], 96).is_err());
        assert!(validate_window(&[vec![1.0; 96], vec![2.0; 10]], 96).is_err());
    }

    #[test]
    fn model_names_and_depth() {
        assert_eq!(ModelKind::Arima.name(), "Arima");
        assert_eq!(ALL_MODELS.len(), 7);
        assert!(!ModelKind::Arima.is_deep());
        assert!(!ModelKind::GBoost.is_deep());
        assert!(ModelKind::Transformer.is_deep());
        assert!(ModelKind::DLinear.is_deep());
    }
}
