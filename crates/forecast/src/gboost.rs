//! Least-squares gradient boosting (Friedman 2001) over CART regression
//! trees — the paper's GBoost model (§3.4), and also the regressor the
//! characteristics analysis trains to predict TFE (§4.3.1).
//!
//! Two layers: [`GbmRegressor`] is a generic `X → y` booster (reused by
//! `analysis::shap`); [`GBoost`] wraps it as a [`Forecaster`] using lag
//! features and recursive multi-step prediction.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;

use crate::model::{validate_batch, validate_window, ForecastError, Forecaster};
use crate::stateio;
use crate::tree::{BinnedFeatures, Node, RegressionTree, TreeConfig};

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GbmConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree limits.
    pub tree: TreeConfig,
    /// Row subsampling fraction per round (stochastic gradient boosting).
    pub subsample: f64,
    /// RNG seed for subsampling.
    pub seed: u64,
    /// Histogram bins for split finding; `None` = exact (per-node sorted)
    /// splits, which are slower on large training sets.
    pub bins: Option<usize>,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            n_estimators: 100,
            learning_rate: 0.1,
            tree: TreeConfig::default(),
            subsample: 1.0,
            seed: 0,
            bins: Some(64),
        }
    }
}

/// A fitted gradient-boosting ensemble for regression.
#[derive(Debug, Clone)]
pub struct GbmRegressor {
    base: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
    num_features: usize,
}

impl GbmRegressor {
    /// Fits on row-major `features` (`n × num_features`).
    ///
    /// # Panics
    /// Panics on shape mismatch or empty input.
    pub fn fit(features: &[f64], targets: &[f64], num_features: usize, config: GbmConfig) -> Self {
        let n = targets.len();
        assert!(n > 0, "empty training set");
        assert_eq!(features.len(), n * num_features, "feature matrix shape");
        let base = targets.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let mut trees = Vec::with_capacity(config.n_estimators);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut indices: Vec<usize> = (0..n).collect();
        let sub_n = ((n as f64 * config.subsample).round() as usize).clamp(1, n);
        let binned = config.bins.map(|b| BinnedFeatures::build(features, n, num_features, b));
        for _ in 0..config.n_estimators {
            // Negative gradient of squared loss = residual.
            let residuals: Vec<f64> = targets.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let chosen: &[usize] = if sub_n < n {
                indices.shuffle(&mut rng);
                &indices[..sub_n]
            } else {
                &indices
            };
            let tree = match &binned {
                Some(binned) => {
                    RegressionTree::fit_binned(binned, &residuals, chosen.to_vec(), config.tree)
                }
                None => {
                    let mut xf = Vec::with_capacity(chosen.len() * num_features);
                    let mut rf = Vec::with_capacity(chosen.len());
                    for &i in chosen {
                        xf.extend_from_slice(&features[i * num_features..(i + 1) * num_features]);
                        rf.push(residuals[i]);
                    }
                    RegressionTree::fit(&xf, &rf, num_features, config.tree)
                }
            };
            for (i, p) in pred.iter_mut().enumerate() {
                *p += config.learning_rate
                    * tree.predict(&features[i * num_features..(i + 1) * num_features]);
            }
            trees.push(tree);
        }
        GbmRegressor { base, trees, learning_rate: config.learning_rate, num_features }
    }

    /// Predicts one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.num_features);
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// The fitted trees (for TreeSHAP).
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// The constant base prediction.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Shrinkage factor applied per tree.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Rebuilds an ensemble from stored parts (state deserialization).
    pub fn from_parts(
        base: f64,
        trees: Vec<RegressionTree>,
        learning_rate: f64,
        num_features: usize,
    ) -> Self {
        GbmRegressor { base, trees, learning_rate, num_features }
    }
}

/// Multi-step strategy for [`GBoost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiStep {
    /// One booster per horizon step (no error feedback; the default).
    Direct,
    /// A single one-step booster applied recursively — cheaper to fit but
    /// drifts over long horizons (kept for the ablation bench).
    Recursive,
}

/// Forecasting configuration for [`GBoost`].
#[derive(Debug, Clone)]
pub struct GBoostConfig {
    /// Input window length `k`.
    pub input_len: usize,
    /// Forecast horizon `h`.
    pub horizon: usize,
    /// Boosting hyperparameters.
    pub gbm: GbmConfig,
    /// Stride between training windows (controls sample count).
    pub stride: usize,
    /// Cap on training windows (most recent kept).
    pub max_windows: usize,
    /// Multi-step strategy.
    pub strategy: MultiStep,
}

impl Default for GBoostConfig {
    fn default() -> Self {
        GBoostConfig {
            input_len: 96,
            horizon: 24,
            gbm: GbmConfig { n_estimators: 80, subsample: 0.8, ..Default::default() },
            stride: 2,
            max_windows: 4000,
            strategy: MultiStep::Direct,
        }
    }
}

/// The GBoost forecaster: boosters on lag features, multi-step via the
/// configured [`MultiStep`] strategy.
#[derive(Debug, Clone)]
pub struct GBoost {
    config: GBoostConfig,
    /// One booster per horizon step (Direct) or a single one (Recursive).
    models: Vec<GbmRegressor>,
    scaler: Option<StandardScaler>,
}

impl GBoost {
    /// Creates an unfitted model.
    pub fn new(config: GBoostConfig) -> Self {
        GBoost { config, models: Vec::new(), scaler: None }
    }
}

impl Forecaster for GBoost {
    fn name(&self) -> &'static str {
        "GBoost"
    }

    fn input_len(&self) -> usize {
        self.config.input_len
    }

    fn horizon(&self) -> usize {
        self.config.horizon
    }

    fn fit(&mut self, train: &MultiSeries, _val: &MultiSeries) -> Result<(), ForecastError> {
        let raw = train.target().values();
        let k = self.config.input_len;
        let h = self.config.horizon;
        if raw.len() < k + h + 10 {
            return Err(ForecastError::TooShort { needed: k + h + 10, got: raw.len() });
        }
        let scaler = StandardScaler::fit_single(raw);
        let y = scaler.transform(0, raw);
        // Lag-feature windows, sliding with stride; the targets cover the
        // full horizon so both strategies share the feature matrix.
        let mut starts: Vec<usize> =
            (0..y.len() - k - (h - 1)).step_by(self.config.stride).collect();
        if starts.len() > self.config.max_windows {
            starts = starts[starts.len() - self.config.max_windows..].to_vec();
        }
        let mut features = Vec::with_capacity(starts.len() * k);
        for &s in &starts {
            features.extend_from_slice(&y[s..s + k]);
        }
        self.models = match self.config.strategy {
            MultiStep::Recursive => {
                let targets: Vec<f64> = starts.iter().map(|&s| y[s + k]).collect();
                vec![GbmRegressor::fit(&features, &targets, k, self.config.gbm)]
            }
            MultiStep::Direct => (0..h)
                .map(|step| {
                    let targets: Vec<f64> = starts.iter().map(|&s| y[s + k + step]).collect();
                    let cfg = GbmConfig {
                        seed: self.config.gbm.seed.wrapping_add(step as u64),
                        ..self.config.gbm
                    };
                    GbmRegressor::fit(&features, &targets, k, cfg)
                })
                .collect(),
        };
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        if self.models.is_empty() {
            return Err(ForecastError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        validate_window(inputs, self.config.input_len)?;
        let window = scaler.transform(0, &inputs[0]);
        let out = match self.config.strategy {
            MultiStep::Direct => {
                self.models.iter().map(|m| m.predict(&window)).collect::<Vec<f64>>()
            }
            MultiStep::Recursive => {
                let model = &self.models[0];
                let mut window = window;
                let mut out = Vec::with_capacity(self.config.horizon);
                for _ in 0..self.config.horizon {
                    let next = model.predict(&window);
                    out.push(next);
                    window.rotate_left(1);
                    let last = window.len() - 1;
                    window[last] = next;
                }
                out
            }
        };
        Ok(scaler.inverse(0, &out))
    }

    fn predict_batch(
        &self,
        windows: &neural::tensor::Tensor,
    ) -> Result<neural::tensor::Tensor, ForecastError> {
        if self.models.is_empty() {
            return Err(ForecastError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        validate_batch(windows, self.config.input_len)?;
        let k = self.config.input_len;
        let h = self.config.horizon;
        let n = windows.rows();
        let mut out = neural::tensor::Tensor::zeros(n, h);
        match self.config.strategy {
            MultiStep::Direct => {
                let scaled: Vec<Vec<f64>> = (0..n)
                    .map(|r| scaler.transform(0, &windows.data()[r * k..(r + 1) * k]))
                    .collect();
                // Boosters outer, windows inner: each booster's tree nodes
                // stay hot in cache across the whole batch. Values match the
                // per-window loop because each (booster, window) prediction
                // is independent.
                for (step, m) in self.models.iter().enumerate() {
                    for (r, w) in scaled.iter().enumerate() {
                        out.data_mut()[r * h + step] = m.predict(w);
                    }
                }
                for r in 0..n {
                    let inv = scaler.inverse(0, &out.data()[r * h..(r + 1) * h]);
                    out.data_mut()[r * h..(r + 1) * h].copy_from_slice(&inv);
                }
            }
            MultiStep::Recursive => {
                // The feedback loop is inherently sequential per window.
                let model = &self.models[0];
                for r in 0..n {
                    let mut window = scaler.transform(0, &windows.data()[r * k..(r + 1) * k]);
                    let mut row = Vec::with_capacity(h);
                    for _ in 0..h {
                        let next = model.predict(&window);
                        row.push(next);
                        window.rotate_left(1);
                        let last = window.len() - 1;
                        window[last] = next;
                    }
                    out.data_mut()[r * h..(r + 1) * h].copy_from_slice(&scaler.inverse(0, &row));
                }
            }
        }
        Ok(out)
    }

    fn save_state(&self) -> Result<neural::state::StateDict, ForecastError> {
        if self.models.is_empty() {
            return Err(ForecastError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        let mut dict = neural::state::StateDict::new();
        stateio::put_tag(&mut dict, self.name());
        stateio::put_row(&mut dict, "gboost.num_models", &[self.models.len() as f64]);
        for (i, m) in self.models.iter().enumerate() {
            stateio::put_row(
                &mut dict,
                &format!("gboost.{i}.meta"),
                &[m.base(), m.learning_rate(), m.num_features() as f64, m.trees().len() as f64],
            );
            for (t, tree) in m.trees().iter().enumerate() {
                let mut flat = Vec::with_capacity(tree.nodes().len() * 6);
                for node in tree.nodes() {
                    match *node {
                        Node::Leaf { value, cover } => {
                            flat.extend_from_slice(&[0.0, value, 0.0, 0.0, 0.0, cover]);
                        }
                        Node::Split { feature, threshold, left, right, cover } => {
                            flat.extend_from_slice(&[
                                1.0,
                                feature as f64,
                                threshold,
                                left as f64,
                                right as f64,
                                cover,
                            ]);
                        }
                    }
                }
                let rows = tree.nodes().len();
                dict.insert(
                    &format!("gboost.{i}.tree{t}"),
                    neural::tensor::Tensor::new(rows, 6, flat),
                );
            }
        }
        stateio::put_scaler(&mut dict, "gboost.scaler", scaler);
        Ok(dict)
    }

    fn load_state(&mut self, state: &neural::state::StateDict) -> Result<(), ForecastError> {
        stateio::check_tag(state, self.name())?;
        let num_models =
            stateio::index(stateio::scalar(state, "gboost.num_models")?, "gboost model count")?;
        let expected = match self.config.strategy {
            MultiStep::Direct => self.config.horizon,
            MultiStep::Recursive => 1,
        };
        if num_models != expected {
            return Err(stateio::invalid(format!(
                "snapshot has {num_models} boosters, configuration needs {expected}"
            )));
        }
        let mut models = Vec::with_capacity(num_models);
        let mut entries = 4; // tag + num_models + scaler means/stds
        for i in 0..num_models {
            let meta = stateio::row(state, &format!("gboost.{i}.meta"))?;
            if meta.len() != 4 {
                return Err(stateio::invalid(format!("gboost.{i}.meta must hold 4 values")));
            }
            let num_features = stateio::index(meta[2], "gboost feature count")?;
            if num_features != self.config.input_len {
                return Err(stateio::invalid(format!(
                    "booster {i} expects {num_features} features, configuration has {}",
                    self.config.input_len
                )));
            }
            let num_trees = stateio::index(meta[3], "gboost tree count")?;
            entries += 1 + num_trees;
            let mut trees = Vec::with_capacity(num_trees);
            for t in 0..num_trees {
                let name = format!("gboost.{i}.tree{t}");
                let tensor = state
                    .get(&name)
                    .ok_or_else(|| stateio::invalid(format!("missing entry `{name}`")))?;
                let (rows, cols) = tensor.shape();
                if cols != 6 || rows == 0 {
                    return Err(stateio::invalid(format!("entry `{name}` must be n×6, n > 0")));
                }
                let mut nodes = Vec::with_capacity(rows);
                for row in tensor.data().chunks_exact(6) {
                    let node = match row[0] {
                        0.0 => Node::Leaf { value: row[1], cover: row[5] },
                        1.0 => {
                            let left = stateio::index(row[3], "tree left child")?;
                            let right = stateio::index(row[4], "tree right child")?;
                            if left >= rows || right >= rows {
                                return Err(stateio::invalid(format!(
                                    "entry `{name}` has a child index out of range"
                                )));
                            }
                            let feature = stateio::index(row[1], "tree split feature")?;
                            if feature >= num_features {
                                return Err(stateio::invalid(format!(
                                    "entry `{name}` splits on feature {feature} of {num_features}"
                                )));
                            }
                            Node::Split { feature, threshold: row[2], left, right, cover: row[5] }
                        }
                        tag => {
                            return Err(stateio::invalid(format!(
                                "entry `{name}` has unknown node tag {tag}"
                            )))
                        }
                    };
                    nodes.push(node);
                }
                trees.push(RegressionTree::from_parts(nodes, num_features));
            }
            models.push(GbmRegressor::from_parts(meta[0], trees, meta[1], num_features));
        }
        stateio::check_len(state, entries)?;
        let scaler = stateio::get_scaler(state, "gboost.scaler")?;
        self.models = models;
        self.scaler = Some(scaler);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 900, values).unwrap())
    }

    #[test]
    fn gbm_fits_nonlinear_function() {
        // y = x0^2 + step(x1)
        let n = 400;
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            let x0 = (i % 20) as f64 / 10.0 - 1.0;
            let x1 = ((i * 7) % 13) as f64 - 6.0;
            features.extend_from_slice(&[x0, x1]);
            targets.push(x0 * x0 + if x1 > 0.0 { 2.0 } else { 0.0 });
        }
        let gbm = GbmRegressor::fit(
            &features,
            &targets,
            2,
            GbmConfig { n_estimators: 120, ..Default::default() },
        );
        let mut sse = 0.0;
        for i in 0..n {
            let p = gbm.predict(&features[2 * i..2 * i + 2]);
            sse += (p - targets[i]) * (p - targets[i]);
        }
        let mse = sse / n as f64;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    fn gbm_more_trees_fit_better() {
        let n = 300;
        let features: Vec<f64> = (0..n).map(|i| i as f64 / 30.0).collect();
        let targets: Vec<f64> = features.iter().map(|x| (x * 2.0).sin()).collect();
        let mse = |rounds: usize| {
            let gbm = GbmRegressor::fit(
                &features,
                &targets,
                1,
                GbmConfig { n_estimators: rounds, ..Default::default() },
            );
            (0..n)
                .map(|i| {
                    let p = gbm.predict(&features[i..i + 1]);
                    (p - targets[i]) * (p - targets[i])
                })
                .sum::<f64>()
                / n as f64
        };
        assert!(mse(100) < mse(5));
    }

    #[test]
    fn gbm_base_is_mean_with_zero_trees() {
        let gbm = GbmRegressor::fit(
            &[1.0, 2.0, 3.0],
            &[10.0, 20.0, 30.0],
            1,
            GbmConfig { n_estimators: 0, ..Default::default() },
        );
        assert_eq!(gbm.predict(&[2.0]), 20.0);
        assert!(gbm.trees().is_empty());
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let n = 200;
        let features: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let targets: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let fit = |seed| {
            GbmRegressor::fit(
                &features,
                &targets,
                1,
                GbmConfig { n_estimators: 10, subsample: 0.5, seed, ..Default::default() },
            )
            .predict(&[0.3])
        };
        assert_eq!(fit(1), fit(1));
        assert_ne!(fit(1), fit(2));
    }

    #[test]
    fn forecaster_learns_seasonal_pattern() {
        let n = 2000;
        let data: Vec<f64> =
            (0..n).map(|i| 10.0 + 3.0 * (i as f64 / 24.0 * std::f64::consts::TAU).sin()).collect();
        let (train, test) = data.split_at(1600);
        let mut model =
            GBoost::new(GBoostConfig { input_len: 48, horizon: 12, ..Default::default() });
        model.fit(&uni(train.to_vec()), &uni(test.to_vec())).unwrap();
        let window = test[..48].to_vec();
        let actual = &test[48..60];
        let pred = model.predict(&[window]).unwrap();
        let rmse = tsdata::metrics::rmse(actual, &pred);
        assert!(rmse < 1.0, "rmse {rmse}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = GBoost::new(GBoostConfig::default());
        assert_eq!(m.predict(&[vec![0.0; 96]]).unwrap_err(), ForecastError::NotFitted);
    }

    #[test]
    fn window_length_validated() {
        let data: Vec<f64> = (0..800).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut m = GBoost::new(GBoostConfig { input_len: 48, horizon: 8, ..Default::default() });
        m.fit(&uni(data.clone()), &uni(data)).unwrap();
        assert!(matches!(m.predict(&[vec![0.0; 3]]).unwrap_err(), ForecastError::BadWindow { .. }));
    }
}
