//! Shared scaffolding for the deep forecasters (§3.4: standard scaler on
//! inputs, input 96, horizon 24, Adam with early stopping).
//!
//! The window-batching machinery itself lives in [`crate::batch`], where it
//! is shared with the evaluation grid's batched inference path; this module
//! re-exports it so existing training-side callers keep compiling.

use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;

pub use crate::batch::{make_batches, stage_windows, Batch, BatchSpec};
use crate::model::ForecastError;

/// Validates the training series is long enough and fits the scaler on the
/// raw training target.
pub fn prepare(
    train: &MultiSeries,
    input_len: usize,
    horizon: usize,
) -> Result<StandardScaler, ForecastError> {
    let needed = input_len + horizon + 1;
    if train.len() < needed {
        return Err(ForecastError::TooShort { needed, got: train.len() });
    }
    Ok(StandardScaler::fit_single(train.target().values()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(n: usize) -> MultiSeries {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 60, vals).unwrap())
    }

    #[test]
    fn too_short_rejected() {
        assert!(prepare(&uni(20), 96, 24).is_err());
    }
}
