//! Shared machinery for the deep forecasters: scaled window batching and
//! the common fit/predict scaffolding (§3.4: standard scaler on inputs,
//! input 96, horizon 24, Adam with early stopping).

use neural::tensor::Tensor;
use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;
use tsdata::split::make_windows;

use crate::model::ForecastError;

/// One training batch: inputs `[batch, input_len]` and targets
/// `[batch, horizon]`, both in scaled units (target channel only).
#[derive(Debug, Clone)]
pub struct Batch {
    /// Scaled input windows.
    pub x: Tensor,
    /// Scaled target horizons.
    pub y: Tensor,
}

/// Batching limits for deep-model training.
#[derive(Debug, Clone, Copy)]
pub struct BatchSpec {
    /// Window stride over the training series.
    pub stride: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Cap on total windows (most recent kept).
    pub max_windows: usize,
}

impl Default for BatchSpec {
    fn default() -> Self {
        BatchSpec { stride: 4, batch_size: 16, max_windows: 1200 }
    }
}

/// Builds scaled batches from a series' target channel.
pub fn make_batches(
    data: &MultiSeries,
    scaler: &StandardScaler,
    input_len: usize,
    horizon: usize,
    spec: BatchSpec,
) -> Vec<Batch> {
    let mut windows = make_windows(data, input_len, horizon, spec.stride);
    if windows.len() > spec.max_windows {
        windows = windows.split_off(windows.len() - spec.max_windows);
    }
    windows
        .chunks(spec.batch_size)
        .map(|chunk| {
            let n = chunk.len();
            let mut x = Tensor::zeros(n, input_len);
            let mut y = Tensor::zeros(n, horizon);
            for (r, w) in chunk.iter().enumerate() {
                let xi = scaler.transform(0, &w.inputs[0]);
                let yi = scaler.transform(0, &w.target);
                x.data_mut()[r * input_len..(r + 1) * input_len].copy_from_slice(&xi);
                y.data_mut()[r * horizon..(r + 1) * horizon].copy_from_slice(&yi);
            }
            Batch { x, y }
        })
        .collect()
}

/// Validates the training series is long enough and fits the scaler on the
/// raw training target.
pub fn prepare(
    train: &MultiSeries,
    input_len: usize,
    horizon: usize,
) -> Result<StandardScaler, ForecastError> {
    let needed = input_len + horizon + 1;
    if train.len() < needed {
        return Err(ForecastError::TooShort { needed, got: train.len() });
    }
    Ok(StandardScaler::fit_single(train.target().values()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(n: usize) -> MultiSeries {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 60, vals).unwrap())
    }

    #[test]
    fn batches_have_scaled_values() {
        let data = uni(200);
        let scaler = prepare(&data, 24, 8).unwrap();
        let spec = BatchSpec { stride: 8, batch_size: 4, max_windows: 100 };
        let batches = make_batches(&data, &scaler, 24, 8, spec);
        assert!(!batches.is_empty());
        let b = &batches[0];
        assert_eq!(b.x.shape().1, 24);
        assert_eq!(b.y.shape().1, 8);
        // Scaled data of a 0..200 ramp lies within ~[-2, 2].
        assert!(b.x.data().iter().all(|v| v.abs() < 2.5));
        // Target continues the input: scaled(y[0]) follows scaled(x[last]).
        assert!(b.y.get(0, 0) > b.x.get(0, 23));
    }

    #[test]
    fn max_windows_keeps_most_recent() {
        let data = uni(500);
        let scaler = prepare(&data, 10, 2).unwrap();
        let spec = BatchSpec { stride: 1, batch_size: 100, max_windows: 50 };
        let batches = make_batches(&data, &scaler, 10, 2, spec);
        let total: usize = batches.iter().map(|b| b.x.rows()).sum();
        assert_eq!(total, 50);
        // Most recent windows have the largest values.
        let last_batch = batches.last().expect("non-empty");
        assert!(last_batch.x.get(last_batch.x.rows() - 1, 9) > 1.0);
    }

    #[test]
    fn too_short_rejected() {
        assert!(prepare(&uni(20), 96, 24).is_err());
    }
}
