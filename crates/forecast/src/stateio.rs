//! Shared helpers for encoding model state into [`StateDict`]s.
//!
//! Every model serializes to named `f64` tensors only: scalars become
//! `1×1` tensors, index vectors store exact integers as `f64` (lossless up
//! to 2^53, far beyond any tree index or ARMA order here), and a
//! `meta.model` tag carries the model name so a snapshot cannot be loaded
//! into the wrong forecaster kind.

use neural::graph::ParamStore;
use neural::state::StateDict;
use neural::tensor::Tensor;
use tsdata::scaler::StandardScaler;

use crate::model::ForecastError;

/// Name of the model-kind tag entry.
pub(crate) const MODEL_TAG: &str = "meta.model";
/// Prefix under which network parameters are stored.
pub(crate) const PARAM_PREFIX: &str = "param.";

pub(crate) fn invalid(msg: impl Into<String>) -> ForecastError {
    ForecastError::InvalidState(msg.into())
}

/// Stores `values` as a `1×n` tensor (possibly empty).
pub(crate) fn put_row(dict: &mut StateDict, name: &str, values: &[f64]) {
    dict.insert(name, Tensor::new(1, values.len(), values.to_vec()));
}

/// Fetches an entry of any shape as a flat slice.
pub(crate) fn row<'d>(dict: &'d StateDict, name: &str) -> Result<&'d [f64], ForecastError> {
    dict.get(name).map(Tensor::data).ok_or_else(|| invalid(format!("missing entry `{name}`")))
}

/// Fetches a single-element entry.
pub(crate) fn scalar(dict: &StateDict, name: &str) -> Result<f64, ForecastError> {
    let data = row(dict, name)?;
    if data.len() != 1 {
        return Err(invalid(format!("entry `{name}` has {} values, expected 1", data.len())));
    }
    Ok(data[0])
}

/// Interprets `v` as an exact non-negative integer.
pub(crate) fn index(v: f64, what: &str) -> Result<usize, ForecastError> {
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > 2f64.powi(53) {
        return Err(invalid(format!("{what} is not a valid index: {v}")));
    }
    Ok(v as usize)
}

/// Stores the scaler as `{prefix}.means` / `{prefix}.stds`.
pub(crate) fn put_scaler(dict: &mut StateDict, prefix: &str, scaler: &StandardScaler) {
    let n = scaler.num_channels();
    let means: Vec<f64> = (0..n).map(|c| scaler.mean_of(c)).collect();
    let stds: Vec<f64> = (0..n).map(|c| scaler.std_of(c)).collect();
    put_row(dict, &format!("{prefix}.means"), &means);
    put_row(dict, &format!("{prefix}.stds"), &stds);
}

/// Restores a scaler stored by [`put_scaler`].
pub(crate) fn get_scaler(dict: &StateDict, prefix: &str) -> Result<StandardScaler, ForecastError> {
    let means = row(dict, &format!("{prefix}.means"))?.to_vec();
    let stds = row(dict, &format!("{prefix}.stds"))?.to_vec();
    if means.len() != stds.len() {
        return Err(invalid(format!("scaler `{prefix}` means/stds length mismatch")));
    }
    Ok(StandardScaler::from_parts(means, stds))
}

/// Tags the dict with the producing model's name.
pub(crate) fn put_tag(dict: &mut StateDict, model_name: &str) {
    let bytes: Vec<f64> = model_name.bytes().map(f64::from).collect();
    put_row(dict, MODEL_TAG, &bytes);
}

/// Rejects snapshots produced by a different model kind.
pub(crate) fn check_tag(dict: &StateDict, expected: &str) -> Result<(), ForecastError> {
    let bytes = row(dict, MODEL_TAG)?;
    let found: String = bytes
        .iter()
        .map(|&b| {
            if (0.0..256.0).contains(&b) && b.fract() == 0.0 {
                Ok(b as u8 as char)
            } else {
                Err(invalid("malformed model tag"))
            }
        })
        .collect::<Result<String, _>>()?;
    if found != expected {
        return Err(invalid(format!("snapshot is for model `{found}`, expected `{expected}`")));
    }
    Ok(())
}

/// Exports every store parameter under `param.{name}`.
pub(crate) fn put_params(dict: &mut StateDict, store: &ParamStore) {
    for id in store.ids() {
        dict.insert(&format!("{PARAM_PREFIX}{}", store.name(id)), store.value(id).clone());
    }
}

/// Imports every store parameter from `param.{name}` entries, requiring
/// exact shapes. The store must already have the target architecture
/// (rebuilt with the model's seeded constructor).
pub(crate) fn get_params(store: &mut ParamStore, dict: &StateDict) -> Result<(), ForecastError> {
    for id in store.ids().collect::<Vec<_>>() {
        let name = format!("{PARAM_PREFIX}{}", store.name(id));
        let src = dict.get(&name).ok_or_else(|| invalid(format!("missing entry `{name}`")))?;
        let expected = store.value(id).shape();
        if src.shape() != expected {
            return Err(invalid(format!(
                "entry `{name}` has shape {}x{}, expected {}x{}",
                src.shape().0,
                src.shape().1,
                expected.0,
                expected.1
            )));
        }
        *store.value_mut(id) = src.clone();
    }
    Ok(())
}

/// Rejects dicts holding more entries than `expected` — a cheap guard
/// against snapshots from a differently sized architecture whose extra
/// tensors would otherwise be silently ignored.
pub(crate) fn check_len(dict: &StateDict, expected: usize) -> Result<(), ForecastError> {
    if dict.len() != expected {
        return Err(invalid(format!("snapshot has {} entries, expected {expected}", dict.len())));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_and_mismatch() {
        let mut dict = StateDict::new();
        put_tag(&mut dict, "GRU");
        assert!(check_tag(&dict, "GRU").is_ok());
        let err = check_tag(&dict, "Arima").unwrap_err();
        assert!(matches!(err, ForecastError::InvalidState(_)));
    }

    #[test]
    fn scaler_roundtrip() {
        let sc = StandardScaler::fit(&[&[1.0, 3.0][..], &[10.0, 30.0][..]]);
        let mut dict = StateDict::new();
        put_scaler(&mut dict, "scaler", &sc);
        let back = get_scaler(&dict, "scaler").unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn index_rejects_non_integers() {
        assert_eq!(index(3.0, "x").unwrap(), 3);
        assert!(index(3.5, "x").is_err());
        assert!(index(-1.0, "x").is_err());
        assert!(index(f64::NAN, "x").is_err());
    }

    #[test]
    fn params_roundtrip_via_prefix() {
        let mut store = ParamStore::new();
        store.add("a.w", Tensor::full(2, 2, 5.0));
        let mut dict = StateDict::new();
        put_params(&mut dict, &store);
        assert!(dict.contains("param.a.w"));

        let mut other = ParamStore::new();
        let id = other.add("a.w", Tensor::zeros(2, 2));
        get_params(&mut other, &dict).unwrap();
        assert_eq!(other.value(id).data(), &[5.0; 4]);

        let mut wrong = ParamStore::new();
        wrong.add("a.w", Tensor::zeros(3, 2));
        assert!(get_params(&mut wrong, &dict).is_err());
    }
}
