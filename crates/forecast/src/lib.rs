//! # forecast — the paper's seven forecasting models
//!
//! All models implement [`model::Forecaster`] (fit on raw training data,
//! predict `horizon` values from a `input_len`-point window):
//!
//! | Paper name | Module | Substrate |
//! |---|---|---|
//! | Arima | [`arima`] | Hannan–Rissanen + AIC + Fourier terms |
//! | GBoost | [`gboost`] | CART trees ([`tree`]) + gradient boosting |
//! | DLinear | [`dlinear`] | moving-average decomposition + linear heads |
//! | GRU | [`gru`] | encoder-decoder GRU (`neural::rnn`) |
//! | NBeats | [`nbeats`] | residual MLP stacks |
//! | Transformer | [`transformer`] | full attention [`seq2seq`] |
//! | Informer | [`informer`] | ProbSparse attention [`seq2seq`] |
//!
//! [`build_model`] constructs any of them from a [`model::ModelKind`] with
//! either laptop-scale (`Profile::Fast`) or paper-scale (`Profile::Paper`)
//! hyperparameters.

pub mod arima;
pub mod batch;
pub mod deep;
pub mod dlinear;
pub mod ensemble;
pub mod gboost;
pub mod gru;
pub mod informer;
pub mod linalg;
pub mod model;
pub mod nbeats;
pub mod seq2seq;
mod stateio;
pub mod transformer;
pub mod tree;

pub use arima::{Arima, ArimaConfig};
pub use dlinear::{DLinear, DLinearConfig};
pub use ensemble::{Combine, Ensemble};
pub use gboost::{GBoost, GBoostConfig, GbmConfig, GbmRegressor};
pub use gru::{Gru, GruConfig};
pub use model::{ForecastError, Forecaster, ModelKind, ALL_MODELS};
pub use neural::state::{StateDict, StateError};
pub use seq2seq::{Seq2Seq, Seq2SeqConfig};
pub use tree::{Node, RegressionTree, TreeConfig};

use neural::train::TrainConfig;

use crate::deep::BatchSpec;

/// Model size / compute profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small widths and few epochs — the repro default; qualitative
    /// behaviour (relative resilience to compression) is preserved.
    Fast,
    /// Paper-scale widths and training budgets.
    Paper,
}

/// Common build options for [`build_model`].
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Input window length `k` (paper: 96).
    pub input_len: usize,
    /// Forecast horizon `h` (paper: 24).
    pub horizon: usize,
    /// Seasonal period in samples (used by Arima's Fourier terms).
    pub season: Option<usize>,
    /// Random seed (initialization + shuffling).
    pub seed: u64,
    /// Size profile.
    pub profile: Profile,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { input_len: 96, horizon: 24, season: None, seed: 42, profile: Profile::Fast }
    }
}

/// Constructs a forecaster of the given kind.
pub fn build_model(kind: ModelKind, opts: BuildOptions) -> Box<dyn Forecaster> {
    let paper = opts.profile == Profile::Paper;
    let train = TrainConfig {
        max_epochs: if paper { 40 } else { 8 },
        patience: 3,
        seed: opts.seed,
        model: kind.name(),
        ..Default::default()
    };
    let batches = if paper {
        // Stride 2 halves the (heavily overlapping) window count; the cap
        // keeps the slowest models (per-sample attention) in CPU-hours.
        BatchSpec { stride: 2, batch_size: 32, max_windows: 8_000 }
    } else {
        BatchSpec::default()
    };
    match kind {
        ModelKind::Arima => Box::new(Arima::new(ArimaConfig {
            input_len: opts.input_len,
            horizon: opts.horizon,
            season: opts.season,
            max_train: if paper { 20_000 } else { 4_000 },
            ..Default::default()
        })),
        ModelKind::GBoost => Box::new(GBoost::new(GBoostConfig {
            input_len: opts.input_len,
            horizon: opts.horizon,
            gbm: GbmConfig {
                n_estimators: if paper { 200 } else { 60 },
                seed: opts.seed,
                subsample: 0.8,
                ..Default::default()
            },
            stride: if paper { 1 } else { 3 },
            max_windows: if paper { 20_000 } else { 3_000 },
            strategy: gboost::MultiStep::Direct,
        })),
        ModelKind::DLinear => Box::new(DLinear::new(DLinearConfig {
            input_len: opts.input_len,
            horizon: opts.horizon,
            batches,
            train: TrainConfig { max_epochs: if paper { 60 } else { 25 }, ..train },
            ..Default::default()
        })),
        ModelKind::Gru => Box::new(Gru::new(GruConfig {
            input_len: opts.input_len,
            horizon: opts.horizon,
            hidden: if paper { 64 } else { 16 },
            batches,
            train,
            ..Default::default()
        })),
        ModelKind::NBeats => Box::new(nbeats::NBeats::new(nbeats::NBeatsConfig {
            input_len: opts.input_len,
            horizon: opts.horizon,
            blocks: if paper { 6 } else { 2 },
            width: if paper { 128 } else { 32 },
            batches,
            train: TrainConfig { max_epochs: if paper { 40 } else { 15 }, ..train },
            ..Default::default()
        })),
        ModelKind::Transformer => {
            let base = Seq2SeqConfig::transformer();
            Box::new(transformer::transformer(Seq2SeqConfig {
                input_len: opts.input_len,
                horizon: opts.horizon,
                label_len: (opts.horizon).min(opts.input_len),
                d_model: if paper { 32 } else { 16 },
                train,
                ..base
            }))
        }
        ModelKind::Informer => {
            let base = Seq2SeqConfig::informer();
            Box::new(informer::informer(Seq2SeqConfig {
                input_len: opts.input_len,
                horizon: opts.horizon,
                label_len: (opts.horizon).min(opts.input_len),
                d_model: if paper { 32 } else { 16 },
                train,
                ..base
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all_models() {
        for kind in ALL_MODELS {
            let m = build_model(kind, BuildOptions::default());
            assert_eq!(m.name(), kind.name());
            assert_eq!(m.input_len(), 96);
            assert_eq!(m.horizon(), 24);
        }
    }

    #[test]
    fn factory_respects_window_options() {
        let m = build_model(
            ModelKind::DLinear,
            BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
        );
        assert_eq!(m.input_len(), 48);
        assert_eq!(m.horizon(), 12);
    }
}
