//! DLinear (Zeng et al., AAAI 2023): decompose the input window into trend
//! (moving average) and remainder, apply one linear layer per component,
//! and sum the two forecasts. The paper highlights DLinear's sensitivity to
//! compression-induced distortion of the *remainder* component (§4.4.1);
//! this implementation exposes the same decomposition for that analysis.

use neural::graph::ParamStore;
use neural::layers::{Activation, Dense};
use neural::tensor::Tensor;
use neural::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;

use crate::batch::{inverse_rows, scale_rows};
use crate::deep::{make_batches, prepare, Batch, BatchSpec};
use crate::model::{validate_batch, validate_window, ForecastError, Forecaster};
use crate::stateio;

/// DLinear configuration.
#[derive(Debug, Clone)]
pub struct DLinearConfig {
    /// Input window length `k`.
    pub input_len: usize,
    /// Forecast horizon `h`.
    pub horizon: usize,
    /// Moving-average kernel of the trend decomposition (paper default 25).
    pub kernel: usize,
    /// Batching limits.
    pub batches: BatchSpec,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for DLinearConfig {
    fn default() -> Self {
        DLinearConfig {
            input_len: 96,
            horizon: 24,
            kernel: 25,
            batches: BatchSpec::default(),
            train: TrainConfig::default(),
        }
    }
}

/// Moving-average decomposition of one window: returns `(trend, remainder)`.
/// The window is edge-padded so the trend has the same length, exactly as
/// DLinear's `series_decomp` does.
pub fn decompose(window: &[f64], kernel: usize) -> (Vec<f64>, Vec<f64>) {
    let n = window.len();
    let k = kernel.max(1).min(2 * n);
    let half_front = (k - 1) / 2;
    let half_back = k / 2;
    let mut padded = Vec::with_capacity(n + k);
    padded.extend(std::iter::repeat_n(window[0], half_front));
    padded.extend_from_slice(window);
    padded.extend(std::iter::repeat_n(window[n - 1], half_back));
    let mut trend = Vec::with_capacity(n);
    let mut sum: f64 = padded[..k].iter().sum();
    trend.push(sum / k as f64);
    for t in 1..n {
        sum += padded[t + k - 1] - padded[t - 1];
        trend.push(sum / k as f64);
    }
    let remainder: Vec<f64> = window.iter().zip(&trend).map(|(v, t)| v - t).collect();
    (trend, remainder)
}

/// Row-wise [`decompose`] over a whole batch of windows.
fn decompose_batch(x: &Tensor, kernel: usize) -> (Tensor, Tensor) {
    let (n, k) = x.shape();
    let mut trend = Tensor::zeros(n, k);
    let mut rem = Tensor::zeros(n, k);
    for r in 0..n {
        let row = &x.data()[r * k..(r + 1) * k];
        let (t, m) = decompose(row, kernel);
        trend.data_mut()[r * k..(r + 1) * k].copy_from_slice(&t);
        rem.data_mut()[r * k..(r + 1) * k].copy_from_slice(&m);
    }
    (trend, rem)
}

/// The DLinear forecaster.
pub struct DLinear {
    config: DLinearConfig,
    store: ParamStore,
    trend_layer: Option<Dense>,
    remainder_layer: Option<Dense>,
    scaler: Option<StandardScaler>,
}

impl DLinear {
    /// Creates an unfitted model.
    pub fn new(config: DLinearConfig) -> Self {
        DLinear {
            config,
            store: ParamStore::new(),
            trend_layer: None,
            remainder_layer: None,
            scaler: None,
        }
    }

    /// Builds the seeded layer structure. Shared by `fit` and `load_state`
    /// so a restored model has the exact architecture the fit produced.
    fn build_layers(&self) -> (ParamStore, Dense, Dense) {
        let mut rng = StdRng::seed_from_u64(self.config.train.seed);
        let mut store = ParamStore::new();
        let trend_layer = Dense::new(
            &mut store,
            "trend",
            self.config.input_len,
            self.config.horizon,
            Activation::Identity,
            &mut rng,
        );
        let remainder_layer = Dense::new(
            &mut store,
            "remainder",
            self.config.input_len,
            self.config.horizon,
            Activation::Identity,
            &mut rng,
        );
        (store, trend_layer, remainder_layer)
    }
}

impl Forecaster for DLinear {
    fn name(&self) -> &'static str {
        "DLinear"
    }

    fn input_len(&self) -> usize {
        self.config.input_len
    }

    fn horizon(&self) -> usize {
        self.config.horizon
    }

    fn fit(&mut self, train_data: &MultiSeries, val: &MultiSeries) -> Result<(), ForecastError> {
        let scaler = prepare(train_data, self.config.input_len, self.config.horizon)?;
        let train_batches = make_batches(
            train_data,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );
        if train_batches.is_empty() {
            return Err(ForecastError::TooShort {
                needed: self.config.input_len + self.config.horizon,
                got: train_data.len(),
            });
        }
        let val_batches = make_batches(
            val,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );

        let (mut store, trend_layer, remainder_layer) = self.build_layers();

        let decompose_all = |batches: &[Batch]| -> Vec<(Tensor, Tensor, Tensor)> {
            batches
                .iter()
                .map(|b| {
                    let (t, m) = decompose_batch(&b.x, self.config.kernel);
                    (t, m, b.y.clone())
                })
                .collect()
        };
        let train_dec = decompose_all(&train_batches);
        let val_dec = decompose_all(&val_batches);

        train(
            &mut store,
            self.config.train,
            train_dec.len(),
            val_dec.len(),
            |g, s, b, training, _rng| {
                let (t, m, y) = if training { &train_dec[b] } else { &val_dec[b] };
                let ti = g.input(t.clone());
                let mi = g.input(m.clone());
                let ft = trend_layer.forward(g, s, ti);
                let fm = remainder_layer.forward(g, s, mi);
                let pred = g.add(ft, fm);
                g.mse(pred, y)
            },
        );

        self.store = store;
        self.trend_layer = Some(trend_layer);
        self.remainder_layer = Some(remainder_layer);
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        let (Some(tl), Some(ml), Some(scaler)) =
            (&self.trend_layer, &self.remainder_layer, &self.scaler)
        else {
            return Err(ForecastError::NotFitted);
        };
        validate_window(inputs, self.config.input_len)?;
        let x = scaler.transform(0, &inputs[0]);
        let xt = Tensor::row(&x);
        let (trend, rem) = decompose_batch(&xt, self.config.kernel);
        let mut g = neural::graph::Graph::new();
        let ti = g.input(trend);
        let mi = g.input(rem);
        let ft = tl.forward(&mut g, &self.store, ti);
        let fm = ml.forward(&mut g, &self.store, mi);
        let pred = g.add(ft, fm);
        Ok(scaler.inverse(0, g.value(pred).data()))
    }

    fn predict_batch(&self, windows: &Tensor) -> Result<Tensor, ForecastError> {
        let (Some(tl), Some(ml), Some(scaler)) =
            (&self.trend_layer, &self.remainder_layer, &self.scaler)
        else {
            return Err(ForecastError::NotFitted);
        };
        validate_batch(windows, self.config.input_len)?;
        if windows.rows() == 0 {
            return Ok(Tensor::zeros(0, self.config.horizon));
        }
        let x = scale_rows(windows, scaler);
        let (trend, rem) = decompose_batch(&x, self.config.kernel);
        let mut g = neural::graph::Graph::new();
        let ti = g.input(trend);
        let mi = g.input(rem);
        let ft = tl.forward(&mut g, &self.store, ti);
        let fm = ml.forward(&mut g, &self.store, mi);
        let pred = g.add(ft, fm);
        Ok(inverse_rows(g.value(pred), scaler))
    }

    fn save_state(&self) -> Result<neural::state::StateDict, ForecastError> {
        if self.trend_layer.is_none() {
            return Err(ForecastError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        let mut dict = neural::state::StateDict::new();
        stateio::put_tag(&mut dict, self.name());
        stateio::put_scaler(&mut dict, "scaler", scaler);
        stateio::put_params(&mut dict, &self.store);
        Ok(dict)
    }

    fn load_state(&mut self, state: &neural::state::StateDict) -> Result<(), ForecastError> {
        stateio::check_tag(state, self.name())?;
        let scaler = stateio::get_scaler(state, "scaler")?;
        let (mut store, trend_layer, remainder_layer) = self.build_layers();
        stateio::check_len(state, store.len() + 3)?;
        stateio::get_params(&mut store, state)?;
        self.store = store;
        self.trend_layer = Some(trend_layer);
        self.remainder_layer = Some(remainder_layer);
        self.scaler = Some(scaler);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 900, values).unwrap())
    }

    #[test]
    fn decompose_flat_line() {
        let (t, r) = decompose(&[5.0; 10], 5);
        assert!(t.iter().all(|&v| (v - 5.0).abs() < 1e-12));
        assert!(r.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn decompose_separates_trend_and_oscillation() {
        // Linear trend + fast oscillation: the MA should capture the trend.
        let window: Vec<f64> =
            (0..100).map(|i| i as f64 * 0.1 + if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let (trend, rem) = decompose(&window, 11);
        // Away from the edges, trend ≈ linear ramp and remainder ≈ ±1.
        for i in 20..80 {
            assert!((trend[i] - i as f64 * 0.1).abs() < 0.15, "trend[{i}]={}", trend[i]);
            assert!((rem[i].abs() - 1.0).abs() < 0.15, "rem[{i}]={}", rem[i]);
        }
    }

    #[test]
    fn decompose_sum_reconstructs() {
        let window: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin() * 3.0).collect();
        let (t, r) = decompose(&window, 25);
        for i in 0..50 {
            assert!((t[i] + r[i] - window[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn learns_seasonal_series() {
        let n = 1200;
        let data: Vec<f64> =
            (0..n).map(|i| 10.0 + 3.0 * (i as f64 / 24.0 * std::f64::consts::TAU).sin()).collect();
        let (tr, rest) = data.split_at(900);
        let (va, te) = rest.split_at(150);
        let mut model = DLinear::new(DLinearConfig {
            input_len: 48,
            horizon: 12,
            train: TrainConfig { max_epochs: 40, ..Default::default() },
            ..Default::default()
        });
        model.fit(&uni(tr.to_vec()), &uni(va.to_vec())).unwrap();
        let window = te[..48].to_vec();
        let actual = &te[48..60];
        let pred = model.predict(&[window]).unwrap();
        let rmse = tsdata::metrics::rmse(actual, &pred);
        assert!(rmse < 1.0, "rmse {rmse}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = DLinear::new(DLinearConfig::default());
        assert_eq!(m.predict(&[vec![0.0; 96]]).unwrap_err(), ForecastError::NotFitted);
    }

    #[test]
    fn seeded_training_is_deterministic() {
        let data: Vec<f64> = (0..600).map(|i| (i as f64 * 0.2).sin()).collect();
        let run = || {
            let mut m = DLinear::new(DLinearConfig {
                input_len: 24,
                horizon: 6,
                train: TrainConfig { max_epochs: 3, ..Default::default() },
                ..Default::default()
            });
            m.fit(&uni(data[..400].to_vec()), &uni(data[400..500].to_vec())).unwrap();
            m.predict(&[data[500..524].to_vec()]).unwrap()
        };
        assert_eq!(run(), run());
    }
}
