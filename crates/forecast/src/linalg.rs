//! Small dense linear-algebra routines for the statistical models:
//! Gaussian-elimination solves and ordinary least squares with ridge
//! fallback. Kept local to `forecast` — the neural crate deliberately has
//! no solver dependency.

use crate::model::ForecastError;

/// Solves `A x = b` for square `A` (row-major, `n×n`) by Gaussian
/// elimination with partial pivoting.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, ForecastError> {
    assert_eq!(a.len(), n * n, "A must be n×n");
    assert_eq!(b.len(), n, "b must be length n");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if m[r * n + col].abs() > m[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return Err(ForecastError::Numerical(format!("singular at column {col}")));
        }
        if pivot != col {
            for c in 0..n {
                m.swap(col * n + c, pivot * n + c);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        for r in col + 1..n {
            let f = m[r * n + col] / m[col * n + col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                m[r * n + c] -= f * m[col * n + c];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = rhs[r];
        for c in r + 1..n {
            s -= m[r * n + c] * x[c];
        }
        x[r] = s / m[r * n + r];
    }
    Ok(x)
}

/// Ordinary least squares: finds `beta` minimizing `||X beta - y||²` via the
/// normal equations with a tiny ridge term for conditioning.
///
/// `x` is row-major `rows × cols`.
pub fn lstsq(x: &[f64], y: &[f64], rows: usize, cols: usize) -> Result<Vec<f64>, ForecastError> {
    assert_eq!(x.len(), rows * cols, "X shape mismatch");
    assert_eq!(y.len(), rows, "y length mismatch");
    if rows < cols {
        return Err(ForecastError::Numerical(format!(
            "underdetermined system: {rows} rows, {cols} cols"
        )));
    }
    // Normal equations: (XᵀX + λI) beta = Xᵀ y.
    let mut xtx = vec![0.0; cols * cols];
    let mut xty = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
            for j in i..cols {
                xtx[i * cols + j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle and regularize.
    let lambda = 1e-12 * (0..cols).map(|i| xtx[i * cols + i]).fold(0.0f64, f64::max).max(1.0);
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
        xtx[i * cols + i] += lambda;
    }
    solve(&xtx, &xty, cols)
}

/// OLS with coefficient standard errors, for the paper's Table 3 regression
/// (`CR = θ1·TE + θ0`). Returns `(beta, se)`.
pub fn lstsq_with_se(
    x: &[f64],
    y: &[f64],
    rows: usize,
    cols: usize,
) -> Result<(Vec<f64>, Vec<f64>), ForecastError> {
    let beta = lstsq(x, y, rows, cols)?;
    if rows <= cols {
        return Ok((beta.clone(), vec![f64::INFINITY; cols]));
    }
    // Residual variance.
    let mut sse = 0.0;
    for r in 0..rows {
        let mut pred = 0.0;
        for c in 0..cols {
            pred += x[r * cols + c] * beta[c];
        }
        sse += (y[r] - pred) * (y[r] - pred);
    }
    let sigma2 = sse / (rows - cols) as f64;
    // SE_j = sqrt(sigma² · [(XᵀX)⁻¹]_jj), via solving for each basis vector.
    let mut xtx = vec![0.0; cols * cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            for j in 0..cols {
                xtx[i * cols + j] += row[i] * row[j];
            }
        }
    }
    let mut se = vec![0.0; cols];
    for j in 0..cols {
        let mut e = vec![0.0; cols];
        e[j] = 1.0;
        let col_inv = solve(&xtx, &e, cols)?;
        se[j] = (sigma2 * col_inv[j]).max(0.0).sqrt();
    }
    Ok((beta, se))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [3.0, -4.0];
        assert_eq!(solve(&a, &b, 2).unwrap(), vec![3.0, -4.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x - y = 1 -> x = 2, y = 1
        let a = [2.0, 1.0, 1.0, -1.0];
        let b = [5.0, 1.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [2.0, 3.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn lstsq_exact_line() {
        // y = 3 + 2t fit with design [1, t].
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let x: Vec<f64> = ts.iter().flat_map(|&t| [1.0, t]).collect();
        let y: Vec<f64> = ts.iter().map(|&t| 3.0 + 2.0 * t).collect();
        let beta = lstsq(&x, &y, 5, 2).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn lstsq_overdetermined_noisy() {
        let n = 200;
        let x: Vec<f64> = (0..n).flat_map(|i| [1.0, i as f64 / n as f64]).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                1.0 - 0.5 * t + if i % 2 == 0 { 0.01 } else { -0.01 }
            })
            .collect();
        let beta = lstsq(&x, &y, n, 2).unwrap();
        assert!((beta[0] - 1.0).abs() < 0.02);
        assert!((beta[1] + 0.5).abs() < 0.05);
    }

    #[test]
    fn lstsq_underdetermined_rejected() {
        assert!(lstsq(&[1.0, 2.0], &[1.0], 1, 2).is_err());
    }

    #[test]
    fn standard_errors_shrink_with_samples() {
        let make = |n: usize| {
            let x: Vec<f64> = (0..n).flat_map(|i| [1.0, (i % 17) as f64]).collect();
            let y: Vec<f64> = (0..n)
                .map(|i| 2.0 + 0.3 * (i % 17) as f64 + ((i * 31 % 7) as f64 - 3.0) * 0.1)
                .collect();
            lstsq_with_se(&x, &y, n, 2).unwrap().1
        };
        let se_small = make(30);
        let se_big = make(3000);
        assert!(se_big[0] < se_small[0]);
        assert!(se_big[1] < se_small[1]);
    }

    #[test]
    fn se_on_perfect_fit_is_zero() {
        let x: Vec<f64> = (0..10).flat_map(|i| [1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 4.0 + 0.5 * i as f64).collect();
        let (beta, se) = lstsq_with_se(&x, &y, 10, 2).unwrap();
        assert!((beta[1] - 0.5).abs() < 1e-6);
        assert!(se[0] < 1e-5 && se[1] < 1e-5);
    }
}
