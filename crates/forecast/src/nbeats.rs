//! NBeats (Oreshkin et al., ICLR 2020): stacks of fully connected blocks
//! with backward (backcast) and forward (forecast) residual links. Each
//! block reads the current residual input, emits a backcast that is
//! subtracted from the residual, and a partial forecast that is added to
//! the running total.

use neural::graph::{Graph, NodeId, ParamStore};
use neural::layers::{Activation, Dense, Dropout};
use neural::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;

use crate::batch::{inverse_rows, scale_rows};
use crate::deep::{make_batches, prepare, BatchSpec};
use crate::model::{validate_batch, validate_window, ForecastError, Forecaster};
use crate::stateio;

/// NBeats configuration (generic architecture).
#[derive(Debug, Clone)]
pub struct NBeatsConfig {
    /// Input window length `k`.
    pub input_len: usize,
    /// Forecast horizon `h`.
    pub horizon: usize,
    /// Number of blocks (stacked with residual links).
    pub blocks: usize,
    /// Hidden width of each block's FC layers.
    pub width: usize,
    /// FC layers per block before the theta projections.
    pub layers_per_block: usize,
    /// Dropout probability inside blocks.
    pub dropout: f64,
    /// Batching limits.
    pub batches: BatchSpec,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for NBeatsConfig {
    fn default() -> Self {
        NBeatsConfig {
            input_len: 96,
            horizon: 24,
            blocks: 3,
            width: 64,
            layers_per_block: 2,
            dropout: 0.0,
            batches: BatchSpec::default(),
            train: TrainConfig::default(),
        }
    }
}

struct Block {
    fc: Vec<Dense>,
    backcast: Dense,
    forecast: Dense,
}

impl Block {
    fn new(store: &mut ParamStore, name: &str, cfg: &NBeatsConfig, rng: &mut StdRng) -> Self {
        let mut fc = Vec::with_capacity(cfg.layers_per_block);
        let mut in_dim = cfg.input_len;
        for l in 0..cfg.layers_per_block {
            fc.push(Dense::new(
                store,
                &format!("{name}.fc{l}"),
                in_dim,
                cfg.width,
                Activation::Relu,
                rng,
            ));
            in_dim = cfg.width;
        }
        let backcast = Dense::new(
            store,
            &format!("{name}.backcast"),
            cfg.width,
            cfg.input_len,
            Activation::Identity,
            rng,
        );
        let forecast = Dense::new(
            store,
            &format!("{name}.forecast"),
            cfg.width,
            cfg.horizon,
            Activation::Identity,
            rng,
        );
        Block { fc, backcast, forecast }
    }

    fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        dropout: &Dropout,
        training: bool,
        rng: &mut StdRng,
    ) -> (NodeId, NodeId) {
        let mut h = x;
        for layer in &self.fc {
            h = layer.forward(g, store, h);
            h = dropout.forward(g, h, training, rng);
        }
        (self.backcast.forward(g, store, h), self.forecast.forward(g, store, h))
    }
}

/// The NBeats forecaster.
pub struct NBeats {
    config: NBeatsConfig,
    store: ParamStore,
    blocks: Vec<Block>,
    scaler: Option<StandardScaler>,
}

impl NBeats {
    /// Creates an unfitted model.
    pub fn new(config: NBeatsConfig) -> Self {
        NBeats { config, store: ParamStore::new(), blocks: Vec::new(), scaler: None }
    }

    /// Builds the seeded block stack. Shared by `fit` and `load_state` so a
    /// restored model has the exact architecture the fit produced.
    fn build_blocks(&self) -> (ParamStore, Vec<Block>) {
        let mut rng = StdRng::seed_from_u64(self.config.train.seed);
        let mut store = ParamStore::new();
        let blocks: Vec<Block> = (0..self.config.blocks)
            .map(|b| Block::new(&mut store, &format!("block{b}"), &self.config, &mut rng))
            .collect();
        (store, blocks)
    }

    fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        blocks: &[Block],
        x: NodeId,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let dropout = Dropout::new(self.config.dropout);
        let mut residual = x;
        let mut total: Option<NodeId> = None;
        for block in blocks {
            let (back, fore) = block.forward(g, store, residual, &dropout, training, rng);
            residual = g.sub(residual, back);
            total = Some(match total {
                None => fore,
                Some(t) => g.add(t, fore),
            });
        }
        total.expect("at least one block")
    }
}

impl Forecaster for NBeats {
    fn name(&self) -> &'static str {
        "NBeats"
    }

    fn input_len(&self) -> usize {
        self.config.input_len
    }

    fn horizon(&self) -> usize {
        self.config.horizon
    }

    fn fit(&mut self, train_data: &MultiSeries, val: &MultiSeries) -> Result<(), ForecastError> {
        let scaler = prepare(train_data, self.config.input_len, self.config.horizon)?;
        let train_b = make_batches(
            train_data,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );
        if train_b.is_empty() {
            return Err(ForecastError::TooShort {
                needed: self.config.input_len + self.config.horizon,
                got: train_data.len(),
            });
        }
        let val_b = make_batches(
            val,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );

        let (mut store, blocks) = self.build_blocks();

        // Borrow pieces locally so the closure doesn't capture `self`.
        let this = &*self;
        train(
            &mut store,
            this.config.train,
            train_b.len(),
            val_b.len(),
            |g, s, b, training, rng| {
                let batch = if training { &train_b[b] } else { &val_b[b] };
                let x = g.input(batch.x.clone());
                let pred = this.forward(g, s, &blocks, x, training, rng);
                g.mse(pred, &batch.y)
            },
        );

        self.store = store;
        self.blocks = blocks;
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        validate_window(inputs, self.config.input_len)?;
        let x = scaler.transform(0, &inputs[0]);
        let mut g = Graph::new();
        let xi = g.input(neural::tensor::Tensor::row(&x));
        let mut rng = StdRng::seed_from_u64(0);
        let pred = self.forward(&mut g, &self.store, &self.blocks, xi, false, &mut rng);
        Ok(scaler.inverse(0, g.value(pred).data()))
    }

    fn predict_batch(
        &self,
        windows: &neural::tensor::Tensor,
    ) -> Result<neural::tensor::Tensor, ForecastError> {
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        validate_batch(windows, self.config.input_len)?;
        if windows.rows() == 0 {
            return Ok(neural::tensor::Tensor::zeros(0, self.config.horizon));
        }
        // Every block op (Dense, ReLU, residual sub/add) is row-local, so
        // one [n, k] forward reproduces the per-window rows bitwise.
        let x = scale_rows(windows, scaler);
        let mut g = Graph::new();
        let xi = g.input(x);
        let mut rng = StdRng::seed_from_u64(0);
        let pred = self.forward(&mut g, &self.store, &self.blocks, xi, false, &mut rng);
        Ok(inverse_rows(g.value(pred), scaler))
    }

    fn save_state(&self) -> Result<neural::state::StateDict, ForecastError> {
        if self.blocks.is_empty() {
            return Err(ForecastError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        let mut dict = neural::state::StateDict::new();
        stateio::put_tag(&mut dict, self.name());
        stateio::put_scaler(&mut dict, "scaler", scaler);
        stateio::put_params(&mut dict, &self.store);
        Ok(dict)
    }

    fn load_state(&mut self, state: &neural::state::StateDict) -> Result<(), ForecastError> {
        stateio::check_tag(state, self.name())?;
        let scaler = stateio::get_scaler(state, "scaler")?;
        let (mut store, blocks) = self.build_blocks();
        stateio::check_len(state, store.len() + 3)?;
        stateio::get_params(&mut store, state)?;
        self.store = store;
        self.blocks = blocks;
        self.scaler = Some(scaler);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 900, values).unwrap())
    }

    fn small_config() -> NBeatsConfig {
        NBeatsConfig {
            input_len: 32,
            horizon: 8,
            blocks: 2,
            width: 24,
            train: TrainConfig { max_epochs: 30, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn learns_seasonal_series() {
        let n = 1200;
        let data: Vec<f64> =
            (0..n).map(|i| 5.0 + 2.0 * (i as f64 / 16.0 * std::f64::consts::TAU).sin()).collect();
        let (tr, rest) = data.split_at(900);
        let (va, te) = rest.split_at(150);
        let mut model = NBeats::new(small_config());
        model.fit(&uni(tr.to_vec()), &uni(va.to_vec())).unwrap();
        let pred = model.predict(&[te[..32].to_vec()]).unwrap();
        let rmse = tsdata::metrics::rmse(&te[32..40], &pred);
        assert!(rmse < 0.8, "rmse {rmse}");
    }

    #[test]
    fn residual_stacking_means_more_blocks_more_params() {
        let mk = |blocks: usize| {
            let mut rng = StdRng::seed_from_u64(0);
            let mut store = ParamStore::new();
            let cfg = NBeatsConfig { blocks, ..small_config() };
            for b in 0..blocks {
                Block::new(&mut store, &format!("b{b}"), &cfg, &mut rng);
            }
            store.num_scalars()
        };
        assert_eq!(mk(4), 2 * mk(2), "parameter count linear in block count");
        assert!(mk(3) > mk(1));
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = NBeats::new(small_config());
        assert_eq!(m.predict(&[vec![0.0; 32]]).unwrap_err(), ForecastError::NotFitted);
    }

    #[test]
    fn prediction_shape_and_determinism() {
        let data: Vec<f64> = (0..600).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut m = NBeats::new(NBeatsConfig {
            train: TrainConfig { max_epochs: 2, ..Default::default() },
            ..small_config()
        });
        m.fit(&uni(data[..450].to_vec()), &uni(data[450..550].to_vec())).unwrap();
        let w = data[550..582].to_vec();
        let p1 = m.predict(std::slice::from_ref(&w)).unwrap();
        let p2 = m.predict(&[w]).unwrap();
        assert_eq!(p1.len(), 8);
        assert_eq!(p1, p2, "inference must be deterministic (no dropout)");
    }
}
