//! ARIMA(p,d,q) with Fourier seasonal terms and AIC model selection
//! (Box & Jenkins; paper §3.4 "Arima ... with Fourier terms as exogenous
//! variables to model long seasonality", selected by AIC).
//!
//! Estimation uses the Hannan–Rissanen two-stage procedure: a long
//! autoregression provides residual estimates, then the ARMA coefficients
//! come from one OLS over lagged values and lagged residuals. Seasonality
//! is handled by fitting `K` Fourier harmonics of the seasonal period and
//! modelling the deseasonalized remainder with ARIMA; at prediction time
//! the window's phase is re-estimated by scanning all seasonal offsets,
//! since the evaluation interface supplies values only (Definition 7).

use neural::tensor::Tensor;
use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;

use crate::linalg::lstsq;
use crate::model::{validate_batch, validate_window, ForecastError, Forecaster};
use crate::stateio;

/// ARIMA configuration.
#[derive(Debug, Clone)]
pub struct ArimaConfig {
    /// Input window length `k`.
    pub input_len: usize,
    /// Forecast horizon `h`.
    pub horizon: usize,
    /// Maximum AR order searched.
    pub max_p: usize,
    /// Maximum differencing order searched.
    pub max_d: usize,
    /// Maximum MA order searched.
    pub max_q: usize,
    /// Seasonal period in samples (e.g. 96 for 15-minute daily data);
    /// `None` disables the Fourier stage.
    pub season: Option<usize>,
    /// Number of Fourier harmonic pairs.
    pub fourier_k: usize,
    /// Cap on training points used for estimation (most recent kept).
    pub max_train: usize,
}

impl Default for ArimaConfig {
    fn default() -> Self {
        ArimaConfig {
            input_len: 96,
            horizon: 24,
            max_p: 3,
            max_d: 1,
            max_q: 2,
            season: None,
            fourier_k: 2,
            max_train: 4000,
        }
    }
}

#[derive(Debug, Clone)]
struct Fitted {
    p: usize,
    d: usize,
    q: usize,
    /// AR coefficients φ_1..φ_p.
    phi: Vec<f64>,
    /// MA coefficients θ_1..θ_q.
    theta: Vec<f64>,
    /// ARMA intercept.
    intercept: f64,
    /// Fourier coefficients: `[(a_k sin, b_k cos); K]`.
    fourier: Vec<(f64, f64)>,
    season: Option<usize>,
    scaler: StandardScaler,
    /// Selected model's AIC (exposed for tests and reporting).
    aic: f64,
}

/// The ARIMA forecaster.
#[derive(Debug, Clone)]
pub struct Arima {
    config: ArimaConfig,
    fitted: Option<Fitted>,
}

impl Arima {
    /// Creates an unfitted model.
    pub fn new(config: ArimaConfig) -> Self {
        Arima { config, fitted: None }
    }

    /// The `(p, d, q)` order selected by AIC, if fitted.
    pub fn order(&self) -> Option<(usize, usize, usize)> {
        self.fitted.as_ref().map(|f| (f.p, f.d, f.q))
    }

    /// The AIC of the selected model, if fitted.
    pub fn aic(&self) -> Option<f64> {
        self.fitted.as_ref().map(|f| f.aic)
    }

    fn seasonal_at(fourier: &[(f64, f64)], season: usize, t: f64) -> f64 {
        let w = std::f64::consts::TAU / season as f64;
        fourier
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| {
                let kw = (k + 1) as f64 * w;
                a * (kw * t).sin() + b * (kw * t).cos()
            })
            .sum()
    }

    /// Fits Fourier harmonics by OLS; returns coefficients and the
    /// deseasonalized series.
    fn fit_fourier(y: &[f64], season: usize, k: usize) -> (Vec<(f64, f64)>, Vec<f64>) {
        let n = y.len();
        let cols = 2 * k + 1; // harmonics + intercept column
        let w = std::f64::consts::TAU / season as f64;
        let mut x = Vec::with_capacity(n * cols);
        for t in 0..n {
            x.push(1.0);
            for h in 1..=k {
                let hw = h as f64 * w * t as f64;
                x.push(hw.sin());
                x.push(hw.cos());
            }
        }
        let beta = lstsq(&x, y, n, cols).unwrap_or_else(|_| vec![0.0; cols]);
        let fourier: Vec<(f64, f64)> = (0..k).map(|h| (beta[1 + 2 * h], beta[2 + 2 * h])).collect();
        let deseason: Vec<f64> = (0..n)
            .map(|t| y[t] - beta[0] - Self::seasonal_at(&fourier, season, t as f64))
            .collect();
        // Fold the Fourier intercept back into the series mean handled by
        // the ARMA intercept: keep deseasonalized values centered on beta0
        // removed (ARMA intercept will absorb any remainder).
        (fourier, deseason)
    }

    /// Differencing of order `d`.
    fn difference(y: &[f64], d: usize) -> Vec<f64> {
        let mut w = y.to_vec();
        for _ in 0..d {
            w = w.windows(2).map(|p| p[1] - p[0]).collect();
        }
        w
    }

    /// Hannan–Rissanen estimation of ARMA(p, q) on `w`.
    /// Returns `(phi, theta, intercept, sigma2, n_effective)`.
    #[allow(clippy::type_complexity)]
    fn hannan_rissanen(
        w: &[f64],
        p: usize,
        q: usize,
    ) -> Result<(Vec<f64>, Vec<f64>, f64, f64, usize), ForecastError> {
        let n = w.len();
        let m = (p + q + 5).max(10); // long-AR order for residual estimates
        if n < m + p + q + 10 {
            return Err(ForecastError::TooShort { needed: m + p + q + 10, got: n });
        }
        // Stage 1: long AR by OLS -> residuals.
        let rows1 = n - m;
        let cols1 = m + 1;
        let mut x1 = Vec::with_capacity(rows1 * cols1);
        let mut y1 = Vec::with_capacity(rows1);
        for t in m..n {
            x1.push(1.0);
            for i in 1..=m {
                x1.push(w[t - i]);
            }
            y1.push(w[t]);
        }
        let beta1 = lstsq(&x1, &y1, rows1, cols1)?;
        let mut resid = vec![0.0; n];
        for t in m..n {
            let mut pred = beta1[0];
            for i in 1..=m {
                pred += beta1[i] * w[t - i];
            }
            resid[t] = w[t] - pred;
        }
        // Stage 2: OLS of w_t on its lags and residual lags.
        let start = m + q.max(p);
        let rows2 = n - start;
        let cols2 = 1 + p + q;
        let mut x2 = Vec::with_capacity(rows2 * cols2);
        let mut y2 = Vec::with_capacity(rows2);
        for t in start..n {
            x2.push(1.0);
            for i in 1..=p {
                x2.push(w[t - i]);
            }
            for j in 1..=q {
                x2.push(resid[t - j]);
            }
            y2.push(w[t]);
        }
        let beta2 = lstsq(&x2, &y2, rows2, cols2)?;
        let intercept = beta2[0];
        let phi = beta2[1..1 + p].to_vec();
        let theta = beta2[1 + p..].to_vec();
        // Residual variance of the stage-2 fit.
        let mut sse = 0.0;
        for (r, &target) in y2.iter().enumerate() {
            let mut pred = 0.0;
            for c in 0..cols2 {
                pred += x2[r * cols2 + c] * beta2[c];
            }
            sse += (target - pred) * (target - pred);
        }
        let sigma2 = (sse / rows2 as f64).max(1e-12);
        Ok((phi, theta, intercept, sigma2, rows2))
    }

    /// Seasonal component at integer offsets `0..s + n + horizon`, or empty
    /// when the fit has no seasonal stage. The table holds the exact
    /// [`Self::seasonal_at`] values, so lookups reproduce the direct calls
    /// bitwise — and a batch shares one table instead of re-evaluating
    /// `s * n` sin/cos pairs per window in the phase scan.
    fn seasonal_table(f: &Fitted, n: usize, horizon: usize) -> Vec<f64> {
        match f.season {
            Some(s) if !f.fourier.is_empty() => {
                (0..s + n + horizon).map(|t| Self::seasonal_at(&f.fourier, s, t as f64)).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Full forecast for one scaled window `y`, with the seasonal component
    /// supplied as a [`Self::seasonal_table`] lookup.
    fn forecast_scaled(f: &Fitted, y: &[f64], horizon: usize, seas: &[f64]) -> Vec<f64> {
        // Phase alignment: choose the seasonal offset minimizing SSE between
        // the window and the seasonal component.
        let (deseason, phase): (Vec<f64>, usize) = if seas.is_empty() {
            (y.to_vec(), 0)
        } else {
            let s = f.season.expect("non-empty table implies a season");
            let mut best_phase = 0usize;
            let mut best_sse = f64::INFINITY;
            for offset in 0..s {
                let sse: f64 = y
                    .iter()
                    .enumerate()
                    .map(|(t, &v)| {
                        let sv = seas[offset + t];
                        (v - sv) * (v - sv)
                    })
                    .sum();
                if sse < best_sse {
                    best_sse = sse;
                    best_phase = offset;
                }
            }
            let d: Vec<f64> =
                y.iter().enumerate().map(|(t, &v)| v - seas[best_phase + t]).collect();
            (d, best_phase)
        };

        // Difference, run the residual recursion, then forecast.
        let mut w = Self::difference(&deseason, f.d);
        let mut e = Self::residuals(&w, &f.phi, &f.theta, f.intercept);
        let mut diffs = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let t = w.len();
            let mut pred = f.intercept;
            for (i, &ph) in f.phi.iter().enumerate() {
                if t > i {
                    pred += ph * w[t - i - 1];
                }
            }
            for (j, &th) in f.theta.iter().enumerate() {
                if t > j {
                    pred += th * e[t - j - 1];
                }
            }
            w.push(pred);
            e.push(0.0);
            diffs.push(pred);
        }

        // Integrate d times back to levels.
        let mut level_forecast = diffs;
        for depth in (0..f.d).rev() {
            // Value of the (depth)-times-differenced window's last point.
            let base_series = Self::difference(&deseason, depth);
            let mut last = *base_series.last().expect("window non-empty");
            for v in level_forecast.iter_mut() {
                last += *v;
                *v = last;
            }
        }

        // Re-add seasonality.
        let n = y.len();
        level_forecast
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if seas.is_empty() { 0.0 } else { seas[phase + n + i] })
            .collect()
    }

    /// In-sample residual recursion used to seed the MA part at prediction.
    fn residuals(w: &[f64], phi: &[f64], theta: &[f64], intercept: f64) -> Vec<f64> {
        let p = phi.len();
        let q = theta.len();
        let mut e = vec![0.0; w.len()];
        for t in 0..w.len() {
            let mut pred = intercept;
            for (i, &ph) in phi.iter().enumerate() {
                if t > i {
                    pred += ph * w[t - i - 1];
                }
            }
            for (j, &th) in theta.iter().enumerate() {
                if t > j {
                    pred += th * e[t - j - 1];
                }
            }
            if t >= p.max(q) {
                e[t] = w[t] - pred;
            }
        }
        e
    }
}

impl Forecaster for Arima {
    fn name(&self) -> &'static str {
        "Arima"
    }

    fn input_len(&self) -> usize {
        self.config.input_len
    }

    fn horizon(&self) -> usize {
        self.config.horizon
    }

    fn fit(&mut self, train: &MultiSeries, _val: &MultiSeries) -> Result<(), ForecastError> {
        let raw = train.target().values();
        let needed = self.config.input_len + self.config.horizon + 50;
        if raw.len() < needed {
            return Err(ForecastError::TooShort { needed, got: raw.len() });
        }
        let capped = &raw[raw.len().saturating_sub(self.config.max_train)..];
        let scaler = StandardScaler::fit_single(capped);
        let y = scaler.transform(0, capped);

        // Seasonal stage.
        let (fourier, deseason, season) = match self.config.season {
            Some(s) if s >= 2 && y.len() > 2 * s && self.config.fourier_k > 0 => {
                let (f, d) = Self::fit_fourier(&y, s, self.config.fourier_k);
                (f, d, Some(s))
            }
            _ => (Vec::new(), y.clone(), None),
        };

        // Grid search over (p, d, q) by AIC.
        let mut best: Option<Fitted> = None;
        for d in 0..=self.config.max_d {
            let w = Self::difference(&deseason, d);
            for p in 0..=self.config.max_p {
                for q in 0..=self.config.max_q {
                    if p == 0 && q == 0 {
                        continue;
                    }
                    let Ok((phi, theta, intercept, sigma2, n_eff)) =
                        Self::hannan_rissanen(&w, p, q)
                    else {
                        continue;
                    };
                    // Reject explosive AR fits (|sum phi| near/above 1 is a
                    // red flag for recursive multi-step forecasting).
                    let phi_sum: f64 = phi.iter().sum();
                    if phi_sum.abs() > 1.05 {
                        continue;
                    }
                    let k = (p + q + 1) as f64;
                    let aic = n_eff as f64 * sigma2.ln() + 2.0 * k;
                    if best.as_ref().is_none_or(|b| aic < b.aic) {
                        best = Some(Fitted {
                            p,
                            d,
                            q,
                            phi,
                            theta,
                            intercept,
                            fourier: fourier.clone(),
                            season,
                            scaler: scaler.clone(),
                            aic,
                        });
                    }
                }
            }
        }
        self.fitted =
            Some(best.ok_or_else(|| ForecastError::Numerical("no ARIMA candidate fit".into()))?);
        Ok(())
    }

    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        let f = self.fitted.as_ref().ok_or(ForecastError::NotFitted)?;
        validate_window(inputs, self.config.input_len)?;
        let y = f.scaler.transform(0, &inputs[0]);
        let seas = Self::seasonal_table(f, y.len(), self.config.horizon);
        let result = Self::forecast_scaled(f, &y, self.config.horizon, &seas);
        Ok(f.scaler.inverse(0, &result))
    }

    fn predict_batch(&self, windows: &Tensor) -> Result<Tensor, ForecastError> {
        let f = self.fitted.as_ref().ok_or(ForecastError::NotFitted)?;
        validate_batch(windows, self.config.input_len)?;
        let k = self.config.input_len;
        let h = self.config.horizon;
        // The seasonal table dominates per-window cost (the phase scan
        // evaluates s*k sin/cos pairs without it); hoist it once per batch.
        let seas = Self::seasonal_table(f, k, h);
        let mut out = Tensor::zeros(windows.rows(), h);
        for r in 0..windows.rows() {
            let y = f.scaler.transform(0, &windows.data()[r * k..(r + 1) * k]);
            let result = Self::forecast_scaled(f, &y, h, &seas);
            out.data_mut()[r * h..(r + 1) * h].copy_from_slice(&f.scaler.inverse(0, &result));
        }
        Ok(out)
    }

    fn save_state(&self) -> Result<neural::state::StateDict, ForecastError> {
        let f = self.fitted.as_ref().ok_or(ForecastError::NotFitted)?;
        let mut dict = neural::state::StateDict::new();
        stateio::put_tag(&mut dict, self.name());
        stateio::put_row(&mut dict, "arima.order", &[f.p as f64, f.d as f64, f.q as f64]);
        stateio::put_row(&mut dict, "arima.phi", &f.phi);
        stateio::put_row(&mut dict, "arima.theta", &f.theta);
        stateio::put_row(&mut dict, "arima.scalars", &[f.intercept, f.aic]);
        let flat: Vec<f64> = f.fourier.iter().flat_map(|&(a, b)| [a, b]).collect();
        stateio::put_row(&mut dict, "arima.fourier", &flat);
        stateio::put_row(&mut dict, "arima.season", &[f.season.map_or(-1.0, |s| s as f64)]);
        stateio::put_scaler(&mut dict, "arima.scaler", &f.scaler);
        Ok(dict)
    }

    fn load_state(&mut self, state: &neural::state::StateDict) -> Result<(), ForecastError> {
        stateio::check_tag(state, self.name())?;
        stateio::check_len(state, 9)?;
        let order = stateio::row(state, "arima.order")?;
        if order.len() != 3 {
            return Err(stateio::invalid("arima.order must hold [p, d, q]"));
        }
        let p = stateio::index(order[0], "arima p")?;
        let d = stateio::index(order[1], "arima d")?;
        let q = stateio::index(order[2], "arima q")?;
        let phi = stateio::row(state, "arima.phi")?.to_vec();
        let theta = stateio::row(state, "arima.theta")?.to_vec();
        if phi.len() != p || theta.len() != q {
            return Err(stateio::invalid(format!(
                "arima coefficient counts ({}, {}) disagree with order ({p}, {q})",
                phi.len(),
                theta.len()
            )));
        }
        let scalars = stateio::row(state, "arima.scalars")?;
        if scalars.len() != 2 {
            return Err(stateio::invalid("arima.scalars must hold [intercept, aic]"));
        }
        let flat = stateio::row(state, "arima.fourier")?;
        if !flat.len().is_multiple_of(2) {
            return Err(stateio::invalid("arima.fourier must hold (sin, cos) pairs"));
        }
        let fourier: Vec<(f64, f64)> = flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let season_raw = stateio::scalar(state, "arima.season")?;
        let season =
            if season_raw < 0.0 { None } else { Some(stateio::index(season_raw, "arima season")?) };
        let scaler = stateio::get_scaler(state, "arima.scaler")?;
        self.fitted = Some(Fitted {
            p,
            d,
            q,
            phi,
            theta,
            intercept: scalars[0],
            fourier,
            season,
            scaler,
            aic: scalars[1],
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 900, values).unwrap())
    }

    fn ar1_series(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut y = vec![10.0];
        for _ in 1..n {
            let prev = *y.last().expect("non-empty");
            y.push(10.0 + phi * (prev - 10.0) + noise());
        }
        y
    }

    #[test]
    fn fits_and_predicts_ar1() {
        let data = ar1_series(2000, 0.8, 42);
        let (train, test) = data.split_at(1600);
        let mut model = Arima::new(ArimaConfig {
            input_len: 96,
            horizon: 24,
            season: None,
            ..Default::default()
        });
        model.fit(&uni(train.to_vec()), &uni(test.to_vec())).unwrap();
        let (p, _, _) = model.order().expect("fitted");
        assert!(p >= 1, "AR(1) data should select p >= 1");
        let window = test[..96].to_vec();
        let pred = model.predict(&[window]).unwrap();
        assert_eq!(pred.len(), 24);
        // Forecast should revert toward the mean 10 and stay bounded.
        assert!(pred.iter().all(|v| (0.0..20.0).contains(v)), "{pred:?}");
    }

    #[test]
    fn seasonal_fourier_improves_seasonal_forecast() {
        let n = 3000;
        let season = 48usize;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                10.0 + 4.0 * (i as f64 / season as f64 * std::f64::consts::TAU).sin()
                    + ((i * 13) % 7) as f64 * 0.02
            })
            .collect();
        let (train, test) = data.split_at(2400);
        let horizon = 24;
        let window = test[..96].to_vec();
        let actual = &test[96..96 + horizon];

        let mut seasonal =
            Arima::new(ArimaConfig { season: Some(season), fourier_k: 2, ..Default::default() });
        seasonal.fit(&uni(train.to_vec()), &uni(test.to_vec())).unwrap();
        let pred_s = seasonal.predict(std::slice::from_ref(&window)).unwrap();

        let mut plain = Arima::new(ArimaConfig { season: None, ..Default::default() });
        plain.fit(&uni(train.to_vec()), &uni(test.to_vec())).unwrap();
        let pred_p = plain.predict(&[window]).unwrap();

        let rmse = |pred: &[f64]| tsdata::metrics::rmse(actual, pred);
        assert!(
            rmse(&pred_s) <= rmse(&pred_p) + 0.3,
            "seasonal {} vs plain {}",
            rmse(&pred_s),
            rmse(&pred_p)
        );
        // And the seasonal forecast should actually track the oscillation.
        assert!(rmse(&pred_s) < 2.0, "seasonal rmse {}", rmse(&pred_s));
    }

    #[test]
    fn differencing_handles_trends() {
        let data: Vec<f64> =
            (0..1500).map(|i| 5.0 + 0.01 * i as f64 + ((i * 7) % 5) as f64 * 0.05).collect();
        let (train, test) = data.split_at(1200);
        let mut model = Arima::new(ArimaConfig { season: None, ..Default::default() });
        model.fit(&uni(train.to_vec()), &uni(test.to_vec())).unwrap();
        let window = test[..96].to_vec();
        let pred = model.predict(std::slice::from_ref(&window)).unwrap();
        // Trend should continue upward from the window's end.
        let last = window[95];
        let mean_pred = pred.iter().sum::<f64>() / pred.len() as f64;
        assert!(mean_pred > last - 0.5, "trend lost: {mean_pred} vs {last}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let model = Arima::new(ArimaConfig::default());
        assert_eq!(model.predict(&[vec![0.0; 96]]).unwrap_err(), ForecastError::NotFitted);
    }

    #[test]
    fn wrong_window_length_rejected() {
        let data = ar1_series(1500, 0.5, 7);
        let mut model = Arima::new(ArimaConfig { season: None, ..Default::default() });
        model.fit(&uni(data.clone()), &uni(data)).unwrap();
        assert!(matches!(
            model.predict(&[vec![0.0; 10]]).unwrap_err(),
            ForecastError::BadWindow { .. }
        ));
    }

    #[test]
    fn too_short_series_rejected() {
        let mut model = Arima::new(ArimaConfig::default());
        let short = uni(vec![1.0; 50]);
        assert!(matches!(model.fit(&short, &short).unwrap_err(), ForecastError::TooShort { .. }));
    }

    #[test]
    fn difference_helper() {
        assert_eq!(Arima::difference(&[1.0, 3.0, 6.0, 10.0], 1), vec![2.0, 3.0, 4.0]);
        assert_eq!(Arima::difference(&[1.0, 3.0, 6.0, 10.0], 2), vec![1.0, 1.0]);
        assert_eq!(Arima::difference(&[5.0, 5.0], 0), vec![5.0, 5.0]);
    }

    #[test]
    fn aic_is_exposed() {
        let data = ar1_series(1200, 0.6, 3);
        let mut model = Arima::new(ArimaConfig { season: None, ..Default::default() });
        assert!(model.aic().is_none());
        model.fit(&uni(data.clone()), &uni(data)).unwrap();
        assert!(model.aic().expect("fitted").is_finite());
    }
}
