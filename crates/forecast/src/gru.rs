//! Encoder-decoder GRU forecaster (§3.4: "an encoder-decoder Gated
//! Recurrent Neural Network").
//!
//! The encoder consumes the scaled input window one value per step; the
//! decoder starts from the encoder's final state and unrolls the horizon
//! autoregressively, feeding each prediction back as the next input.

use neural::graph::{Graph, NodeId, ParamStore};
use neural::layers::{Activation, Dense, Dropout};
use neural::rnn::GruCell;
use neural::tensor::Tensor;
use neural::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;

use crate::batch::{inverse_rows, scale_rows};
use crate::deep::{make_batches, prepare, Batch, BatchSpec};
use crate::model::{validate_batch, validate_window, ForecastError, Forecaster};
use crate::stateio;

/// GRU forecaster configuration.
#[derive(Debug, Clone)]
pub struct GruConfig {
    /// Input window length `k`.
    pub input_len: usize,
    /// Forecast horizon `h`.
    pub horizon: usize,
    /// Hidden state width (shared by encoder and decoder).
    pub hidden: usize,
    /// Dropout on the decoder state before the output head.
    pub dropout: f64,
    /// Batching limits.
    pub batches: BatchSpec,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for GruConfig {
    fn default() -> Self {
        GruConfig {
            input_len: 96,
            horizon: 24,
            hidden: 32,
            dropout: 0.0,
            batches: BatchSpec::default(),
            train: TrainConfig::default(),
        }
    }
}

struct Net {
    encoder: GruCell,
    decoder: GruCell,
    head: Dense,
}

/// The GRU forecaster.
pub struct Gru {
    config: GruConfig,
    store: ParamStore,
    net: Option<Net>,
    scaler: Option<StandardScaler>,
}

impl Gru {
    /// Creates an unfitted model.
    pub fn new(config: GruConfig) -> Self {
        Gru { config, store: ParamStore::new(), net: None, scaler: None }
    }

    /// Builds the seeded network structure. Shared by `fit` and
    /// `load_state` so a restored model has the exact architecture the fit
    /// produced.
    fn build_net(&self) -> (ParamStore, Net) {
        let mut rng = StdRng::seed_from_u64(self.config.train.seed);
        let mut store = ParamStore::new();
        let net = Net {
            encoder: GruCell::new(&mut store, "enc", 1, self.config.hidden, &mut rng),
            decoder: GruCell::new(&mut store, "dec", 1, self.config.hidden, &mut rng),
            head: Dense::new(
                &mut store,
                "head",
                self.config.hidden,
                1,
                Activation::Identity,
                &mut rng,
            ),
        };
        (store, net)
    }

    /// Builds the forward pass for a batch of scaled windows `x
    /// [n, input_len]`, returning predictions `[n, horizon]`.
    fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        net: &Net,
        x: &Tensor,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let (n, k) = x.shape();
        let dropout = Dropout::new(self.config.dropout);
        // One tiled transpose up front makes every timestep's column a
        // contiguous row instead of k strided gathers.
        let x_t = x.transpose(); // [k, n]
                                 // Encoder: one scalar feature per step.
                                 // Parameter nodes hoisted out of both time loops: one copy of each
                                 // cell's weights per graph instead of one per step.
        let enc_params = net.encoder.param_nodes(g, store);
        let dec_params = net.decoder.param_nodes(g, store);
        let mut h = g.input(Tensor::zeros(n, self.config.hidden));
        for t in 0..k {
            let xt = g.input(Tensor::col(&x_t.data()[t * n..(t + 1) * n]));
            h = net.encoder.step_with(g, &enc_params, xt, h);
        }
        // Decoder: autoregressive unroll from the last observed value.
        let mut prev = g.input(Tensor::col(&x_t.data()[(k - 1) * n..k * n]));
        let mut outputs: Option<NodeId> = None;
        for _ in 0..self.config.horizon {
            h = net.decoder.step_with(g, &dec_params, prev, h);
            let hd = dropout.forward(g, h, training, rng);
            let y = net.head.forward(g, store, hd); // [n, 1]
            prev = y;
            outputs = Some(match outputs {
                None => y,
                Some(o) => g.hstack(o, y),
            });
        }
        outputs.expect("horizon > 0")
    }
}

impl Forecaster for Gru {
    fn name(&self) -> &'static str {
        "GRU"
    }

    fn input_len(&self) -> usize {
        self.config.input_len
    }

    fn horizon(&self) -> usize {
        self.config.horizon
    }

    fn fit(&mut self, train_data: &MultiSeries, val: &MultiSeries) -> Result<(), ForecastError> {
        let scaler = prepare(train_data, self.config.input_len, self.config.horizon)?;
        let train_b: Vec<Batch> = make_batches(
            train_data,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );
        if train_b.is_empty() {
            return Err(ForecastError::TooShort {
                needed: self.config.input_len + self.config.horizon,
                got: train_data.len(),
            });
        }
        let val_b = make_batches(
            val,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );

        let (mut store, net) = self.build_net();

        let this = &*self;
        train(
            &mut store,
            this.config.train,
            train_b.len(),
            val_b.len(),
            |g, s, b, training, rng| {
                let batch = if training { &train_b[b] } else { &val_b[b] };
                let pred = this.forward(g, s, &net, &batch.x, training, rng);
                g.mse(pred, &batch.y)
            },
        );

        self.store = store;
        self.net = Some(net);
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        let (Some(net), Some(scaler)) = (&self.net, &self.scaler) else {
            return Err(ForecastError::NotFitted);
        };
        validate_window(inputs, self.config.input_len)?;
        let x = scaler.transform(0, &inputs[0]);
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let pred = self.forward(&mut g, &self.store, net, &Tensor::row(&x), false, &mut rng);
        Ok(scaler.inverse(0, g.value(pred).data()))
    }

    fn predict_batch(&self, windows: &Tensor) -> Result<Tensor, ForecastError> {
        let (Some(net), Some(scaler)) = (&self.net, &self.scaler) else {
            return Err(ForecastError::NotFitted);
        };
        validate_batch(windows, self.config.input_len)?;
        if windows.rows() == 0 {
            return Ok(Tensor::zeros(0, self.config.horizon));
        }
        // `forward` already steps whole [n, hidden] state matrices, so the
        // batched path is simply the training-shaped forward at inference:
        // every GRU matmul contracts over <=hidden dims, which keeps each
        // row bitwise equal to its single-window run.
        let x = scale_rows(windows, scaler);
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let pred = self.forward(&mut g, &self.store, net, &x, false, &mut rng);
        Ok(inverse_rows(g.value(pred), scaler))
    }

    fn save_state(&self) -> Result<neural::state::StateDict, ForecastError> {
        if self.net.is_none() {
            return Err(ForecastError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        let mut dict = neural::state::StateDict::new();
        stateio::put_tag(&mut dict, self.name());
        stateio::put_scaler(&mut dict, "scaler", scaler);
        stateio::put_params(&mut dict, &self.store);
        Ok(dict)
    }

    fn load_state(&mut self, state: &neural::state::StateDict) -> Result<(), ForecastError> {
        stateio::check_tag(state, self.name())?;
        let scaler = stateio::get_scaler(state, "scaler")?;
        let (mut store, net) = self.build_net();
        stateio::check_len(state, store.len() + 3)?;
        stateio::get_params(&mut store, state)?;
        self.store = store;
        self.net = Some(net);
        self.scaler = Some(scaler);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 900, values).unwrap())
    }

    fn small_config() -> GruConfig {
        GruConfig {
            input_len: 24,
            horizon: 6,
            hidden: 12,
            batches: BatchSpec { stride: 4, batch_size: 16, max_windows: 300 },
            train: TrainConfig { max_epochs: 25, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn learns_seasonal_series() {
        let n = 1000;
        let data: Vec<f64> =
            (0..n).map(|i| 3.0 + (i as f64 / 12.0 * std::f64::consts::TAU).sin()).collect();
        let (tr, rest) = data.split_at(750);
        let (va, te) = rest.split_at(125);
        let mut model = Gru::new(small_config());
        model.fit(&uni(tr.to_vec()), &uni(va.to_vec())).unwrap();
        let pred = model.predict(&[te[..24].to_vec()]).unwrap();
        let rmse = tsdata::metrics::rmse(&te[24..30], &pred);
        assert!(rmse < 0.7, "rmse {rmse}");
    }

    #[test]
    fn output_has_horizon_length() {
        let data: Vec<f64> = (0..500).map(|i| (i % 7) as f64).collect();
        let mut m = Gru::new(GruConfig {
            train: TrainConfig { max_epochs: 1, ..Default::default() },
            ..small_config()
        });
        m.fit(&uni(data[..350].to_vec()), &uni(data[350..430].to_vec())).unwrap();
        let pred = m.predict(&[data[430..454].to_vec()]).unwrap();
        assert_eq!(pred.len(), 6);
        assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = Gru::new(small_config());
        assert_eq!(m.predict(&[vec![0.0; 24]]).unwrap_err(), ForecastError::NotFitted);
    }
}
