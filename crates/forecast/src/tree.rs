//! CART regression trees: the base learners for gradient boosting (§3.4
//! "simple decision trees as the basic predictors") and the structure the
//! `analysis` crate's TreeSHAP implementation walks.

/// Tree growth limits.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required in each child of a split.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 3, min_samples_leaf: 5 }
    }
}

/// A node in the arena representation. Leaves carry predictions; internal
/// nodes route on `feature < threshold`.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node with its predicted value.
    Leaf {
        /// Mean target of the training samples that reached this leaf.
        value: f64,
        /// Number of training samples that reached this leaf.
        cover: f64,
    },
    /// Internal split: `x[feature] < threshold` goes left, else right.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
        /// Number of training samples that reached this node.
        cover: f64,
    },
}

/// Pre-binned feature matrix for fast histogram-based split finding
/// (the strategy of LightGBM-class boosters). Built once per ensemble and
/// shared by every tree.
#[derive(Debug, Clone)]
pub struct BinnedFeatures {
    /// Per-sample per-feature bin codes, row-major `n × f`.
    codes: Vec<u16>,
    /// Split thresholds: `thresholds[f][b]` separates bins `<= b` from
    /// `> b` in original feature units.
    thresholds: Vec<Vec<f64>>,
    n: usize,
    f: usize,
}

impl BinnedFeatures {
    /// Bins `features` (row-major `n × f`) into at most `max_bins`
    /// quantile bins per feature.
    pub fn build(features: &[f64], n: usize, f: usize, max_bins: usize) -> Self {
        assert_eq!(features.len(), n * f, "feature matrix shape");
        let max_bins = max_bins.clamp(2, u16::MAX as usize);
        let mut thresholds = Vec::with_capacity(f);
        for feat in 0..f {
            let mut vals: Vec<f64> = (0..n).map(|r| features[r * f + feat]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
            vals.dedup();
            let cuts = if vals.len() <= max_bins {
                // One bin per distinct value: cut between neighbours.
                vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            } else {
                (1..max_bins)
                    .map(|b| {
                        let idx = b * vals.len() / max_bins;
                        (vals[idx - 1] + vals[idx]) / 2.0
                    })
                    .collect::<Vec<f64>>()
            };
            thresholds.push(cuts);
        }
        let mut codes = vec![0u16; n * f];
        for r in 0..n {
            for feat in 0..f {
                let v = features[r * f + feat];
                let cuts = &thresholds[feat];
                // partition_point: number of cuts <= v == bin index.
                codes[r * f + feat] = cuts.partition_point(|&c| c <= v) as u16;
            }
        }
        BinnedFeatures { codes, thresholds, n, f }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.n
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.f
    }
}

/// A fitted regression tree (arena storage, root at index 0).
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Rebuilds a tree from a stored node arena (state deserialization).
    ///
    /// # Panics
    /// Panics if `nodes` is empty or any split child index is out of range.
    pub fn from_parts(nodes: Vec<Node>, num_features: usize) -> Self {
        assert!(!nodes.is_empty(), "tree needs at least one node");
        for node in &nodes {
            if let Node::Split { left, right, .. } = node {
                assert!(*left < nodes.len() && *right < nodes.len(), "child index out of range");
            }
        }
        RegressionTree { nodes, num_features }
    }

    /// Fits a tree minimizing squared error.
    ///
    /// `features` is row-major `n × num_features`.
    ///
    /// # Panics
    /// Panics if `targets.len() * num_features != features.len()` or the
    /// input is empty.
    pub fn fit(features: &[f64], targets: &[f64], num_features: usize, config: TreeConfig) -> Self {
        let n = targets.len();
        assert!(n > 0, "empty training set");
        assert_eq!(features.len(), n * num_features, "feature matrix shape");
        let mut tree = RegressionTree { nodes: Vec::new(), num_features };
        let indices: Vec<usize> = (0..n).collect();
        tree.grow(features, targets, indices, 0, config);
        tree
    }

    fn grow(
        &mut self,
        features: &[f64],
        targets: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: TreeConfig,
    ) -> usize {
        let n = indices.len();
        let sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let mean = sum / n as f64;
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean, cover: n as f64 });
            nodes.len() - 1
        };
        if depth >= config.max_depth || n < 2 * config.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }
        // Best split by SSE reduction, scanning each feature in sorted order.
        let total_sq: f64 = indices.iter().map(|&i| targets[i] * targets[i]).sum();
        let parent_sse = total_sq - sum * sum / n as f64;
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted = indices.clone();
        for f in 0..self.num_features {
            sorted.sort_by(|&a, &b| {
                features[a * self.num_features + f]
                    .partial_cmp(&features[b * self.num_features + f])
                    .expect("no NaN features")
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (k, &i) in sorted.iter().enumerate().take(n - 1) {
                left_sum += targets[i];
                left_sq += targets[i] * targets[i];
                let nl = k + 1;
                let nr = n - nl;
                if nl < config.min_samples_leaf || nr < config.min_samples_leaf {
                    continue;
                }
                let v_here = features[i * self.num_features + f];
                let v_next = features[sorted[k + 1] * self.num_features + f];
                if v_here == v_next {
                    continue; // cannot split between equal values
                }
                let right_sum = sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / nl as f64)
                    + (right_sq - right_sum * right_sum / nr as f64);
                let gain = parent_sse - sse;
                if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.0) {
                    best = Some((gain, f, (v_here + v_next) / 2.0));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| features[i * self.num_features + feature] < threshold);
        // Reserve this node's slot before growing children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean, cover: n as f64 }); // placeholder
        let left = self.grow(features, targets, left_idx, depth + 1, config);
        let right = self.grow(features, targets, right_idx, depth + 1, config);
        self.nodes[slot] = Node::Split { feature, threshold, left, right, cover: n as f64 };
        slot
    }

    /// Fits a tree on pre-binned features over the given sample indices,
    /// using histogram split finding (O(samples·features) per node instead
    /// of per-node sorting).
    pub fn fit_binned(
        binned: &BinnedFeatures,
        targets: &[f64],
        indices: Vec<usize>,
        config: TreeConfig,
    ) -> Self {
        assert_eq!(targets.len(), binned.n, "targets/sample count mismatch");
        assert!(!indices.is_empty(), "empty index set");
        let mut tree = RegressionTree { nodes: Vec::new(), num_features: binned.f };
        tree.grow_binned(binned, targets, indices, 0, config);
        tree
    }

    fn grow_binned(
        &mut self,
        binned: &BinnedFeatures,
        targets: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: TreeConfig,
    ) -> usize {
        let n = indices.len();
        let sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let mean = sum / n as f64;
        if depth >= config.max_depth || n < 2 * config.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean, cover: n as f64 });
            return self.nodes.len() - 1;
        }
        // Gain = SSE(parent) - SSE(children); the squared-target terms
        // cancel, so only the per-side sums and counts are needed.
        let mut best: Option<(f64, usize, u16)> = None; // (gain, feature, bin)
                                                        // Histogram scratch reused per feature.
        let max_bins = binned.thresholds.iter().map(|t| t.len() + 1).max().unwrap_or(1);
        let mut bin_sum = vec![0.0f64; max_bins];
        let mut bin_cnt = vec![0usize; max_bins];
        for feat in 0..binned.f {
            let nbins = binned.thresholds[feat].len() + 1;
            if nbins < 2 {
                continue;
            }
            bin_sum[..nbins].fill(0.0);
            bin_cnt[..nbins].fill(0);
            for &i in &indices {
                let b = binned.codes[i * binned.f + feat] as usize;
                bin_sum[b] += targets[i];
                bin_cnt[b] += 1;
            }
            let mut left_sum = 0.0;
            let mut left_cnt = 0usize;
            for b in 0..nbins - 1 {
                left_sum += bin_sum[b];
                left_cnt += bin_cnt[b];
                let right_cnt = n - left_cnt;
                if left_cnt < config.min_samples_leaf || right_cnt < config.min_samples_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                // SSE decomposes so only the sum terms matter for the gain.
                let gain = left_sum * left_sum / left_cnt as f64
                    + right_sum * right_sum / right_cnt as f64
                    - sum * sum / n as f64;
                if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.0) {
                    best = Some((gain, feat, b as u16));
                }
            }
        }
        let Some((_, feature, bin)) = best else {
            self.nodes.push(Node::Leaf { value: mean, cover: n as f64 });
            return self.nodes.len() - 1;
        };
        let threshold = binned.thresholds[feature][bin as usize];
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.into_iter().partition(|&i| binned.codes[i * binned.f + feature] <= bin);
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean, cover: n as f64 }); // placeholder
        let left = self.grow_binned(binned, targets, left_idx, depth + 1, config);
        let right = self.grow_binned(binned, targets, right_idx, depth + 1, config);
        self.nodes[slot] = Node::Split { feature, threshold, left, right, cover: n as f64 };
        slot
    }

    /// Predicts one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.num_features);
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value, .. } => return *value,
                Node::Split { feature, threshold, left, right, .. } => {
                    i = if x[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// The node arena (root at 0) — used by TreeSHAP.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy(rows: &[(&[f64], f64)]) -> (Vec<f64>, Vec<f64>, usize) {
        let nf = rows[0].0.len();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (f, t) in rows {
            x.extend_from_slice(f);
            y.push(*t);
        }
        (x, y, nf)
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let (x, y, nf) = xy(&[(&[1.0], 5.0), (&[2.0], 5.0), (&[3.0], 5.0), (&[4.0], 5.0)]);
        let t = RegressionTree::fit(&x, &y, nf, TreeConfig { max_depth: 3, min_samples_leaf: 1 });
        assert_eq!(t.nodes().len(), 1);
        assert_eq!(t.predict(&[99.0]), 5.0);
    }

    #[test]
    fn perfect_step_function_split() {
        let (x, y, nf) = xy(&[
            (&[0.0], 1.0),
            (&[1.0], 1.0),
            (&[2.0], 1.0),
            (&[10.0], 9.0),
            (&[11.0], 9.0),
            (&[12.0], 9.0),
        ]);
        let t = RegressionTree::fit(&x, &y, nf, TreeConfig { max_depth: 2, min_samples_leaf: 1 });
        assert_eq!(t.predict(&[0.5]), 1.0);
        assert_eq!(t.predict(&[11.5]), 9.0);
        // threshold should lie between 2 and 10
        match &t.nodes()[0] {
            Node::Split { threshold, cover, .. } => {
                assert!((2.0..=10.0).contains(threshold));
                assert_eq!(*cover, 6.0);
            }
            other => panic!("expected split at root, got {other:?}"),
        }
    }

    #[test]
    fn picks_informative_feature() {
        // Feature 0 is noise; feature 1 determines the target.
        let rows: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let noise = ((i * 17) % 7) as f64;
                let signal = if i % 2 == 0 { 0.0 } else { 10.0 };
                (vec![noise, signal], signal)
            })
            .collect();
        let refs: Vec<(&[f64], f64)> = rows.iter().map(|(f, t)| (f.as_slice(), *t)).collect();
        let (x, y, nf) = xy(&refs);
        let t = RegressionTree::fit(&x, &y, nf, TreeConfig::default());
        match &t.nodes()[0] {
            Node::Split { feature, .. } => assert_eq!(*feature, 1),
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn depth_limit_respected() {
        let rows: Vec<(Vec<f64>, f64)> =
            (0..256).map(|i| (vec![i as f64], (i % 16) as f64)).collect();
        let refs: Vec<(&[f64], f64)> = rows.iter().map(|(f, t)| (f.as_slice(), *t)).collect();
        let (x, y, nf) = xy(&refs);
        let t = RegressionTree::fit(&x, &y, nf, TreeConfig { max_depth: 4, min_samples_leaf: 1 });
        assert!(t.depth() <= 4);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let rows: Vec<(Vec<f64>, f64)> = (0..20).map(|i| (vec![i as f64], i as f64)).collect();
        let refs: Vec<(&[f64], f64)> = rows.iter().map(|(f, t)| (f.as_slice(), *t)).collect();
        let (x, y, nf) = xy(&refs);
        let t = RegressionTree::fit(&x, &y, nf, TreeConfig { max_depth: 10, min_samples_leaf: 5 });
        for node in t.nodes() {
            if let Node::Leaf { cover, .. } = node {
                assert!(*cover >= 5.0, "leaf cover {cover}");
            }
        }
    }

    #[test]
    fn binned_fit_matches_exact_on_separable_data() {
        let (x, y, nf) = xy(&[
            (&[0.0], 1.0),
            (&[1.0], 1.0),
            (&[2.0], 1.0),
            (&[10.0], 9.0),
            (&[11.0], 9.0),
            (&[12.0], 9.0),
        ]);
        let binned = BinnedFeatures::build(&x, y.len(), nf, 64);
        let t = RegressionTree::fit_binned(
            &binned,
            &y,
            (0..y.len()).collect(),
            TreeConfig { max_depth: 2, min_samples_leaf: 1 },
        );
        assert_eq!(t.predict(&[0.5]), 1.0);
        assert_eq!(t.predict(&[11.5]), 9.0);
    }

    #[test]
    fn binned_fit_approximates_exact_on_smooth_target() {
        let rows: Vec<(Vec<f64>, f64)> = (0..500)
            .map(|i| {
                let x = i as f64 / 50.0;
                (vec![x, (i % 7) as f64], (x * 1.3).sin() * 2.0)
            })
            .collect();
        let refs: Vec<(&[f64], f64)> = rows.iter().map(|(f, t)| (f.as_slice(), *t)).collect();
        let (x, y, nf) = xy(&refs);
        let cfg = TreeConfig { max_depth: 5, min_samples_leaf: 3 };
        let exact = RegressionTree::fit(&x, &y, nf, cfg);
        let binned = BinnedFeatures::build(&x, y.len(), nf, 64);
        let approx = RegressionTree::fit_binned(&binned, &y, (0..y.len()).collect(), cfg);
        let sse = |t: &RegressionTree| {
            rows.iter()
                .map(|(f, target)| {
                    let p = t.predict(f);
                    (target - p) * (target - p)
                })
                .sum::<f64>()
        };
        let (se, sb) = (sse(&exact), sse(&approx));
        assert!(sb < 2.0 * se + 1e-6, "binned sse {sb} vs exact {se}");
    }

    #[test]
    fn binned_subset_fitting() {
        // Fitting on a subset must ignore excluded samples entirely.
        let (x, y, nf) = xy(&[
            (&[0.0], 1.0),
            (&[1.0], 1.0),
            (&[2.0], 100.0), // excluded outlier
            (&[3.0], 1.0),
        ]);
        let binned = BinnedFeatures::build(&x, y.len(), nf, 8);
        let t = RegressionTree::fit_binned(
            &binned,
            &y,
            vec![0, 1, 3],
            TreeConfig { max_depth: 3, min_samples_leaf: 1 },
        );
        assert_eq!(t.predict(&[2.0]), 1.0);
    }

    #[test]
    fn binning_respects_max_bins() {
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let b = BinnedFeatures::build(&x, 1000, 1, 16);
        assert_eq!(b.num_samples(), 1000);
        assert_eq!(b.num_features(), 1);
        let max_code = (0..1000).map(|i| b.codes[i]).max().expect("non-empty");
        assert!(max_code < 16, "code {max_code}");
    }

    #[test]
    fn tree_reduces_sse_vs_mean() {
        let rows: Vec<(Vec<f64>, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                (vec![x], x.sin() * 3.0)
            })
            .collect();
        let refs: Vec<(&[f64], f64)> = rows.iter().map(|(f, t)| (f.as_slice(), *t)).collect();
        let (x, y, nf) = xy(&refs);
        let t = RegressionTree::fit(&x, &y, nf, TreeConfig { max_depth: 5, min_samples_leaf: 2 });
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let sse_mean: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
        let sse_tree: f64 = rows
            .iter()
            .map(|(f, target)| {
                let p = t.predict(f);
                (target - p) * (target - p)
            })
            .sum();
        assert!(sse_tree < sse_mean / 4.0, "{sse_tree} vs {sse_mean}");
    }
}
