//! Informer (Zhou et al., AAAI 2021): a Transformer with ProbSparse
//! self-attention in the encoder and a generative one-pass decoder. A thin
//! instantiation of [`crate::seq2seq::Seq2Seq`]; the sparse query selection
//! lives in `neural::attention`.

use crate::seq2seq::{Seq2Seq, Seq2SeqConfig};

/// Builds the Informer forecaster.
pub fn informer(config: Seq2SeqConfig) -> Seq2Seq {
    Seq2Seq::new("Informer", config)
}

/// Informer with the paper-scale default configuration.
pub fn default_informer() -> Seq2Seq {
    informer(Seq2SeqConfig::informer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Forecaster;
    use neural::attention::AttentionKind;

    #[test]
    fn name_and_sparse_attention() {
        let m = default_informer();
        assert_eq!(m.name(), "Informer");
        assert!(matches!(m.config().encoder_attention, AttentionKind::ProbSparse { factor: 5 }));
    }
}
