//! Resilient ensembles — the paper's §5 research direction: "create an
//! ensemble model using Transformer which has good overall forecasting
//! accuracy and Arima which is more resilient. This should improve the
//! resilience and overall accuracy of forecasting models."
//!
//! [`Ensemble`] wraps any set of fitted forecasters and combines their
//! horizon forecasts by simple or validation-weighted averaging. The
//! weighting is learned once on the raw validation subset, so a fragile
//! member keeps its influence from clean-data accuracy while the resilient
//! member bounds the damage under compression.

use neural::tensor::Tensor;
use tsdata::metrics::rmse;
use tsdata::series::MultiSeries;
use tsdata::split::make_windows;

use crate::batch::stage_windows;
use crate::model::{validate_batch, validate_window, ForecastError, Forecaster};

/// How member forecasts are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Unweighted mean of member forecasts.
    Mean,
    /// Weights proportional to inverse squared validation RMSE, learned
    /// at fit time on the raw validation subset.
    InverseValidationError,
}

/// An ensemble of forecasters.
pub struct Ensemble {
    members: Vec<Box<dyn Forecaster>>,
    combine: Combine,
    weights: Vec<f64>,
    name: &'static str,
}

impl Ensemble {
    /// Creates an ensemble; all members must share `input_len`/`horizon`.
    ///
    /// # Panics
    /// Panics if `members` is empty or window geometry disagrees.
    pub fn new(members: Vec<Box<dyn Forecaster>>, combine: Combine) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let (k, h) = (members[0].input_len(), members[0].horizon());
        for m in &members {
            assert_eq!(m.input_len(), k, "member input_len mismatch");
            assert_eq!(m.horizon(), h, "member horizon mismatch");
        }
        let n = members.len();
        Ensemble { members, combine, weights: vec![1.0 / n as f64; n], name: "Ensemble" }
    }

    /// The learned member weights (uniform until fitted).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Member count.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    fn learn_weights(&mut self, val: &MultiSeries) -> Result<(), ForecastError> {
        let k = self.input_len();
        let h = self.horizon();
        let windows = make_windows(val, k, h, (k / 2).max(1));
        if windows.is_empty() {
            return Ok(()); // keep uniform weights
        }
        let staged = stage_windows(&windows, k);
        let truth: Vec<f64> = windows.iter().flat_map(|w| w.target.iter().copied()).collect();
        let mut errors = Vec::with_capacity(self.members.len());
        for member in &self.members {
            // Batched rows concatenate in window order, so the flattened
            // prediction vector matches the old per-window loop exactly.
            let preds = member.predict_batch(&staged)?;
            errors.push(rmse(&truth, preds.data()).max(1e-9));
        }
        // Inverse *squared* error sharpens the weighting so a clearly
        // better member dominates while weaker members still contribute.
        let inv: Vec<f64> = errors.iter().map(|e| 1.0 / (e * e)).collect();
        let total: f64 = inv.iter().sum();
        self.weights = inv.into_iter().map(|w| w / total).collect();
        Ok(())
    }
}

impl Forecaster for Ensemble {
    fn name(&self) -> &'static str {
        self.name
    }

    fn input_len(&self) -> usize {
        self.members[0].input_len()
    }

    fn horizon(&self) -> usize {
        self.members[0].horizon()
    }

    fn fit(&mut self, train: &MultiSeries, val: &MultiSeries) -> Result<(), ForecastError> {
        for member in &mut self.members {
            member.fit(train, val)?;
        }
        if self.combine == Combine::InverseValidationError {
            self.learn_weights(val)?;
        }
        Ok(())
    }

    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        validate_window(inputs, self.input_len())?;
        let h = self.horizon();
        let mut combined = vec![0.0; h];
        for (member, &w) in self.members.iter().zip(&self.weights) {
            let pred = member.predict(inputs)?;
            for (c, p) in combined.iter_mut().zip(pred) {
                *c += w * p;
            }
        }
        Ok(combined)
    }

    fn predict_batch(&self, windows: &Tensor) -> Result<Tensor, ForecastError> {
        validate_batch(windows, self.input_len())?;
        let mut combined = Tensor::zeros(windows.rows(), self.horizon());
        // Same member order and per-element `c += w * p` accumulation as
        // `predict`, so each output row is bitwise equal to the looped path.
        for (member, &w) in self.members.iter().zip(&self.weights) {
            let pred = member.predict_batch(windows)?;
            for (c, p) in combined.data_mut().iter_mut().zip(pred.data()) {
                *c += w * p;
            }
        }
        Ok(combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_model, BuildOptions, ModelKind};
    use tsdata::series::RegularTimeSeries;
    use tsdata::split::{split, SplitSpec};

    fn dataset(n: usize) -> MultiSeries {
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                10.0 + 3.0 * (i as f64 / 24.0 * std::f64::consts::TAU).sin()
                    + ((i * 13) % 7) as f64 * 0.03
            })
            .collect();
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 3600, vals).unwrap())
    }

    fn options() -> BuildOptions {
        BuildOptions { input_len: 48, horizon: 12, season: Some(24), ..Default::default() }
    }

    #[test]
    fn ensemble_averages_members() {
        let data = dataset(1500);
        let s = split(&data, SplitSpec::default()).unwrap();
        let mut ens = Ensemble::new(
            vec![
                build_model(ModelKind::Arima, options()),
                build_model(ModelKind::GBoost, options()),
            ],
            Combine::Mean,
        );
        ens.fit(&s.train, &s.val).unwrap();
        assert_eq!(ens.weights(), &[0.5, 0.5]);
        let window = s.test.target().values()[..48].to_vec();
        let pred = ens.predict(std::slice::from_ref(&window)).unwrap();
        assert_eq!(pred.len(), 12);
        // Combined forecast lies between (or at) the members' envelope.
        let mut a = build_model(ModelKind::Arima, options());
        a.fit(&s.train, &s.val).unwrap();
        let mut g = build_model(ModelKind::GBoost, options());
        g.fit(&s.train, &s.val).unwrap();
        let pa = a.predict(std::slice::from_ref(&window)).unwrap();
        let pg = g.predict(&[window]).unwrap();
        for i in 0..12 {
            let lo = pa[i].min(pg[i]) - 1e-9;
            let hi = pa[i].max(pg[i]) + 1e-9;
            assert!((lo..=hi).contains(&pred[i]), "pred outside member envelope");
        }
    }

    #[test]
    fn weighted_combine_learns_nonuniform_weights() {
        let data = dataset(1500);
        let s = split(&data, SplitSpec::default()).unwrap();
        let mut ens = Ensemble::new(
            vec![
                build_model(ModelKind::GBoost, options()),
                build_model(ModelKind::Gru, options()), // weaker at tiny scale
            ],
            Combine::InverseValidationError,
        );
        ens.fit(&s.train, &s.val).unwrap();
        let w = ens.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x > 0.0));
        assert_ne!(w[0], w[1], "weights should differ between members");
    }

    #[test]
    fn ensemble_accuracy_at_least_close_to_best_member() {
        let data = dataset(2000);
        let s = split(&data, SplitSpec::default()).unwrap();
        let kinds = [ModelKind::Arima, ModelKind::GBoost];
        let mut member_rmse = Vec::new();
        let windows = make_windows(&s.test, 48, 12, 24);
        for kind in kinds {
            let mut m = build_model(kind, options());
            m.fit(&s.train, &s.val).unwrap();
            let mut preds = Vec::new();
            let mut truth = Vec::new();
            for w in &windows {
                preds.extend(m.predict(&w.inputs).unwrap());
                truth.extend(w.target.iter().copied());
            }
            member_rmse.push(rmse(&truth, &preds));
        }
        let mut ens = Ensemble::new(
            kinds.iter().map(|&k| build_model(k, options())).collect(),
            Combine::InverseValidationError,
        );
        ens.fit(&s.train, &s.val).unwrap();
        let mut preds = Vec::new();
        let mut truth = Vec::new();
        for w in &windows {
            preds.extend(ens.predict(&w.inputs).unwrap());
            truth.extend(w.target.iter().copied());
        }
        let ens_rmse = rmse(&truth, &preds);
        let best = member_rmse.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = member_rmse.iter().cloned().fold(0.0f64, f64::max);
        assert!(ens_rmse < worst, "ensemble {ens_rmse} should beat the worst member {worst}");
        // Weighted averaging cannot be guaranteed to match the best member
        // (validation error is only a proxy for test error), but it must
        // stay the same order of magnitude.
        assert!(
            ens_rmse < best * 5.0,
            "ensemble {ens_rmse} drifted far from the best member {best}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        Ensemble::new(vec![], Combine::Mean);
    }

    #[test]
    #[should_panic(expected = "horizon mismatch")]
    fn mismatched_members_rejected() {
        let a = build_model(ModelKind::GBoost, options());
        let b = build_model(ModelKind::GBoost, BuildOptions { horizon: 6, ..options() });
        Ensemble::new(vec![a, b], Combine::Mean);
    }
}
