//! Shared encoder-decoder sequence model underlying the Transformer and
//! Informer forecasters.
//!
//! Architecture (per sample; batching loops outside the attention):
//!
//! * scalar embedding `Dense(1 → d_model)` + sinusoidal positional encoding;
//! * `enc_layers` × (self-attention → add&norm → FFN → add&norm), where the
//!   self-attention is full for Transformer and ProbSparse for Informer;
//! * a *generative* decoder (Informer §4.2, also used for the vanilla
//!   Transformer here): the decoder input is the last `label_len` observed
//!   values concatenated with zero placeholders for the horizon, processed
//!   in ONE forward pass — causal self-attention, cross-attention to the
//!   encoder output, FFN — then projected to scalars; the horizon tail is
//!   the forecast.
//!
//! Omitted vs. the full Informer: the convolutional distilling stage
//! between encoder layers (a constant-factor memory optimization that does
//! not change which queries attend), documented in DESIGN.md.

use neural::attention::{
    positional_encoding, positional_encoding_tiled, AttentionKind, MultiHeadAttention,
};
use neural::graph::{Graph, NodeId, ParamStore};
use neural::layers::{Activation, Dense, Dropout, LayerNorm};
use neural::tensor::Tensor;
use neural::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;

use crate::batch::{inverse_rows, scale_rows};
use crate::deep::{make_batches, prepare, Batch, BatchSpec};
use crate::model::{validate_batch, validate_window, ForecastError, Forecaster};
use crate::stateio;

/// Configuration shared by Transformer and Informer.
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    /// Input window length `k`.
    pub input_len: usize,
    /// Forecast horizon `h`.
    pub horizon: usize,
    /// Decoder warm-start ("label") length.
    pub label_len: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub enc_layers: usize,
    /// Decoder layers.
    pub dec_layers: usize,
    /// Feed-forward hidden width.
    pub ffn: usize,
    /// Dropout probability.
    pub dropout: f64,
    /// Encoder self-attention kind (full ⇒ Transformer, sparse ⇒ Informer).
    pub encoder_attention: AttentionKind,
    /// Batching limits.
    pub batches: BatchSpec,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Seq2SeqConfig {
    /// Vanilla Transformer preset.
    pub fn transformer() -> Self {
        Seq2SeqConfig {
            input_len: 96,
            horizon: 24,
            label_len: 24,
            d_model: 16,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            ffn: 32,
            dropout: 0.05,
            encoder_attention: AttentionKind::Full,
            batches: BatchSpec { stride: 8, batch_size: 8, max_windows: 400 },
            train: TrainConfig { max_epochs: 15, ..Default::default() },
        }
    }

    /// Informer preset: ProbSparse encoder self-attention (factor 5).
    pub fn informer() -> Self {
        Seq2SeqConfig {
            encoder_attention: AttentionKind::ProbSparse { factor: 5 },
            ..Self::transformer()
        }
    }
}

struct EncoderLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ff1: Dense,
    ff2: Dense,
}

struct DecoderLayer {
    self_attn: MultiHeadAttention,
    cross_attn: MultiHeadAttention,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ln3: LayerNorm,
    ff1: Dense,
    ff2: Dense,
}

struct Net {
    embed: Dense,
    dec_embed: Dense,
    encoder: Vec<EncoderLayer>,
    decoder: Vec<DecoderLayer>,
    proj: Dense,
}

#[allow(clippy::too_many_arguments)]
fn ffn_block(
    g: &mut Graph,
    store: &ParamStore,
    ff1: &Dense,
    ff2: &Dense,
    x: NodeId,
    dropout: &Dropout,
    training: bool,
    rng: &mut StdRng,
) -> NodeId {
    let h = ff1.forward(g, store, x);
    let h = dropout.forward(g, h, training, rng);
    ff2.forward(g, store, h)
}

/// The generic encoder-decoder forecaster. Instantiated via
/// [`crate::transformer::transformer`] and [`crate::informer::informer`].
pub struct Seq2Seq {
    name: &'static str,
    config: Seq2SeqConfig,
    store: ParamStore,
    net: Option<Net>,
    scaler: Option<StandardScaler>,
}

impl Seq2Seq {
    /// Creates an unfitted model with the given display name.
    pub fn new(name: &'static str, config: Seq2SeqConfig) -> Self {
        assert!(config.label_len <= config.input_len, "label_len exceeds input_len");
        Seq2Seq { name, config, store: ParamStore::new(), net: None, scaler: None }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Seq2SeqConfig {
        &self.config
    }

    fn build_net(&self, store: &mut ParamStore, rng: &mut StdRng) -> Net {
        let c = &self.config;
        let embed = Dense::new(store, "embed", 1, c.d_model, Activation::Identity, rng);
        let dec_embed = Dense::new(store, "dec_embed", 1, c.d_model, Activation::Identity, rng);
        let encoder = (0..c.enc_layers)
            .map(|l| EncoderLayer {
                attn: MultiHeadAttention::new(
                    store,
                    &format!("enc{l}.attn"),
                    c.d_model,
                    c.heads,
                    rng,
                ),
                ln1: LayerNorm::new(store, &format!("enc{l}.ln1"), c.d_model),
                ln2: LayerNorm::new(store, &format!("enc{l}.ln2"), c.d_model),
                ff1: Dense::new(
                    store,
                    &format!("enc{l}.ff1"),
                    c.d_model,
                    c.ffn,
                    Activation::Relu,
                    rng,
                ),
                ff2: Dense::new(
                    store,
                    &format!("enc{l}.ff2"),
                    c.ffn,
                    c.d_model,
                    Activation::Identity,
                    rng,
                ),
            })
            .collect();
        let decoder = (0..c.dec_layers)
            .map(|l| DecoderLayer {
                self_attn: MultiHeadAttention::new(
                    store,
                    &format!("dec{l}.self"),
                    c.d_model,
                    c.heads,
                    rng,
                ),
                cross_attn: MultiHeadAttention::new(
                    store,
                    &format!("dec{l}.cross"),
                    c.d_model,
                    c.heads,
                    rng,
                ),
                ln1: LayerNorm::new(store, &format!("dec{l}.ln1"), c.d_model),
                ln2: LayerNorm::new(store, &format!("dec{l}.ln2"), c.d_model),
                ln3: LayerNorm::new(store, &format!("dec{l}.ln3"), c.d_model),
                ff1: Dense::new(
                    store,
                    &format!("dec{l}.ff1"),
                    c.d_model,
                    c.ffn,
                    Activation::Relu,
                    rng,
                ),
                ff2: Dense::new(
                    store,
                    &format!("dec{l}.ff2"),
                    c.ffn,
                    c.d_model,
                    Activation::Identity,
                    rng,
                ),
            })
            .collect();
        let proj = Dense::new(store, "proj", c.d_model, 1, Activation::Identity, rng);
        Net { embed, dec_embed, encoder, decoder, proj }
    }

    /// Forward pass for ONE sample window (scaled); returns `[1, horizon]`.
    fn forward_sample(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        net: &Net,
        window: &[f64],
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let c = &self.config;
        let dropout = Dropout::new(c.dropout);
        // --- Encoder ---
        let x_col = g.input(Tensor::col(window));
        let mut enc = net.embed.forward(g, store, x_col); // [k, d]
        let pe = g.input(positional_encoding(window.len(), c.d_model));
        enc = g.add(enc, pe);
        for layer in &net.encoder {
            let attn = layer.attn.forward(g, store, enc, enc, enc, c.encoder_attention, false);
            let attn = dropout.forward(g, attn, training, rng);
            let sum = g.add(enc, attn);
            let normed = layer.ln1.forward(g, store, sum);
            let ff = ffn_block(g, store, &layer.ff1, &layer.ff2, normed, &dropout, training, rng);
            let sum2 = g.add(normed, ff);
            enc = layer.ln2.forward(g, store, sum2);
        }
        // --- Decoder (generative one-pass) ---
        let mut dec_in: Vec<f64> = window[window.len() - c.label_len..].to_vec();
        dec_in.extend(std::iter::repeat_n(0.0, c.horizon));
        let d_col = g.input(Tensor::col(&dec_in));
        let mut dec = net.dec_embed.forward(g, store, d_col);
        let pe_d = g.input(positional_encoding(dec_in.len(), c.d_model));
        dec = g.add(dec, pe_d);
        for layer in &net.decoder {
            let sa = layer.self_attn.forward(g, store, dec, dec, dec, AttentionKind::Full, true);
            let sa = dropout.forward(g, sa, training, rng);
            let sum = g.add(dec, sa);
            let normed = layer.ln1.forward(g, store, sum);
            let ca =
                layer.cross_attn.forward(g, store, normed, enc, enc, AttentionKind::Full, false);
            let ca = dropout.forward(g, ca, training, rng);
            let sum2 = g.add(normed, ca);
            let normed2 = layer.ln2.forward(g, store, sum2);
            let ff = ffn_block(g, store, &layer.ff1, &layer.ff2, normed2, &dropout, training, rng);
            let sum3 = g.add(normed2, ff);
            dec = layer.ln3.forward(g, store, sum3);
        }
        let scalars = net.proj.forward(g, store, dec); // [label+h, 1]
        let tail = g.slice_rows(scalars, c.label_len, c.label_len + c.horizon);
        g.transpose(tail) // [1, h]
    }

    /// Stacked inference forward for `n` scaled windows `x [n, k]`,
    /// returning the `[n·(label_len+horizon), 1]` projection stack (the
    /// caller gathers each sample's horizon tail).
    ///
    /// Embeddings, feed-forward blocks, layer norms and the final
    /// projection all run on `[n*L, d_model]` stacks (one matmul each);
    /// attention stacks its Q/K/V projections and falls back to
    /// per-sample score blocks inside
    /// [`MultiHeadAttention::forward_stacked`]. Dropout is an identity at
    /// inference, so skipping it here keeps every row bitwise equal to
    /// [`Self::forward_sample`].
    fn forward_stacked_eval(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        net: &Net,
        x: &Tensor,
    ) -> NodeId {
        let c = &self.config;
        let (n, k) = x.shape();
        // --- Encoder ---
        // Row-major [n, k] flattens to the n windows back to back, which
        // is exactly the stacked [n*k, 1] scalar-embedding input.
        let x_col = g.input(Tensor::col(x.data()));
        let mut enc = net.embed.forward(g, store, x_col); // [n*k, d]
        let pe = g.input(positional_encoding_tiled(k, c.d_model, n));
        enc = g.add(enc, pe);
        for layer in &net.encoder {
            let attn =
                layer.attn.forward_stacked(g, store, enc, enc, enc, c.encoder_attention, false, n);
            let sum = g.add(enc, attn);
            let normed = layer.ln1.forward(g, store, sum);
            let h = layer.ff1.forward(g, store, normed);
            let ff = layer.ff2.forward(g, store, h);
            let sum2 = g.add(normed, ff);
            enc = layer.ln2.forward(g, store, sum2);
        }
        // --- Decoder (generative one-pass) ---
        let ld = c.label_len + c.horizon;
        let mut dec_data = Vec::with_capacity(n * ld);
        for r in 0..n {
            dec_data.extend_from_slice(&x.data()[r * k + (k - c.label_len)..(r + 1) * k]);
            dec_data.extend(std::iter::repeat_n(0.0, c.horizon));
        }
        let d_col = g.input(Tensor::col(&dec_data));
        let mut dec = net.dec_embed.forward(g, store, d_col);
        let pe_d = g.input(positional_encoding_tiled(ld, c.d_model, n));
        dec = g.add(dec, pe_d);
        for layer in &net.decoder {
            let sa = layer.self_attn.forward_stacked(
                g,
                store,
                dec,
                dec,
                dec,
                AttentionKind::Full,
                true,
                n,
            );
            let sum = g.add(dec, sa);
            let normed = layer.ln1.forward(g, store, sum);
            let ca = layer.cross_attn.forward_stacked(
                g,
                store,
                normed,
                enc,
                enc,
                AttentionKind::Full,
                false,
                n,
            );
            let sum2 = g.add(normed, ca);
            let normed2 = layer.ln2.forward(g, store, sum2);
            let h = layer.ff1.forward(g, store, normed2);
            let ff = layer.ff2.forward(g, store, h);
            let sum3 = g.add(normed2, ff);
            dec = layer.ln3.forward(g, store, sum3);
        }
        net.proj.forward(g, store, dec) // [n*ld, 1]; horizon tails gathered by the caller
    }

    /// Batch forward: stacks per-sample predictions into `[n, horizon]`.
    fn forward_batch(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        net: &Net,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let (n, k) = batch.x.shape();
        let mut preds: Option<NodeId> = None;
        for r in 0..n {
            let window = &batch.x.data()[r * k..(r + 1) * k];
            let p = self.forward_sample(g, store, net, window, training, rng);
            preds = Some(match preds {
                None => p,
                Some(acc) => g.vstack(acc, p),
            });
        }
        preds.expect("non-empty batch")
    }
}

impl Forecaster for Seq2Seq {
    fn name(&self) -> &'static str {
        self.name
    }

    fn input_len(&self) -> usize {
        self.config.input_len
    }

    fn horizon(&self) -> usize {
        self.config.horizon
    }

    fn fit(&mut self, train_data: &MultiSeries, val: &MultiSeries) -> Result<(), ForecastError> {
        let scaler = prepare(train_data, self.config.input_len, self.config.horizon)?;
        let train_b = make_batches(
            train_data,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );
        if train_b.is_empty() {
            return Err(ForecastError::TooShort {
                needed: self.config.input_len + self.config.horizon,
                got: train_data.len(),
            });
        }
        let val_b = make_batches(
            val,
            &scaler,
            self.config.input_len,
            self.config.horizon,
            self.config.batches,
        );
        let mut rng = StdRng::seed_from_u64(self.config.train.seed);
        let mut store = ParamStore::new();
        let net = self.build_net(&mut store, &mut rng);

        let this = &*self;
        train(
            &mut store,
            this.config.train,
            train_b.len(),
            val_b.len(),
            |g, s, b, training, rng| {
                let batch = if training { &train_b[b] } else { &val_b[b] };
                let pred = this.forward_batch(g, s, &net, batch, training, rng);
                g.mse(pred, &batch.y)
            },
        );

        self.store = store;
        self.net = Some(net);
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        let (Some(net), Some(scaler)) = (&self.net, &self.scaler) else {
            return Err(ForecastError::NotFitted);
        };
        validate_window(inputs, self.config.input_len)?;
        let x = scaler.transform(0, &inputs[0]);
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let pred = self.forward_sample(&mut g, &self.store, net, &x, false, &mut rng);
        Ok(scaler.inverse(0, g.value(pred).data()))
    }

    fn predict_batch(&self, windows: &Tensor) -> Result<Tensor, ForecastError> {
        let (Some(net), Some(scaler)) = (&self.net, &self.scaler) else {
            return Err(ForecastError::NotFitted);
        };
        validate_batch(windows, self.config.input_len)?;
        if windows.rows() == 0 {
            return Ok(Tensor::zeros(0, self.config.horizon));
        }
        let x = scale_rows(windows, scaler);
        let (n, k) = x.shape();
        let h = self.config.horizon;
        let ld = self.config.label_len + h;
        let mut pred = Tensor::zeros(n, h);
        // Sub-batches keep every stacked tensor (scores are the widest, at
        // [chunk·L, L]) inside L2; one flat 64-window stack measures ~2x
        // slower than chunks of 8 on a 2 MiB-L2 host because each graph op
        // materializes its output and the working set spills. Chunking is
        // row-local, so the split cannot change any output bit.
        const CHUNK: usize = 8;
        for start in (0..n).step_by(CHUNK) {
            let rows = CHUNK.min(n - start);
            let xc = Tensor::new(rows, k, x.data()[start * k..(start + rows) * k].to_vec());
            let mut g = Graph::new();
            let scalars = self.forward_stacked_eval(&mut g, &self.store, net, &xc);
            // Gather each sample's horizon tail from the [rows*ld, 1]
            // projection stack directly — no per-sample graph nodes.
            let stacked = g.value(scalars).data();
            for r in 0..rows {
                pred.data_mut()[(start + r) * h..(start + r + 1) * h]
                    .copy_from_slice(&stacked[r * ld + self.config.label_len..(r + 1) * ld]);
            }
        }
        Ok(inverse_rows(&pred, scaler))
    }

    fn save_state(&self) -> Result<neural::state::StateDict, ForecastError> {
        if self.net.is_none() {
            return Err(ForecastError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(ForecastError::NotFitted)?;
        let mut dict = neural::state::StateDict::new();
        // Tagging with the display name keeps a Transformer snapshot from
        // loading into an Informer even though the two share this struct.
        stateio::put_tag(&mut dict, self.name());
        stateio::put_scaler(&mut dict, "scaler", scaler);
        stateio::put_params(&mut dict, &self.store);
        Ok(dict)
    }

    fn load_state(&mut self, state: &neural::state::StateDict) -> Result<(), ForecastError> {
        stateio::check_tag(state, self.name())?;
        let scaler = stateio::get_scaler(state, "scaler")?;
        let mut rng = StdRng::seed_from_u64(self.config.train.seed);
        let mut store = ParamStore::new();
        let net = self.build_net(&mut store, &mut rng);
        stateio::check_len(state, store.len() + 3)?;
        stateio::get_params(&mut store, state)?;
        self.store = store;
        self.net = Some(net);
        self.scaler = Some(scaler);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 900, values).unwrap())
    }

    fn tiny_config() -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_len: 16,
            horizon: 4,
            label_len: 8,
            d_model: 8,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            ffn: 16,
            dropout: 0.0,
            encoder_attention: AttentionKind::Full,
            batches: BatchSpec { stride: 4, batch_size: 8, max_windows: 120 },
            train: TrainConfig { max_epochs: 20, ..Default::default() },
        }
    }

    #[test]
    fn transformer_learns_seasonal_series() {
        let n = 700;
        let data: Vec<f64> =
            (0..n).map(|i| (i as f64 / 8.0 * std::f64::consts::TAU).sin()).collect();
        let (tr, rest) = data.split_at(500);
        let (va, te) = rest.split_at(100);
        let mut model = Seq2Seq::new("Transformer", tiny_config());
        model.fit(&uni(tr.to_vec()), &uni(va.to_vec())).unwrap();
        let pred = model.predict(&[te[..16].to_vec()]).unwrap();
        let rmse = tsdata::metrics::rmse(&te[16..20], &pred);
        assert!(rmse < 0.6, "rmse {rmse}");
    }

    #[test]
    fn informer_variant_runs() {
        let n = 500;
        let data: Vec<f64> =
            (0..n).map(|i| (i as f64 / 10.0 * std::f64::consts::TAU).cos() * 2.0).collect();
        let (tr, rest) = data.split_at(350);
        let (va, te) = rest.split_at(75);
        let mut model = Seq2Seq::new(
            "Informer",
            Seq2SeqConfig {
                encoder_attention: AttentionKind::ProbSparse { factor: 1 },
                train: TrainConfig { max_epochs: 5, ..Default::default() },
                ..tiny_config()
            },
        );
        model.fit(&uni(tr.to_vec()), &uni(va.to_vec())).unwrap();
        let pred = model.predict(&[te[..16].to_vec()]).unwrap();
        assert_eq!(pred.len(), 4);
        assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = Seq2Seq::new("Transformer", tiny_config());
        assert_eq!(m.predict(&[vec![0.0; 16]]).unwrap_err(), ForecastError::NotFitted);
    }

    #[test]
    fn stacked_eval_matches_per_sample_forward_bitwise() {
        // Both attention kinds: Full (Transformer) and ProbSparse with a
        // factor small enough that the sparse path actually triggers.
        for kind in [AttentionKind::Full, AttentionKind::ProbSparse { factor: 1 }] {
            let data: Vec<f64> = (0..400)
                .map(|i| (i as f64 / 9.0 * std::f64::consts::TAU).sin() + (i % 5) as f64 * 0.1)
                .collect();
            let mut m = Seq2Seq::new(
                "Transformer",
                Seq2SeqConfig {
                    encoder_attention: kind,
                    train: TrainConfig { max_epochs: 2, ..Default::default() },
                    ..tiny_config()
                },
            );
            m.fit(&uni(data[..300].to_vec()), &uni(data[300..380].to_vec())).unwrap();
            let windows: Vec<Vec<f64>> =
                (0..5).map(|i| data[300 + i * 3..300 + i * 3 + 16].to_vec()).collect();
            let mut staged = Tensor::zeros(5, 16);
            for (r, w) in windows.iter().enumerate() {
                staged.data_mut()[r * 16..(r + 1) * 16].copy_from_slice(w);
            }
            let batched = m.predict_batch(&staged).unwrap();
            assert_eq!(batched.shape(), (5, 4));
            for (r, w) in windows.iter().enumerate() {
                let single = m.predict(std::slice::from_ref(w)).unwrap();
                assert_eq!(
                    &batched.data()[r * 4..(r + 1) * 4],
                    single.as_slice(),
                    "window {r} diverged under {kind:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "label_len")]
    fn label_longer_than_input_rejected() {
        Seq2Seq::new("x", Seq2SeqConfig { label_len: 99, ..tiny_config() });
    }
}
