//! The vanilla encoder-decoder Transformer forecaster (Vaswani et al. 2017;
//! the paper uses Darts' Transformer, §3.4). A thin instantiation of
//! [`crate::seq2seq::Seq2Seq`] with full attention.

use crate::seq2seq::{Seq2Seq, Seq2SeqConfig};

/// Builds the Transformer forecaster.
pub fn transformer(config: Seq2SeqConfig) -> Seq2Seq {
    Seq2Seq::new("Transformer", config)
}

/// Transformer with the paper-scale default configuration.
pub fn default_transformer() -> Seq2Seq {
    transformer(Seq2SeqConfig::transformer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Forecaster;
    use neural::attention::AttentionKind;

    #[test]
    fn name_and_defaults() {
        let m = default_transformer();
        assert_eq!(m.name(), "Transformer");
        assert_eq!(m.input_len(), 96);
        assert_eq!(m.horizon(), 24);
        assert_eq!(m.config().encoder_attention, AttentionKind::Full);
    }
}
