//! Window batching shared by deep-model *training* and grid *evaluation*.
//!
//! Historically this machinery lived inside [`crate::deep`] and only fed
//! the training loops; the batched inference path (DESIGN.md §13) stages
//! evaluation windows through the same [`BatchSpec`]/[`make_batches`]
//! helpers so the two paths cannot drift. [`stage_windows`] is the
//! evaluation-side entry point: it stacks raw (unscaled) window rows into
//! the `[n, input_len]` matrices [`crate::model::Forecaster::predict_batch`]
//! consumes.

use neural::tensor::Tensor;
use tsdata::scaler::StandardScaler;
use tsdata::series::MultiSeries;
use tsdata::split::{make_windows, Window};

/// One training batch: inputs `[batch, input_len]` and targets
/// `[batch, horizon]`, both in scaled units (target channel only).
#[derive(Debug, Clone)]
pub struct Batch {
    /// Scaled input windows.
    pub x: Tensor,
    /// Scaled target horizons.
    pub y: Tensor,
}

/// Batching limits for deep-model training.
#[derive(Debug, Clone, Copy)]
pub struct BatchSpec {
    /// Window stride over the training series.
    pub stride: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Cap on total windows (most recent kept).
    pub max_windows: usize,
}

impl Default for BatchSpec {
    fn default() -> Self {
        BatchSpec { stride: 4, batch_size: 16, max_windows: 1200 }
    }
}

/// Builds scaled batches from a series' target channel.
pub fn make_batches(
    data: &MultiSeries,
    scaler: &StandardScaler,
    input_len: usize,
    horizon: usize,
    spec: BatchSpec,
) -> Vec<Batch> {
    let mut windows = make_windows(data, input_len, horizon, spec.stride);
    if windows.len() > spec.max_windows {
        windows = windows.split_off(windows.len() - spec.max_windows);
    }
    windows
        .chunks(spec.batch_size)
        .map(|chunk| {
            let n = chunk.len();
            let mut x = Tensor::zeros(n, input_len);
            let mut y = Tensor::zeros(n, horizon);
            for (r, w) in chunk.iter().enumerate() {
                let xi = scaler.transform(0, &w.inputs[0]);
                let yi = scaler.transform(0, &w.target);
                x.data_mut()[r * input_len..(r + 1) * input_len].copy_from_slice(&xi);
                y.data_mut()[r * horizon..(r + 1) * horizon].copy_from_slice(&yi);
            }
            Batch { x, y }
        })
        .collect()
}

/// Stacks evaluation windows' target channel into an `[n, input_len]`
/// matrix (raw units — models scale internally, exactly as
/// [`crate::model::Forecaster::predict`] does).
///
/// # Panics
/// Panics if any window's target channel is not `input_len` long; the
/// windower guarantees this by construction.
pub fn stage_windows(windows: &[Window], input_len: usize) -> Tensor {
    let mut x = Tensor::zeros(windows.len(), input_len);
    for (r, w) in windows.iter().enumerate() {
        x.data_mut()[r * input_len..(r + 1) * input_len].copy_from_slice(&w.inputs[0]);
    }
    x
}

/// Applies the target-channel scaler to every row of a window matrix —
/// the batched equivalent of the `scaler.transform(0, window)` each
/// per-window `predict` performs, bit-identical row for row.
pub fn scale_rows(windows: &Tensor, scaler: &StandardScaler) -> Tensor {
    let (n, k) = windows.shape();
    let mut out = Tensor::zeros(n, k);
    for r in 0..n {
        let xi = scaler.transform(0, &windows.data()[r * k..(r + 1) * k]);
        out.data_mut()[r * k..(r + 1) * k].copy_from_slice(&xi);
    }
    out
}

/// Inverse-scales every row of a scaled prediction matrix back to
/// original units (the batched equivalent of `scaler.inverse(0, pred)`).
pub fn inverse_rows(pred: &Tensor, scaler: &StandardScaler) -> Tensor {
    let (n, h) = pred.shape();
    let mut out = Tensor::zeros(n, h);
    for r in 0..n {
        let yi = scaler.inverse(0, &pred.data()[r * h..(r + 1) * h]);
        out.data_mut()[r * h..(r + 1) * h].copy_from_slice(&yi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::series::RegularTimeSeries;

    fn uni(n: usize) -> MultiSeries {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 60, vals).unwrap())
    }

    #[test]
    fn batches_have_scaled_values() {
        let data = uni(200);
        let scaler = crate::deep::prepare(&data, 24, 8).unwrap();
        let spec = BatchSpec { stride: 8, batch_size: 4, max_windows: 100 };
        let batches = make_batches(&data, &scaler, 24, 8, spec);
        assert!(!batches.is_empty());
        let b = &batches[0];
        assert_eq!(b.x.shape().1, 24);
        assert_eq!(b.y.shape().1, 8);
        // Scaled data of a 0..200 ramp lies within ~[-2, 2].
        assert!(b.x.data().iter().all(|v| v.abs() < 2.5));
        // Target continues the input: scaled(y[0]) follows scaled(x[last]).
        assert!(b.y.get(0, 0) > b.x.get(0, 23));
    }

    #[test]
    fn max_windows_keeps_most_recent() {
        let data = uni(500);
        let scaler = crate::deep::prepare(&data, 10, 2).unwrap();
        let spec = BatchSpec { stride: 1, batch_size: 100, max_windows: 50 };
        let batches = make_batches(&data, &scaler, 10, 2, spec);
        let total: usize = batches.iter().map(|b| b.x.rows()).sum();
        assert_eq!(total, 50);
        // Most recent windows have the largest values.
        let last_batch = batches.last().expect("non-empty");
        assert!(last_batch.x.get(last_batch.x.rows() - 1, 9) > 1.0);
    }

    #[test]
    fn staged_windows_keep_raw_values_and_order() {
        let data = uni(40);
        let windows = make_windows(&data, 6, 2, 3);
        let x = stage_windows(&windows, 6);
        assert_eq!(x.shape(), (windows.len(), 6));
        for (r, w) in windows.iter().enumerate() {
            assert_eq!(&x.data()[r * 6..(r + 1) * 6], w.inputs[0].as_slice());
        }
        // Empty input stages to an empty matrix, not a panic.
        assert_eq!(stage_windows(&[], 6).shape(), (0, 6));
    }

    #[test]
    fn row_scaling_matches_per_window_scaler_calls() {
        let scaler = StandardScaler::fit_single(&[1.0, 4.0, 7.0, 2.0, 9.0]);
        let x = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, -4.0, 0.5, 8.0]);
        let scaled = scale_rows(&x, &scaler);
        for r in 0..2 {
            let want = scaler.transform(0, &x.data()[r * 3..(r + 1) * 3]);
            assert_eq!(&scaled.data()[r * 3..(r + 1) * 3], want.as_slice());
        }
        let back = inverse_rows(&scaled, &scaler);
        for (a, b) in back.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
