//! The metrics registry: counters, gauges, and fixed-bucket histograms,
//! addressable by metric name plus a (possibly empty) label set.
//!
//! Instruments are created lazily on first touch and live for the life of
//! the registry. The hot path (`counter_add`, `gauge_set`, `observe`) is
//! one read-locked `HashMap` probe plus an atomic update once the
//! instrument exists; the write lock is taken only for the first touch of
//! a new `(name, labels)` pair. All values are plain atomics, so
//! instruments can be hammered from every worker thread without
//! coordination beyond cache-line traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One label pair, owned. Labels are kept sorted by key so that the same
/// logical label set always addresses the same instrument regardless of
/// the order a call site lists them in.
pub type Label = (String, String);

/// Builds the canonical owned label vector (sorted by key) from the
/// borrowed pairs call sites pass.
fn own_labels(labels: &[(&str, &str)]) -> Vec<Label> {
    let mut owned: Vec<Label> =
        labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
    owned.sort();
    owned
}

/// The canonical registry key for `(name, labels)`: the Prometheus-style
/// rendering `name{k="v",...}` with labels pre-sorted. One `String` per
/// *first* touch; steady-state lookups build it on the stack only to probe
/// the map.
fn storage_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(v);
        key.push('"');
    }
    key.push('}');
    key
}

/// Histogram bucket upper bounds (seconds) used by [`MetricsRegistry::observe`]:
/// exponential-ish from 1µs to 60s. An implicit `+Inf` bucket catches the
/// rest. Fixed bounds keep the histogram allocation-free after creation
/// and make every exported histogram comparable.
pub const LATENCY_BUCKETS: [f64; 12] =
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 1.0, 2.5, 10.0, 60.0];

/// Atomic f64 stored as its bit pattern.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.0.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: per-bucket counts plus total count and sum.
#[derive(Debug)]
struct Histogram {
    /// Upper bounds, strictly increasing. The final implicit bucket is
    /// `+Inf`; `buckets.len() == bounds.len() + 1`.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicF64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicF64::default(),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(value);
    }
}

/// The value variants an instrument can hold.
#[derive(Debug)]
enum Instrument {
    Counter(AtomicU64),
    Gauge(AtomicF64),
    Histogram(Histogram),
}

/// One registered instrument: identity plus live value.
#[derive(Debug)]
struct Metric {
    name: String,
    labels: Vec<Label>,
    value: Instrument,
}

/// A point-in-time copy of one instrument, as handed to exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (Prometheus-compatible: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<Label>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// Snapshot value variants.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-written value.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram {
        /// Bucket upper bounds (the final `+Inf` bucket is implicit).
        bounds: Vec<f64>,
        /// Per-bucket counts, `bounds.len() + 1` entries (last = `+Inf`).
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of all observed values.
        sum: f64,
    },
}

impl MetricValue {
    /// The counter value, when this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// `(count, sum)` of a histogram, when this is one.
    pub fn as_histogram_totals(&self) -> Option<(u64, f64)> {
        match self {
            MetricValue::Histogram { count, sum, .. } => Some((*count, *sum)),
            _ => None,
        }
    }
}

/// The thread-safe instrument registry. Every method takes `&self`; one
/// registry is shared by all threads of a run (usually via
/// [`crate::global`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<HashMap<String, Arc<Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Fetches the instrument for `(name, labels)`, creating it with
    /// `make` on first touch. A type clash (an existing instrument of a
    /// different variant) returns `None`; callers treat that as a no-op
    /// rather than corrupting a stranger's instrument. Clashes are a
    /// naming bug, so debug builds assert.
    fn instrument<F>(&self, name: &str, labels: &[(&str, &str)], make: F) -> Option<Arc<Metric>>
    where
        F: FnOnce() -> Instrument,
    {
        let key = storage_key(name, labels);
        if let Some(m) = self.metrics.read().expect("metrics lock").get(&key) {
            return Some(m.clone());
        }
        let mut map = self.metrics.write().expect("metrics lock");
        Some(
            map.entry(key)
                .or_insert_with(|| {
                    Arc::new(Metric {
                        name: name.to_string(),
                        labels: own_labels(labels),
                        value: make(),
                    })
                })
                .clone(),
        )
    }

    /// Adds `delta` to the counter `(name, labels)`.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let Some(m) = self.instrument(name, labels, || Instrument::Counter(AtomicU64::new(0)))
        else {
            return;
        };
        match &m.value {
            Instrument::Counter(c) => {
                c.fetch_add(delta, Ordering::Relaxed);
            }
            _ => debug_assert!(false, "{name} is not a counter"),
        }
    }

    /// Sets the gauge `(name, labels)` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(m) = self.instrument(name, labels, || Instrument::Gauge(AtomicF64::default()))
        else {
            return;
        };
        match &m.value {
            Instrument::Gauge(g) => g.set(value),
            _ => debug_assert!(false, "{name} is not a gauge"),
        }
    }

    /// Records `value` into the histogram `(name, labels)` using the
    /// default [`LATENCY_BUCKETS`].
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.observe_with(name, labels, &LATENCY_BUCKETS, value);
    }

    /// Records `value` into a histogram with caller-chosen bucket bounds.
    /// The bounds of the *first* touch win; later calls with different
    /// bounds record into the existing buckets.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
        let Some(m) =
            self.instrument(name, labels, || Instrument::Histogram(Histogram::new(bounds)))
        else {
            return;
        };
        match &m.value {
            Instrument::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "{name} is not a histogram"),
        }
    }

    /// A point-in-time copy of every instrument, sorted by name then
    /// labels so exports are deterministic.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.metrics.read().expect("metrics lock");
        let mut out: Vec<MetricSnapshot> = map
            .values()
            .map(|m| MetricSnapshot {
                name: m.name.clone(),
                labels: m.labels.clone(),
                value: match &m.value {
                    Instrument::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds.clone(),
                        counts: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.get(),
                    },
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        out
    }

    /// Sums every counter named `name` across all of its label sets.
    /// Non-counter instruments with that name contribute nothing.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.snapshot().iter().filter(|s| s.name == name).filter_map(|s| s.value.as_counter()).sum()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.metrics.read().expect("metrics lock").len()
    }

    /// Whether no instrument has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.metrics.read().expect("metrics lock").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = MetricsRegistry::new();
        r.counter_add("tasks_total", &[("status", "ok")], 2);
        r.counter_add("tasks_total", &[("status", "ok")], 3);
        r.counter_add("tasks_total", &[("status", "failed")], 1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].labels, vec![("status".to_string(), "failed".to_string())]);
        assert_eq!(snap[0].value, MetricValue::Counter(1));
        assert_eq!(snap[1].value, MetricValue::Counter(5));
        assert_eq!(r.counter_total("tasks_total"), 6);
    }

    #[test]
    fn label_order_does_not_split_instruments() {
        let r = MetricsRegistry::new();
        r.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.counter_total("c"), 2);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge_set("loss", &[], 0.5);
        r.gauge_set("loss", &[], 0.25);
        assert_eq!(r.snapshot()[0].value, MetricValue::Gauge(0.25));
    }

    #[test]
    fn histogram_counts_are_per_bucket() {
        let r = MetricsRegistry::new();
        for v in [0.5, 1.5, 2.5, 99.0] {
            r.observe_with("h", &[], &[1.0, 2.0, 4.0], v);
        }
        let MetricValue::Histogram { bounds, counts, count, sum } = r.snapshot()[0].value.clone()
        else {
            panic!("not a histogram");
        };
        assert_eq!(bounds, vec![1.0, 2.0, 4.0]);
        // Per-bucket (non-cumulative) counts: <=1, <=2, <=4, +Inf.
        assert_eq!(counts, vec![1, 1, 1, 1]);
        assert_eq!(count, 4);
        assert!((sum - 103.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_value_lands_in_its_bound_bucket() {
        let r = MetricsRegistry::new();
        // Prometheus `le` semantics: a value equal to a bound belongs to
        // that bound's bucket.
        r.observe_with("h", &[], &[1.0, 2.0], 1.0);
        let MetricValue::Histogram { counts, .. } = r.snapshot()[0].value.clone() else {
            panic!("not a histogram");
        };
        assert_eq!(counts, vec![1, 0, 0]);
    }

    #[test]
    fn type_clash_is_a_noop() {
        let r = MetricsRegistry::new();
        r.counter_add("x", &[], 1);
        // In release builds a clash must not panic or corrupt; the write
        // is simply dropped. (Debug builds assert on the naming bug.)
        if cfg!(not(debug_assertions)) {
            r.gauge_set("x", &[], 3.0);
        }
        assert_eq!(r.counter_total("x"), 1);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let r = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("n", &[("t", "x")], 1);
                        r.observe("lat", &[], 0.001);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter_total("n"), 8000);
        let snap = r.snapshot();
        let lat = snap.iter().find(|s| s.name == "lat").unwrap();
        assert_eq!(lat.value.as_histogram_totals().unwrap().0, 8000);
    }
}
