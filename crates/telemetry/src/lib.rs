//! # telemetry — zero-dependency observability for the evaluation grid
//!
//! Three pieces, assembled from `std` only (no external crates, so this
//! sits below every other workspace crate without dependency cycles):
//!
//! * a thread-safe **metrics registry** ([`metrics::MetricsRegistry`]) —
//!   counters, gauges, and fixed-bucket histograms addressed by
//!   `name + labels`;
//! * **structured spans** ([`mod@span`]) — RAII timers on monotonic clocks
//!   with per-thread parent linkage, buffered per thread and drained into
//!   a global sink;
//! * **exporters** ([`export`]) — Prometheus text exposition, Chrome
//!   trace-event JSON (opens directly in `about:tracing` / Perfetto), and
//!   a JSON run report.
//!
//! ## The global handle and the off switch
//!
//! Instrumented code calls the free functions here ([`counter_add`],
//! [`gauge_set`], [`observe`], [`fn@span`], …) against one process-global
//! [`Telemetry`] instance. Telemetry is **disabled by default**: every
//! free function starts with a single relaxed atomic load and returns
//! immediately when disabled, so an un-instrumented-feeling binary pays
//! one predictable branch per event and allocates nothing. Enabling
//! ([`set_enabled`]) flips that flag; the `repro` binary does so at
//! startup so its `--metrics` / `--trace` flags have data to export.
//!
//! ```
//! telemetry::set_enabled(true);
//! {
//!     let _span = telemetry::span("doctest.work", &[("kind", "demo")]);
//!     telemetry::counter_add("doctest_events_total", &[], 1);
//! }
//! let text = telemetry::export::prometheus(&telemetry::global().metrics().snapshot());
//! assert!(text.contains("doctest_events_total"));
//! ```

pub mod export;
pub mod metrics;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use metrics::{MetricSnapshot, MetricValue, MetricsRegistry, LATENCY_BUCKETS};
pub use span::{aggregate, slowest, Span, SpanAggregate, SpanRecord, SpanSink};

/// The process-global enabled flag. Relaxed ordering is deliberate:
/// enabling mid-run only needs to become visible eventually, and the
/// disabled fast path must cost exactly one uncontended load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording. This is the whole cost of
/// every instrumentation point when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Instruments and spans created
/// while enabled stay in the global state either way; disabling only
/// stops new events.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The global telemetry state: one registry plus one span sink.
#[derive(Debug, Default)]
pub struct Telemetry {
    metrics: MetricsRegistry,
    spans: SpanSink,
}

impl Telemetry {
    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span sink.
    pub fn spans(&self) -> &SpanSink {
        &self.spans
    }
}

/// The process-global telemetry instance. Created on first touch; the
/// span-sink epoch (trace time zero) is fixed at that moment.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::default)
}

/// Adds `delta` to the global counter `(name, labels)`. No-op while
/// disabled.
#[inline]
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    if enabled() {
        global().metrics().counter_add(name, labels, delta);
    }
}

/// Sets the global gauge `(name, labels)`. No-op while disabled.
#[inline]
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    if enabled() {
        global().metrics().gauge_set(name, labels, value);
    }
}

/// Records `value` into the global histogram `(name, labels)` with the
/// default latency buckets. No-op while disabled.
#[inline]
pub fn observe(name: &str, labels: &[(&str, &str)], value: f64) {
    if enabled() {
        global().metrics().observe(name, labels, value);
    }
}

/// Opens a span against the global sink, or an inert guard while
/// disabled. The enabled check happens at creation: a span straddling an
/// enable/disable flip keeps the behaviour it started with.
#[inline]
pub fn span(name: &'static str, labels: &[(&str, &str)]) -> Span {
    if enabled() {
        span::start_span(name, labels)
    } else {
        Span::inert()
    }
}

/// Seconds represented by a duration, the unit every latency histogram
/// and the span exporters use.
#[inline]
pub fn secs(duration: std::time::Duration) -> f64 {
    duration.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one process and toggle the one enabled
    // flag, so they serialize on a lock and use unique metric/span names.
    static FLAG: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        FLAG.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_events_record_nothing() {
        let _serial = flag_lock();
        set_enabled(false);
        counter_add("lib_disabled_total", &[], 1);
        observe("lib_disabled_seconds", &[], 0.1);
        let s = span("lib.disabled", &[]);
        assert!(!s.is_recording());
        drop(s);
        let snap = global().metrics().snapshot();
        assert!(snap.iter().all(|m| m.name != "lib_disabled_total"));
        assert!(snap.iter().all(|m| m.name != "lib_disabled_seconds"));
    }

    #[test]
    fn enabled_events_register_and_spans_drain() {
        let _serial = flag_lock();
        set_enabled(true);
        counter_add("lib_enabled_total", &[("k", "v")], 2);
        {
            let _outer = span("lib.outer", &[]);
            let inner = span("lib.inner", &[]);
            assert!(inner.is_recording());
        }
        set_enabled(false);
        assert_eq!(global().metrics().counter_total("lib_enabled_total"), 2);
        let records = global().spans().snapshot();
        let inner = records.iter().find(|r| r.name == "lib.inner").expect("inner span drained");
        let outer = records.iter().find(|r| r.name == "lib.outer").expect("outer span drained");
        assert_eq!(inner.parent, outer.id, "parent linkage follows the per-thread stack");
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn spans_from_short_lived_threads_survive() {
        let _serial = flag_lock();
        set_enabled(true);
        std::thread::spawn(|| {
            let _s = span("lib.worker_thread", &[]);
        })
        .join()
        .unwrap();
        set_enabled(false);
        let records = global().spans().snapshot();
        assert!(
            records.iter().any(|r| r.name == "lib.worker_thread"),
            "thread-exit drain must deliver buffered spans"
        );
    }
}
