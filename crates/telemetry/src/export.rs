//! Exporters: Prometheus text format, Chrome trace-event JSON, and a
//! JSON run report.
//!
//! All three are pure functions over snapshots ([`MetricSnapshot`],
//! [`SpanRecord`]) so they are trivially testable and never hold any
//! telemetry lock while formatting.

use crate::metrics::{MetricSnapshot, MetricValue};
use crate::span::{aggregate, SpanRecord};

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
fn prom_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}` (empty string for no labels), with an optional
/// extra label appended (used for histogram `le`).
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", prom_escape(v)));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", prom_escape(v)));
    }
    out.push('}');
    out
}

/// Formats an `f64` the way Prometheus expects (`+Inf`/`-Inf`/`NaN`
/// spelled out).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders metric snapshots in the Prometheus text exposition format:
/// one `# TYPE` line per metric name, counters/gauges as single samples,
/// histograms as cumulative `_bucket{le=...}` samples plus `_sum` and
/// `_count`. Snapshots arrive sorted by name, so samples of one metric
/// are contiguous as the format requires.
pub fn prometheus(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in snapshots {
        if last_name != Some(s.name.as_str()) {
            let kind = match s.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            out.push_str(&format!("# TYPE {} {kind}\n", s.name));
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{}{} {v}\n", s.name, prom_labels(&s.labels, None)));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{}{} {}\n", s.name, prom_labels(&s.labels, None), {
                    prom_f64(*v)
                }));
            }
            MetricValue::Histogram { bounds, counts, count, sum } => {
                let mut cumulative = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cumulative += c;
                    let le = bounds.get(i).map_or("+Inf".to_string(), |b| prom_f64(*b));
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        s.name,
                        prom_labels(&s.labels, Some(("le", &le)))
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    prom_labels(&s.labels, None),
                    prom_f64(*sum)
                ));
                out.push_str(&format!(
                    "{}_count{} {count}\n",
                    s.name,
                    prom_labels(&s.labels, None)
                ));
            }
        }
    }
    out
}

/// Escapes a string for embedding in JSON.
fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`,
/// which strict JSON requires).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_labels_object(labels: &[(String, String)]) -> String {
    let fields: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders span records as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form), loadable directly in
/// `about:tracing` and Perfetto. Every span becomes one complete
/// (`"ph":"X"`) event; labels ride along in `args`, and nesting falls out
/// of per-thread timestamps exactly as the trace viewer expects.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut events = Vec::with_capacity(records.len());
    for r in records {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{}}}",
            json_escape(r.name),
            json_escape(r.name.split('.').next().unwrap_or("span")),
            r.start_us,
            r.dur_us,
            r.tid,
            json_labels_object(&r.labels)
        ));
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n", events.join(","))
}

/// Renders the JSON run report: every metric value plus per-span-name
/// aggregates and the `top_n` slowest individual spans overall. This is
/// the machine-readable sibling of the repro binary's end-of-run summary
/// table.
pub fn run_report(snapshots: &[MetricSnapshot], records: &[SpanRecord], top_n: usize) -> String {
    let mut metrics = Vec::with_capacity(snapshots.len());
    for s in snapshots {
        let labels = json_labels_object(&s.labels);
        let body = match &s.value {
            MetricValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            MetricValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{}", json_f64(*v)),
            MetricValue::Histogram { bounds, counts, count, sum } => {
                let bounds: Vec<String> = bounds.iter().map(|b| json_f64(*b)).collect();
                let counts: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
                format!(
                    "\"type\":\"histogram\",\"count\":{count},\"sum\":{},\
                     \"bounds\":[{}],\"bucket_counts\":[{}]",
                    json_f64(*sum),
                    bounds.join(","),
                    counts.join(",")
                )
            }
        };
        metrics.push(format!("{{\"name\":\"{}\",\"labels\":{labels},{body}}}", s.name));
    }

    let aggregates: Vec<String> = aggregate(records)
        .iter()
        .map(|a| {
            format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_us\":{},\"max_us\":{}}}",
                json_escape(a.name),
                a.count,
                a.total_us,
                a.max_us
            )
        })
        .collect();

    let mut slowest: Vec<&SpanRecord> = records.iter().collect();
    slowest.sort_by_key(|r| std::cmp::Reverse(r.dur_us));
    slowest.truncate(top_n);
    let slowest: Vec<String> = slowest
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"labels\":{},\"dur_us\":{},\"start_us\":{},\"tid\":{}}}",
                json_escape(r.name),
                json_labels_object(&r.labels),
                r.dur_us,
                r.start_us,
                r.tid
            )
        })
        .collect();

    format!(
        "{{\"metrics\":[{}],\"span_totals\":[{}],\"slowest_spans\":[{}],\"span_count\":{}}}\n",
        metrics.join(","),
        aggregates.join(","),
        slowest.join(","),
        records.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshots() -> Vec<MetricSnapshot> {
        let r = MetricsRegistry::new();
        r.counter_add("tasks_total", &[("status", "ok")], 7);
        r.counter_add("tasks_total", &[("status", "failed")], 1);
        r.gauge_set("loss", &[("model", "DLinear")], 0.125);
        r.observe_with("lat_seconds", &[], &[0.1, 1.0], 0.5);
        r.observe_with("lat_seconds", &[], &[0.1, 1.0], 0.05);
        r.snapshot()
    }

    fn sample_records() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: 0,
                tid: 1,
                name: "engine.task",
                labels: vec![("dataset".into(), "ETTm1".into())],
                start_us: 10,
                dur_us: 500,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                tid: 1,
                name: "model.fit",
                labels: vec![],
                start_us: 20,
                dur_us: 400,
            },
        ]
    }

    #[test]
    fn prometheus_renders_types_and_cumulative_buckets() {
        let text = prometheus(&sample_snapshots());
        assert!(text.contains("# TYPE tasks_total counter"), "{text}");
        assert!(text.contains("tasks_total{status=\"ok\"} 7"), "{text}");
        assert!(text.contains("# TYPE loss gauge"), "{text}");
        assert!(text.contains("loss{model=\"DLinear\"} 0.125"), "{text}");
        assert!(text.contains("# TYPE lat_seconds histogram"), "{text}");
        // 0.05 <= 0.1, 0.5 <= 1.0 → cumulative 1, 2, 2.
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_count 2"), "{text}");
        // Exactly one TYPE line per metric name.
        assert_eq!(text.matches("# TYPE tasks_total ").count(), 1);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let r = MetricsRegistry::new();
        r.counter_add("c", &[("path", "a\\b\"c\nd")], 1);
        let text = prometheus(&r.snapshot());
        assert!(text.contains("c{path=\"a\\\\b\\\"c\\nd\"} 1"), "{text}");
    }

    #[test]
    fn chrome_trace_is_complete_events() {
        let json = chrome_trace(&sample_records());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"engine.task\""), "{json}");
        assert!(json.contains("\"dataset\":\"ETTm1\""), "{json}");
        assert!(json.contains("\"ts\":10,\"dur\":500"), "{json}");
    }

    #[test]
    fn run_report_carries_metrics_spans_and_slowest() {
        let report = run_report(&sample_snapshots(), &sample_records(), 1);
        assert!(report.contains("\"name\":\"tasks_total\""), "{report}");
        assert!(report.contains("\"type\":\"histogram\""), "{report}");
        assert!(report.contains("\"span_totals\""), "{report}");
        assert!(report.contains("\"span_count\":2"), "{report}");
        // top_n = 1 keeps only the 500us span in slowest_spans.
        let slowest = report.split("\"slowest_spans\":").nth(1).unwrap();
        assert!(slowest.contains("\"dur_us\":500"), "{report}");
        assert!(!slowest.contains("\"dur_us\":400"), "{report}");
    }

    #[test]
    fn empty_inputs_render_valid_documents() {
        assert_eq!(prometheus(&[]), "");
        let trace = chrome_trace(&[]);
        assert!(trace.contains("\"traceEvents\":[]"));
        let report = run_report(&[], &[], 10);
        assert!(report.contains("\"metrics\":[]"));
        assert!(report.contains("\"span_count\":0"));
    }
}
