//! Lightweight structured spans: RAII timers with parent linkage.
//!
//! A [`Span`] measures one region of work on a monotonic clock
//! ([`std::time::Instant`]). Completed spans are appended to a
//! *per-thread* buffer (no lock, no contention) which drains into the
//! global [`SpanSink`] when it fills and when the thread exits; callers
//! that need every span (exporters) call [`SpanSink::flush_thread`] on
//! their own thread first — worker threads spawned per grid run have
//! already drained via their thread-local destructors by then.
//!
//! Parent linkage is per-thread: each thread keeps a stack of open span
//! ids, and a new span records the current top as its parent. That is
//! exactly the Chrome trace-event nesting model, so the trace exporter
//! can emit complete (`ph: "X"`) events with no extra bookkeeping.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::Label;

/// How many completed spans a thread buffers before draining into the
/// global sink. Draining takes the sink lock once per `FLUSH_EVERY`
/// spans instead of once per span.
const FLUSH_EVERY: usize = 256;

/// Hard cap on retained span records: a runaway instrumented loop
/// degrades to counting dropped spans instead of exhausting memory.
const MAX_RECORDS: usize = 1_000_000;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (process-wide, starts at 1).
    pub id: u64,
    /// Id of the span that was open on this thread when this one started
    /// (0 = a root span).
    pub parent: u64,
    /// Small sequential id of the thread the span ran on.
    pub tid: u64,
    /// Span name (static so hot paths never allocate for the name).
    pub name: &'static str,
    /// Sorted label pairs.
    pub labels: Vec<Label>,
    /// Start time in microseconds since the sink's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// The global collector completed spans drain into.
#[derive(Debug)]
pub struct SpanSink {
    records: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

impl Default for SpanSink {
    fn default() -> Self {
        SpanSink {
            records: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

impl SpanSink {
    /// Creates an empty sink; its epoch (trace time zero) is now.
    pub fn new() -> Self {
        SpanSink::default()
    }

    /// The sink's monotonic epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn drain(&self, batch: &mut Vec<SpanRecord>) {
        if batch.is_empty() {
            return;
        }
        let mut records = self.records.lock().expect("span sink lock");
        let room = MAX_RECORDS.saturating_sub(records.len());
        if batch.len() > room {
            self.dropped.fetch_add((batch.len() - room) as u64, Ordering::Relaxed);
            batch.truncate(room);
        }
        records.append(batch);
    }

    /// Drains the *calling thread's* buffered spans into the sink. Called
    /// by exporters before snapshotting; other threads drain when their
    /// buffers fill or when they exit.
    pub fn flush_thread(&self) {
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let mut batch = std::mem::take(&mut t.buffer);
            self.drain(&mut batch);
        });
    }

    /// A copy of every drained span, in drain order. Flushes the calling
    /// thread first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.flush_thread();
        self.records.lock().expect("span sink lock").clone()
    }

    /// Number of spans discarded after the `MAX_RECORDS` cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Per-thread state: a small sequential thread id, the open-span stack,
/// and the completed-span buffer.
struct ThreadState {
    tid: u64,
    stack: Vec<u64>,
    buffer: Vec<SpanRecord>,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // The thread is exiting: hand whatever is buffered to the global
        // sink so short-lived worker threads never lose spans.
        if !self.buffer.is_empty() {
            crate::global().spans().drain(&mut self.buffer);
        }
    }
}

thread_local! {
    static THREAD: RefCell<ThreadState> =
        const { RefCell::new(ThreadState { tid: 0, stack: Vec::new(), buffer: Vec::new() }) };
}

/// An open span. Created by [`start_span`] (or [`fn@crate::span`], which
/// checks the enabled flag); the measured region ends when the guard
/// drops. An inert span (telemetry disabled at creation) costs nothing
/// on drop.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    labels: Vec<Label>,
    started: Instant,
}

/// Opens a span against the global sink unconditionally (no enabled
/// check — that is [`fn@crate::span`]'s job). Spans always record into the
/// process-global sink: the guard outlives arbitrary call frames, so a
/// per-sink variant could not be tied to a borrowed sink without
/// infecting every instrumented signature with lifetimes.
pub fn start_span(name: &'static str, labels: &[(&str, &str)]) -> Span {
    let sink = crate::global().spans();
    let id = sink.next_id.fetch_add(1, Ordering::Relaxed);
    let parent = THREAD.with(|t| {
        let mut t = t.borrow_mut();
        let parent = t.stack.last().copied().unwrap_or(0);
        t.stack.push(id);
        parent
    });
    let mut owned: Vec<Label> =
        labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
    owned.sort();
    Span { inner: Some(OpenSpan { id, parent, name, labels: owned, started: Instant::now() }) }
}

impl SpanSink {
    fn finish(&self, open: OpenSpan) {
        let dur_us = open.started.elapsed().as_micros() as u64;
        let start_us = open.started.duration_since(self.epoch).as_micros() as u64;
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            // Pop this span off the open stack. It is normally the top;
            // out-of-order drops (guards stored in structs) still unlink.
            if let Some(pos) = t.stack.iter().rposition(|&id| id == open.id) {
                t.stack.remove(pos);
            }
            if t.tid == 0 {
                t.tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            }
            let record = SpanRecord {
                id: open.id,
                parent: open.parent,
                tid: t.tid,
                name: open.name,
                labels: open.labels,
                start_us,
                dur_us,
            };
            t.buffer.push(record);
            if t.buffer.len() >= FLUSH_EVERY {
                let mut batch = std::mem::take(&mut t.buffer);
                self.drain(&mut batch);
            }
        });
    }
}

impl Span {
    /// An inert span for disabled telemetry: no allocation, no record.
    pub fn inert() -> Span {
        Span { inner: None }
    }

    /// Whether this span is actually recording (false when telemetry was
    /// disabled at creation).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            crate::global().spans().finish(open);
        }
    }
}

/// Per-name aggregate over a set of span records, for run summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggregate {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Total duration in microseconds.
    pub total_us: u64,
    /// Longest single span in microseconds.
    pub max_us: u64,
}

/// Aggregates records per span name, sorted by descending total time.
pub fn aggregate(records: &[SpanRecord]) -> Vec<SpanAggregate> {
    let mut by_name: Vec<SpanAggregate> = Vec::new();
    for r in records {
        match by_name.iter_mut().find(|a| a.name == r.name) {
            Some(a) => {
                a.count += 1;
                a.total_us += r.dur_us;
                a.max_us = a.max_us.max(r.dur_us);
            }
            None => by_name.push(SpanAggregate {
                name: r.name,
                count: 1,
                total_us: r.dur_us,
                max_us: r.dur_us,
            }),
        }
    }
    by_name.sort_by_key(|a| std::cmp::Reverse(a.total_us));
    by_name
}

/// The `n` slowest individual spans named `name`, slowest first.
pub fn slowest<'r>(records: &'r [SpanRecord], name: &str, n: usize) -> Vec<&'r SpanRecord> {
    let mut matching: Vec<&SpanRecord> = records.iter().filter(|r| r.name == name).collect();
    matching.sort_by_key(|r| std::cmp::Reverse(r.dur_us));
    matching.truncate(n);
    matching
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_and_sorts() {
        let rec = |name, dur_us| SpanRecord {
            id: 0,
            parent: 0,
            tid: 1,
            name,
            labels: vec![],
            start_us: 0,
            dur_us,
        };
        let records = vec![rec("a", 10), rec("b", 100), rec("a", 30)];
        let agg = aggregate(&records);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0], SpanAggregate { name: "b", count: 1, total_us: 100, max_us: 100 });
        assert_eq!(agg[1], SpanAggregate { name: "a", count: 2, total_us: 40, max_us: 30 });
        let slow = slowest(&records, "a", 1);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].dur_us, 30);
    }

    #[test]
    fn inert_span_records_nothing() {
        let s = Span::inert();
        assert!(!s.is_recording());
        drop(s); // must not touch the global sink
    }
}
