//! Composable synthetic signal generators.
//!
//! The paper evaluates on six real datasets that are not redistributable
//! here; `crate::datasets` recreates them from these building blocks,
//! calibrated to the descriptive statistics the paper reports (Table 1).
//! Every generator is deterministic given a seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::stats::{percentile, summarize};

/// One additive component of a synthetic signal.
#[derive(Debug, Clone)]
pub enum Component {
    /// Constant offset.
    Constant(f64),
    /// Linear trend: adds `slope * i` at sample `i`.
    Trend { slope: f64 },
    /// Sinusoid with a period expressed in samples.
    Seasonal { period: f64, amplitude: f64, phase: f64 },
    /// Sinusoid whose amplitude itself oscillates with a longer period,
    /// producing the amplitude-modulated daily cycles of load/solar data.
    ModulatedSeasonal {
        /// Carrier period in samples.
        period: f64,
        /// Base amplitude.
        amplitude: f64,
        /// Modulator period in samples.
        mod_period: f64,
        /// Modulation depth in `[0, 1]`.
        depth: f64,
    },
    /// Stationary AR(1) noise: `e_i = phi * e_{i-1} + N(0, sigma)`.
    ArNoise { phi: f64, sigma: f64 },
    /// Gaussian random walk with per-step std `sigma`, mean-reverting toward
    /// zero with rate `revert` (an Ornstein–Uhlenbeck discretization).
    RandomWalk { sigma: f64, revert: f64 },
    /// Occasional level shifts: with probability `prob` per sample the level
    /// jumps by `N(0, scale)` and holds.
    LevelShifts { prob: f64, scale: f64 },
    /// Heavy-tailed spikes: with probability `prob`, adds
    /// `±Exp(scale)`-distributed bursts (models turbine gusts/outliers).
    Spikes { prob: f64, scale: f64 },
}

/// A deterministic synthetic signal: a sum of [`Component`]s evaluated over
/// `n` samples, optionally post-processed.
#[derive(Debug, Clone, Default)]
pub struct SignalSpec {
    components: Vec<Component>,
    clamp: Option<(f64, f64)>,
    rectify: bool,
}

impl SignalSpec {
    /// Starts an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component.
    pub fn with(mut self, c: Component) -> Self {
        self.components.push(c);
        self
    }

    /// Clamps the final signal into `[lo, hi]`.
    pub fn clamp(mut self, lo: f64, hi: f64) -> Self {
        self.clamp = Some((lo, hi));
        self
    }

    /// Replaces negative values with zero before clamping (solar power).
    pub fn rectify(mut self) -> Self {
        self.rectify = true;
        self
    }

    /// Generates `n` samples using the seeded RNG.
    pub fn generate(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for c in &self.components {
            match *c {
                Component::Constant(v) => {
                    for x in out.iter_mut() {
                        *x += v;
                    }
                }
                Component::Trend { slope } => {
                    for (i, x) in out.iter_mut().enumerate() {
                        *x += slope * i as f64;
                    }
                }
                Component::Seasonal { period, amplitude, phase } => {
                    let w = std::f64::consts::TAU / period;
                    for (i, x) in out.iter_mut().enumerate() {
                        *x += amplitude * (w * i as f64 + phase).sin();
                    }
                }
                Component::ModulatedSeasonal { period, amplitude, mod_period, depth } => {
                    let w = std::f64::consts::TAU / period;
                    let wm = std::f64::consts::TAU / mod_period;
                    for (i, x) in out.iter_mut().enumerate() {
                        let m = 1.0 + depth * (wm * i as f64).sin();
                        *x += amplitude * m * (w * i as f64).sin();
                    }
                }
                Component::ArNoise { phi, sigma } => {
                    let mut e = 0.0;
                    for x in out.iter_mut() {
                        e = phi * e + gaussian(rng) * sigma;
                        *x += e;
                    }
                }
                Component::RandomWalk { sigma, revert } => {
                    let mut level = 0.0;
                    for x in out.iter_mut() {
                        level += gaussian(rng) * sigma - revert * level;
                        *x += level;
                    }
                }
                Component::LevelShifts { prob, scale } => {
                    let mut level = 0.0;
                    for x in out.iter_mut() {
                        if rng.random::<f64>() < prob {
                            level += gaussian(rng) * scale;
                        }
                        *x += level;
                    }
                }
                Component::Spikes { prob, scale } => {
                    for x in out.iter_mut() {
                        if rng.random::<f64>() < prob {
                            let mag = -scale * rng.random::<f64>().max(1e-12).ln();
                            *x += if rng.random::<bool>() { mag } else { -mag };
                        }
                    }
                }
            }
        }
        if self.rectify {
            for x in out.iter_mut() {
                if *x < 0.0 {
                    *x = 0.0;
                }
            }
        }
        if let Some((lo, hi)) = self.clamp {
            for x in out.iter_mut() {
                *x = x.clamp(lo, hi);
            }
        }
        out
    }
}

/// Standard normal sample via Box–Muller (only `rand::Rng::random` needed,
/// keeping us independent of distribution crates).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Target statistics for [`calibrate`]: the Table-1 columns we match.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationTarget {
    /// Desired mean.
    pub mean: f64,
    /// Desired Q1.
    pub q1: f64,
    /// Desired Q3.
    pub q3: f64,
    /// Hard lower clip.
    pub min: f64,
    /// Hard upper clip.
    pub max: f64,
}

/// Affinely rescales `values` so its inter-quartile range and mean match the
/// target, then clips into `[min, max]`.
///
/// An affine map preserves the signal's *shape* (autocorrelation, seasonal
/// structure, relative KL shifts), which is what the paper's analyses depend
/// on, while pinning the Table-1 statistics.
pub fn calibrate(values: &mut [f64], target: CalibrationTarget) {
    if values.is_empty() {
        return;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in generated signal"));
    let q1 = percentile(&sorted, 0.25);
    let q3 = percentile(&sorted, 0.75);
    let m = summarize(values).mean;
    let iqr = q3 - q1;
    let target_iqr = target.q3 - target.q1;
    let scale = if iqr.abs() < 1e-12 { 1.0 } else { target_iqr / iqr };
    for v in values.iter_mut() {
        *v = (*v - m) * scale + target.mean;
        *v = v.clamp(target.min, target.max);
    }
}

/// Convenience: seeded RNG for generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    #[test]
    fn generation_is_deterministic() {
        let spec = SignalSpec::new()
            .with(Component::Seasonal { period: 24.0, amplitude: 2.0, phase: 0.0 })
            .with(Component::ArNoise { phi: 0.8, sigma: 0.5 });
        let a = spec.generate(500, &mut rng(7));
        let b = spec.generate(500, &mut rng(7));
        assert_eq!(a, b);
        let c = spec.generate(500, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn constant_and_trend() {
        let spec =
            SignalSpec::new().with(Component::Constant(5.0)).with(Component::Trend { slope: 1.0 });
        let v = spec.generate(3, &mut rng(0));
        assert_eq!(v, vec![5.0, 6.0, 7.0]);
    }

    #[test]
    fn seasonal_period_is_respected() {
        let spec =
            SignalSpec::new().with(Component::Seasonal { period: 8.0, amplitude: 1.0, phase: 0.0 });
        let v = spec.generate(16, &mut rng(0));
        // One full period later, the value repeats.
        assert!((v[0] - v[8]).abs() < 1e-9);
        assert!((v[2] - 1.0).abs() < 1e-9); // sin(pi/2)
    }

    #[test]
    fn rectify_and_clamp() {
        let spec = SignalSpec::new()
            .with(Component::Seasonal { period: 4.0, amplitude: 10.0, phase: 0.0 })
            .rectify()
            .clamp(0.0, 5.0);
        let v = spec.generate(8, &mut rng(0));
        assert!(v.iter().all(|&x| (0.0..=5.0).contains(&x)));
    }

    #[test]
    fn ar_noise_is_autocorrelated() {
        let spec = SignalSpec::new().with(Component::ArNoise { phi: 0.95, sigma: 1.0 });
        let v = spec.generate(5000, &mut rng(42));
        // lag-1 autocorrelation should be close to phi
        let m = summarize(&v).mean;
        let num: f64 = v.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
        let den: f64 = v.iter().map(|x| (x - m) * (x - m)).sum();
        let ac1 = num / den;
        assert!(ac1 > 0.85, "lag-1 autocorrelation {ac1} too low");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng(1);
        let v: Vec<f64> = (0..20000).map(|_| gaussian(&mut r)).collect();
        let s = summarize(&v);
        assert!(s.mean.abs() < 0.05, "mean {}", s.mean);
        assert!((s.std_dev - 1.0).abs() < 0.05, "std {}", s.std_dev);
    }

    #[test]
    fn calibrate_hits_targets() {
        let spec = SignalSpec::new()
            .with(Component::Seasonal { period: 96.0, amplitude: 1.0, phase: 0.0 })
            .with(Component::ArNoise { phi: 0.7, sigma: 0.3 });
        let mut v = spec.generate(20000, &mut rng(3));
        let t = CalibrationTarget { mean: 13.32, q1: 7.0, q3: 18.0, min: -4.0, max: 46.0 };
        calibrate(&mut v, t);
        let s = summarize(&v);
        assert!((s.mean - 13.32).abs() < 1.0, "mean {}", s.mean);
        assert!((s.q1 - 7.0).abs() < 1.5, "q1 {}", s.q1);
        assert!((s.q3 - 18.0).abs() < 1.5, "q3 {}", s.q3);
        assert!(s.min >= -4.0 && s.max <= 46.0);
    }

    #[test]
    fn spikes_add_outliers() {
        let base = SignalSpec::new().with(Component::Constant(0.0));
        let spiky = SignalSpec::new().with(Component::Spikes { prob: 0.05, scale: 10.0 });
        let b = base.generate(2000, &mut rng(5));
        let s = spiky.generate(2000, &mut rng(5));
        assert!(b.iter().all(|&x| x == 0.0));
        assert!(s.iter().any(|&x| x.abs() > 5.0));
    }

    #[test]
    fn level_shifts_hold() {
        let spec = SignalSpec::new().with(Component::LevelShifts { prob: 0.01, scale: 5.0 });
        let v = spec.generate(3000, &mut rng(9));
        // piecewise-constant: most consecutive diffs are exactly zero
        let zeros = v.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(zeros > 2500, "only {zeros} constant steps");
    }
}
