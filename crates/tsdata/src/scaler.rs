//! Standard scaler (§3.4): fit on the training subset, applied to every
//! model input, exactly as the paper's pipeline does.

use crate::stats::{mean, std_dev};

/// A per-channel z-score scaler: `(x - mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits one `(mean, std)` pair per channel. Channels with zero standard
    /// deviation scale by 1.0 so constant inputs map to zero rather than NaN.
    pub fn fit(channels: &[&[f64]]) -> Self {
        let means = channels.iter().map(|c| mean(c)).collect();
        let stds = channels
            .iter()
            .map(|c| {
                let s = std_dev(c);
                if s == 0.0 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Fits a univariate scaler.
    pub fn fit_single(values: &[f64]) -> Self {
        Self::fit(&[values])
    }

    /// Rebuilds a scaler from previously fitted statistics (state
    /// deserialization).
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "scaler channel count mismatch");
        StandardScaler { means, stds }
    }

    /// Number of channels this scaler was fitted for.
    pub fn num_channels(&self) -> usize {
        self.means.len()
    }

    /// Scales channel `ch` values in place.
    pub fn transform_channel(&self, ch: usize, values: &mut [f64]) {
        let (m, s) = (self.means[ch], self.stds[ch]);
        for v in values {
            *v = (*v - m) / s;
        }
    }

    /// Returns a scaled copy of channel `ch`.
    pub fn transform(&self, ch: usize, values: &[f64]) -> Vec<f64> {
        let mut out = values.to_vec();
        self.transform_channel(ch, &mut out);
        out
    }

    /// Inverse-scales channel `ch` values in place.
    pub fn inverse_channel(&self, ch: usize, values: &mut [f64]) {
        let (m, s) = (self.means[ch], self.stds[ch]);
        for v in values {
            *v = *v * s + m;
        }
    }

    /// Returns an inverse-scaled copy of channel `ch`.
    pub fn inverse(&self, ch: usize, values: &[f64]) -> Vec<f64> {
        let mut out = values.to_vec();
        self.inverse_channel(ch, &mut out);
        out
    }

    /// Fitted mean of channel `ch`.
    pub fn mean_of(&self, ch: usize) -> f64 {
        self.means[ch]
    }

    /// Fitted standard deviation of channel `ch`.
    pub fn std_of(&self, ch: usize) -> f64 {
        self.stds[ch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_is_zscore() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]; // mean 5, std 2
        let sc = StandardScaler::fit_single(&v);
        let t = sc.transform(0, &v);
        assert!((t[0] + 1.5).abs() < 1e-12);
        assert!((t[7] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_inverse() {
        let v = [1.0, -3.0, 2.5, 10.0];
        let sc = StandardScaler::fit_single(&v);
        let back = sc.inverse(0, &sc.transform(0, &v));
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_channel_no_nan() {
        let v = [3.0, 3.0, 3.0];
        let sc = StandardScaler::fit_single(&v);
        let t = sc.transform(0, &v);
        assert!(t.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn multichannel_independent() {
        let a = [0.0, 2.0];
        let b = [10.0, 30.0];
        let sc = StandardScaler::fit(&[&a, &b]);
        assert_eq!(sc.num_channels(), 2);
        assert!((sc.mean_of(0) - 1.0).abs() < 1e-12);
        assert!((sc.mean_of(1) - 20.0).abs() < 1e-12);
        let tb = sc.transform(1, &b);
        assert!((tb[0] + 1.0).abs() < 1e-12);
        assert!((tb[1] - 1.0).abs() < 1e-12);
    }
}
