//! # tsdata — time-series data model, datasets and metrics
//!
//! The data substrate of the EvalImpLSTS reproduction:
//!
//! * [`series`] — regular/irregular time series and multivariate bundles
//!   (paper Definitions 1–5).
//! * [`stats`] — descriptive statistics (Table 1).
//! * [`metrics`] — RMSE/NRMSE/RSE/R plus TE, TFE and CR (paper §3.5,
//!   Definitions 6–9, Eq. 3).
//! * [`scaler`] — the standard scaler applied to model inputs (§3.4).
//! * [`mod@split`] — 70/10/20 chronological splits and sliding windows (§3.6).
//! * [`generators`] / [`datasets`] — deterministic synthetic recreations of
//!   the six evaluation datasets calibrated to Table 1.
//! * [`csv`] — ETT-style CSV import/export for running on real data.

pub mod csv;
pub mod datasets;
pub mod generators;
pub mod metrics;
pub mod scaler;
pub mod series;
pub mod split;
pub mod stats;

pub use datasets::{generate, generate_univariate, DatasetKind, GenOptions, ALL_DATASETS};
pub use metrics::{metric_set, Metric, MetricSet};
pub use scaler::StandardScaler;
pub use series::{DataPoint, MultiSeries, RegularTimeSeries, SeriesError, TimeSeries};
pub use split::{split, Split, SplitSpec, Window, DEFAULT_HORIZON, DEFAULT_INPUT_LEN};
