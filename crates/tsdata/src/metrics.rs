//! Evaluation metrics from §3.5 of the paper: RMSE, NRMSE, RSE, Pearson R,
//! plus the derived quantities — transformation error (TE, Definition 6),
//! forecasting error (FE, Definition 8), transformation forecasting error
//! (TFE, Definition 9) and compression ratio (CR, Eq. 3).

use crate::stats::mean;

/// Root Mean Square Error between two equal-length slices (Eq. 5).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn rmse(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rmse: length mismatch");
    assert!(!x.is_empty(), "rmse: empty input");
    let ss: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
    (ss / x.len() as f64).sqrt()
}

/// Normalized RMSE (Eq. 4): RMSE divided by the range of the reference
/// series `x`. Returns RMSE unscaled when the range is zero.
pub fn nrmse(x: &[f64], y: &[f64]) -> f64 {
    let r = range(x);
    let e = rmse(x, y);
    if r == 0.0 {
        e
    } else {
        e / r
    }
}

/// Root Relative Squared Error: `sqrt(sum (x-y)^2) / sqrt(sum (x-mean(x))^2)`.
/// Returns infinity for a constant reference with nonzero error.
pub fn rse(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rse: length mismatch");
    assert!(!x.is_empty(), "rse: empty input");
    let mx = mean(x);
    let num: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Pearson correlation coefficient. Returns 0.0 when either side is
/// constant (undefined correlation).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    assert!(!x.is_empty(), "pearson: empty input");
    let (mx, my) = (mean(x), mean(y));
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (a, b) in x.iter().zip(y) {
        num += (a - mx) * (b - my);
        dx += (a - mx) * (a - mx);
        dy += (b - my) * (b - my);
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx.sqrt() * dy.sqrt())
    }
}

/// `max(x) - min(x)`; 0.0 for an empty slice.
pub fn range(x: &[f64]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        0.0
    } else {
        hi - lo
    }
}

/// The distance metric used for TE/FE in the paper's result tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Root mean square error.
    Rmse,
    /// Range-normalized RMSE.
    Nrmse,
    /// Root relative squared error.
    Rse,
    /// Pearson correlation (higher is better; not a distance).
    R,
}

impl Metric {
    /// Evaluates the metric with `x` as reference and `y` as candidate.
    pub fn eval(self, x: &[f64], y: &[f64]) -> f64 {
        match self {
            Metric::Rmse => rmse(x, y),
            Metric::Nrmse => nrmse(x, y),
            Metric::Rse => rse(x, y),
            Metric::R => pearson(x, y),
        }
    }

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Rmse => "RMSE",
            Metric::Nrmse => "NRMSE",
            Metric::Rse => "RSE",
            Metric::R => "R",
        }
    }
}

/// A full row of the paper's accuracy tables: all four metrics at once.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSet {
    /// Pearson correlation.
    pub r: f64,
    /// Root relative squared error.
    pub rse: f64,
    /// Root mean square error.
    pub rmse: f64,
    /// Range-normalized RMSE.
    pub nrmse: f64,
}

/// Computes all four §3.5 metrics (reference `x`, candidate `y`).
pub fn metric_set(x: &[f64], y: &[f64]) -> MetricSet {
    MetricSet { r: pearson(x, y), rse: rse(x, y), rmse: rmse(x, y), nrmse: nrmse(x, y) }
}

/// Transformation error (Definition 6): distance between original and
/// decompressed values under `metric` (a nonnegative quantity).
pub fn transformation_error(original: &[f64], decompressed: &[f64], metric: Metric) -> f64 {
    metric.eval(original, decompressed)
}

/// Transformation forecasting error (Definition 9, Eq. 2):
/// `(FE_transformed - FE_raw) / FE_raw`. Negative values mean compression
/// *improved* forecasting accuracy.
///
/// Returns 0.0 when the baseline error is zero and the transformed error is
/// too, and infinity when only the baseline is zero.
pub fn tfe(fe_raw: f64, fe_transformed: f64) -> f64 {
    if fe_raw == 0.0 {
        if fe_transformed == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (fe_transformed - fe_raw) / fe_raw
    }
}

/// Compression ratio (Eq. 3): raw bytes over compressed bytes.
///
/// # Panics
/// Panics if `compressed_bytes` is zero.
pub fn compression_ratio(raw_bytes: usize, compressed_bytes: usize) -> f64 {
    assert!(compressed_bytes > 0, "compression ratio with zero compressed size");
    raw_bytes as f64 / compressed_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known_value() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 2.0, 5.0];
        // squared errors: 1, 0, 4 -> mean 5/3
        assert!((rmse(&x, &y) - (5.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let x = [3.0, 1.0, 4.0];
        assert_eq!(rmse(&x, &x), 0.0);
        assert_eq!(nrmse(&x, &x), 0.0);
        assert_eq!(rse(&x, &x), 0.0);
    }

    #[test]
    fn nrmse_divides_by_range() {
        let x = [0.0, 10.0];
        let y = [1.0, 9.0];
        assert!((nrmse(&x, &y) - rmse(&x, &y) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn nrmse_constant_reference_falls_back_to_rmse() {
        let x = [5.0, 5.0];
        let y = [4.0, 6.0];
        assert!((nrmse(&x, &y) - rmse(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn rse_relative_to_variance() {
        let x = [1.0, 3.0]; // mean 2, sum sq dev = 2
        let y = [2.0, 2.0]; // sum sq err = 2
        assert!((rse(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rse_constant_reference() {
        assert_eq!(rse(&[2.0, 2.0], &[2.0, 2.0]), 0.0);
        assert!(rse(&[2.0, 2.0], &[2.0, 3.0]).is_infinite());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let z = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn tfe_signs() {
        assert!((tfe(0.5, 0.6) - 0.2).abs() < 1e-12); // degraded 20%
        assert!((tfe(0.5, 0.4) + 0.2).abs() < 1e-12); // improved 20%
        assert_eq!(tfe(0.0, 0.0), 0.0);
        assert!(tfe(0.0, 0.1).is_infinite());
    }

    #[test]
    fn compression_ratio_basic() {
        assert!((compression_ratio(1000, 100) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn compression_ratio_zero_panics() {
        compression_ratio(10, 0);
    }

    #[test]
    fn metric_set_consistent_with_individual() {
        let x = [1.0, 2.0, 4.0, 8.0];
        let y = [1.5, 2.5, 3.5, 8.5];
        let s = metric_set(&x, &y);
        assert_eq!(s.rmse, rmse(&x, &y));
        assert_eq!(s.nrmse, nrmse(&x, &y));
        assert_eq!(s.rse, rse(&x, &y));
        assert_eq!(s.r, pearson(&x, &y));
    }

    #[test]
    fn metric_enum_dispatch() {
        let x = [1.0, 2.0];
        let y = [2.0, 3.0];
        assert_eq!(Metric::Rmse.eval(&x, &y), rmse(&x, &y));
        assert_eq!(Metric::R.name(), "R");
    }
}
