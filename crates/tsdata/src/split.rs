//! Dataset splitting and sliding-window construction (§3.4 / §3.6).
//!
//! The paper splits each dataset 70%/10%/20% into train/validation/test,
//! fixes the model input to the 96 previous timestamps and the forecasting
//! horizon to 24 timestamps.

use std::collections::VecDeque;

use crate::series::{MultiSeries, SeriesError, SeriesSource};

/// Paper default input window length (96 previous timestamps).
pub const DEFAULT_INPUT_LEN: usize = 96;
/// Paper default forecasting horizon (24 timestamps).
pub const DEFAULT_HORIZON: usize = 24;

/// Fractions for the paper's 70/10/20 split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSpec {
    /// Training fraction.
    pub train: f64,
    /// Validation fraction.
    pub val: f64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec { train: 0.7, val: 0.1 }
    }
}

/// The three chronological subsets of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training subset (first 70%).
    pub train: MultiSeries,
    /// Validation subset (next 10%).
    pub val: MultiSeries,
    /// Test subset (last 20%).
    pub test: MultiSeries,
}

/// Splits a multivariate series chronologically according to `spec`.
pub fn split(data: &MultiSeries, spec: SplitSpec) -> Result<Split, SeriesError> {
    let n = data.len();
    let train_end = (n as f64 * spec.train).floor() as usize;
    let val_end = (n as f64 * (spec.train + spec.val)).floor() as usize;
    if train_end == 0 || val_end <= train_end || val_end >= n {
        return Err(SeriesError::BadRange { start: train_end, end: val_end, len: n });
    }
    Ok(Split {
        train: data.slice(0, train_end)?,
        val: data.slice(train_end, val_end)?,
        test: data.slice(val_end, n)?,
    })
}

/// One supervised sample: an input window over all channels and the target
/// channel's future values.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Input values, one `Vec` per channel, each of length `input_len`.
    pub inputs: Vec<Vec<f64>>,
    /// Target-channel ground truth, length `horizon`.
    pub target: Vec<f64>,
    /// Index (into the source series) of the first input point.
    pub start: usize,
}

/// Builds sliding windows with the given stride. A window at position `s`
/// uses inputs `s..s+input_len` and targets `s+input_len..s+input_len+horizon`
/// from the target channel.
pub fn make_windows(
    data: &MultiSeries,
    input_len: usize,
    horizon: usize,
    stride: usize,
) -> Vec<Window> {
    let sources: Vec<&dyn SeriesSource> =
        data.channels().iter().map(|c| c as &dyn SeriesSource).collect();
    make_windows_from(&sources, data.target_index(), input_len, horizon, stride)
}

/// Builds the same sliding windows from [`SeriesSource`]s in one streaming
/// pass: each channel is read through its iterator exactly once, with a
/// ring buffer holding only the `input_len + horizon` most recent points
/// per channel. This is what lets chunk-backed store reads feed the
/// forecasting windowers without ever materialising a full series.
pub fn make_windows_from(
    channels: &[&dyn SeriesSource],
    target: usize,
    input_len: usize,
    horizon: usize,
    stride: usize,
) -> Vec<Window> {
    assert!(input_len > 0 && horizon > 0 && stride > 0, "window parameters must be positive");
    assert!(target < channels.len(), "target channel {target} of {}", channels.len());
    let span = input_len + horizon;
    let n = channels.iter().map(|c| c.len()).min().unwrap_or(0);
    if n < span {
        return Vec::new();
    }
    let mut windows = Vec::with_capacity((n - span) / stride + 1);
    let mut rings: Vec<VecDeque<f64>> =
        channels.iter().map(|_| VecDeque::with_capacity(span)).collect();
    let mut iters: Vec<_> = channels.iter().map(|c| c.iter_values()).collect();
    for i in 0..n {
        for (ring, it) in rings.iter_mut().zip(iters.iter_mut()) {
            if ring.len() == span {
                ring.pop_front();
            }
            ring.push_back(it.next().expect("source shorter than its declared len"));
        }
        // The ring now holds indices s..=i with s = i + 1 - span.
        if i + 1 >= span {
            let s = i + 1 - span;
            if s.is_multiple_of(stride) {
                let inputs =
                    rings.iter().map(|r| r.iter().take(input_len).copied().collect()).collect();
                let t = rings[target].iter().skip(input_len).copied().collect();
                windows.push(Window { inputs, target: t, start: s });
            }
        }
    }
    windows
}

/// Pairs each test window's *transformed* inputs with the *raw* targets, as
/// Algorithm 1 requires (`test.x` transformed, `test.y` raw).
///
/// Both series must be aligned (same length and channel count).
pub fn make_eval_windows(
    raw: &MultiSeries,
    transformed: &MultiSeries,
    input_len: usize,
    horizon: usize,
    stride: usize,
) -> Result<Vec<Window>, SeriesError> {
    if raw.len() != transformed.len() {
        return Err(SeriesError::LengthMismatch { left: raw.len(), right: transformed.len() });
    }
    let mut windows = make_windows(transformed, input_len, horizon, stride);
    let raw_target = raw.target().values();
    for w in &mut windows {
        w.target.copy_from_slice(&raw_target[w.start + input_len..w.start + input_len + horizon]);
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::RegularTimeSeries;

    fn series(n: usize) -> MultiSeries {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        MultiSeries::univariate("x", RegularTimeSeries::new(0, 60, vals).unwrap())
    }

    #[test]
    fn split_fractions() {
        let s = split(&series(100), SplitSpec::default()).unwrap();
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 20);
        // chronological
        assert_eq!(s.train.target().values()[0], 0.0);
        assert_eq!(s.val.target().values()[0], 70.0);
        assert_eq!(s.test.target().values()[0], 80.0);
    }

    #[test]
    fn split_too_small_errors() {
        assert!(split(&series(3), SplitSpec::default()).is_err());
    }

    #[test]
    fn windows_cover_series() {
        let w = make_windows(&series(10), 3, 2, 1);
        // positions 0..=5 -> 6 windows
        assert_eq!(w.len(), 6);
        assert_eq!(w[0].inputs[0], vec![0.0, 1.0, 2.0]);
        assert_eq!(w[0].target, vec![3.0, 4.0]);
        assert_eq!(w[5].inputs[0], vec![5.0, 6.0, 7.0]);
        assert_eq!(w[5].target, vec![8.0, 9.0]);
    }

    #[test]
    fn windows_respect_stride() {
        let w = make_windows(&series(20), 4, 2, 5);
        assert_eq!(w.len(), 3);
        assert_eq!(w[1].start, 5);
    }

    #[test]
    fn short_series_yields_no_windows() {
        assert!(make_windows(&series(4), 3, 2, 1).is_empty());
    }

    #[test]
    fn source_windows_match_slice_windows() {
        // The streaming ring-buffer path is the only implementation now,
        // so pin it against a hand-rolled slice reference.
        let data = series(53);
        for (input_len, horizon, stride) in [(3, 2, 1), (4, 2, 5), (7, 3, 2), (50, 3, 1)] {
            let got = make_windows(&data, input_len, horizon, stride);
            let target = data.target().values();
            let mut want = Vec::new();
            let mut s = 0;
            while s + input_len + horizon <= data.len() {
                want.push(Window {
                    inputs: data
                        .channels()
                        .iter()
                        .map(|c| c.values()[s..s + input_len].to_vec())
                        .collect(),
                    target: target[s + input_len..s + input_len + horizon].to_vec(),
                    start: s,
                });
                s += stride;
            }
            assert_eq!(got, want, "input_len={input_len} horizon={horizon} stride={stride}");
        }
    }

    #[test]
    fn eval_windows_mix_transformed_inputs_with_raw_targets() {
        let raw = series(10);
        // transformed = raw + 100
        let transformed = raw
            .map_channels(|c| {
                c.with_values(c.values().iter().map(|v| v + 100.0).collect()).unwrap()
            })
            .unwrap();
        let w = make_eval_windows(&raw, &transformed, 3, 2, 1).unwrap();
        assert_eq!(w[0].inputs[0], vec![100.0, 101.0, 102.0]); // transformed x
        assert_eq!(w[0].target, vec![3.0, 4.0]); // raw y
    }

    #[test]
    fn eval_windows_length_mismatch_errors() {
        let raw = series(10);
        let other = series(9);
        assert!(make_eval_windows(&raw, &other, 3, 2, 1).is_err());
    }
}
