//! Descriptive statistics used in Table 1 of the paper: length, mean,
//! min, max, quartiles, and the relative inter-quartile difference
//! `rIQD = (Q3 - Q1) / MEAN * 100`.

/// Summary statistics of a value slice (Table 1 columns).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub len: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Relative inter-quartile difference in percent:
    /// `(q3 - q1) / mean * 100`.
    pub riqd: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; 0.0 for an empty slice.
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 1]` (type-7 quantile, as in R
/// and NumPy's default, which the paper's Python tooling uses).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 1.0);
    let h = (sorted.len() - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Computes the full Table-1 summary of a value slice.
///
/// # Panics
/// Panics if `values` is empty.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "summarize of empty slice");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in series"));
    let m = mean(values);
    let q1 = percentile(&sorted, 0.25);
    let q3 = percentile(&sorted, 0.75);
    let riqd = if m == 0.0 { f64::INFINITY } else { (q3 - q1) / m * 100.0 };
    Summary {
        len: values.len(),
        mean: m,
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
        q1,
        q3,
        riqd,
        std_dev: std_dev(values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert!((percentile(&s, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&s, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = summarize(&v);
        assert_eq!(s.len, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.q1 - 25.75).abs() < 1e-12);
        assert!((s.q3 - 75.25).abs() < 1e-12);
        let riqd = (s.q3 - s.q1) / s.mean * 100.0;
        assert!((s.riqd - riqd).abs() < 1e-12);
    }

    #[test]
    fn riqd_infinite_for_zero_mean() {
        let s = summarize(&[-1.0, 1.0]);
        assert!(s.riqd.is_infinite());
    }
}
