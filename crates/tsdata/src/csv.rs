//! CSV import/export so the evaluation can run on the *real* datasets
//! (ETT, Solar, Weather, …) when the user has downloaded them, and so grid
//! results can leave the process for plotting.
//!
//! The format follows the ETT family: a header row, a `date`/timestamp
//! first column (ISO `YYYY-MM-DD HH:MM[:SS]` or integer seconds), and one
//! numeric column per channel. No external CSV dependency — the dialect
//! here (no quoted fields) is what these datasets actually use.

use std::fmt;
use std::path::Path;

use crate::series::{MultiSeries, RegularTimeSeries, SeriesError};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// I/O failure.
    Io(std::io::Error),
    /// The file is empty or has no data rows.
    Empty,
    /// A malformed row (line number, message).
    BadRow(usize, String),
    /// A timestamp that could not be parsed.
    BadTimestamp(usize, String),
    /// The named target column is missing.
    MissingColumn(String),
    /// Rows are not equally spaced in time.
    Irregular(usize),
    /// Series construction failed.
    Series(SeriesError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io: {e}"),
            CsvError::Empty => write!(f, "csv has no data rows"),
            CsvError::BadRow(line, msg) => write!(f, "csv line {line}: {msg}"),
            CsvError::BadTimestamp(line, ts) => {
                write!(f, "csv line {line}: bad timestamp '{ts}'")
            }
            CsvError::MissingColumn(name) => write!(f, "csv missing column '{name}'"),
            CsvError::Irregular(line) => {
                write!(f, "csv line {line}: sampling interval changes")
            }
            CsvError::Series(e) => write!(f, "csv series: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<SeriesError> for CsvError {
    fn from(e: SeriesError) -> Self {
        CsvError::Series(e)
    }
}

/// Parses an ETT-style timestamp: ISO `YYYY-MM-DD HH:MM[:SS]` (treated as
/// UTC) or a plain integer (Unix seconds).
pub fn parse_timestamp(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Ok(secs) = s.parse::<i64>() {
        return Some(secs);
    }
    // YYYY-MM-DD[ T]HH:MM[:SS]
    let bytes = s.as_bytes();
    if bytes.len() < 16 {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> Option<i64> { s.get(range)?.parse::<i64>().ok() };
    let year = num(0..4)?;
    let month = num(5..7)?;
    let day = num(8..10)?;
    let hour = num(11..13)?;
    let minute = num(14..16)?;
    let second = if bytes.len() >= 19 { num(17..19)? } else { 0 };
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(days_from_civil(year, month, day) * 86_400 + hour * 3_600 + minute * 60 + second)
}

/// Days since the Unix epoch (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Parses CSV text into a [`MultiSeries`]. `target` selects the target
/// channel by column name (e.g. `"OT"` for ETT); `None` uses the last
/// column (the ETT convention).
pub fn parse_multiseries(text: &str, target: Option<&str>) -> Result<MultiSeries, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::Empty)?;
    let names: Vec<String> = header.split(',').skip(1).map(|s| s.trim().to_string()).collect();
    if names.is_empty() {
        return Err(CsvError::BadRow(1, "header needs a timestamp and one value column".into()));
    }
    let mut timestamps: Vec<i64> = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let ts_field = fields
            .next()
            .ok_or_else(|| CsvError::BadRow(idx + 1, "missing timestamp field".into()))?;
        let ts = parse_timestamp(ts_field)
            .ok_or_else(|| CsvError::BadTimestamp(idx + 1, ts_field.to_string()))?;
        timestamps.push(ts);
        for (c, col) in columns.iter_mut().enumerate() {
            let field = fields
                .next()
                .ok_or_else(|| CsvError::BadRow(idx + 1, format!("missing column {}", names[c])))?;
            let v: f64 = field
                .trim()
                .parse()
                .map_err(|_| CsvError::BadRow(idx + 1, format!("bad number '{}'", field.trim())))?;
            col.push(v);
        }
    }
    if timestamps.is_empty() {
        return Err(CsvError::Empty);
    }
    // Regularity check.
    let start = timestamps[0];
    let interval = if timestamps.len() > 1 { timestamps[1] - start } else { 1 };
    if interval <= 0 {
        return Err(CsvError::Irregular(3));
    }
    for (i, w) in timestamps.windows(2).enumerate() {
        if w[1] - w[0] != interval {
            return Err(CsvError::Irregular(i + 3));
        }
    }
    let channels = columns
        .into_iter()
        .map(|values| RegularTimeSeries::new(start, interval, values))
        .collect::<Result<Vec<_>, _>>()?;
    let target_idx = match target {
        Some(name) => names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| CsvError::MissingColumn(name.to_string()))?,
        None => names.len() - 1,
    };
    Ok(MultiSeries::new(names, channels, target_idx)?)
}

/// Loads a CSV file.
pub fn load(path: &Path, target: Option<&str>) -> Result<MultiSeries, CsvError> {
    parse_multiseries(&std::fs::read_to_string(path)?, target)
}

/// Serializes a [`MultiSeries`] back to ETT-style CSV (integer-second
/// timestamps).
pub fn to_csv(data: &MultiSeries) -> String {
    let mut out = String::from("date");
    for name in data.names() {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    let target = data.target();
    for i in 0..data.len() {
        out.push_str(&target.timestamp(i).to_string());
        for ch in data.channels() {
            out.push(',');
            out.push_str(&format!("{}", ch.values()[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
date,HUFL,OT
2016-07-01 00:00:00,5.827,30.531
2016-07-01 00:15:00,5.693,30.460
2016-07-01 00:30:00,5.157,30.038
2016-07-01 00:45:00,5.090,27.013
";

    #[test]
    fn parses_ett_style_csv() {
        let m = parse_multiseries(SAMPLE, Some("OT")).unwrap();
        assert_eq!(m.num_channels(), 2);
        assert_eq!(m.len(), 4);
        assert_eq!(m.names(), &["HUFL".to_string(), "OT".to_string()]);
        assert_eq!(m.target_index(), 1);
        assert_eq!(m.target().values()[0], 30.531);
        assert_eq!(m.target().interval(), 900);
    }

    #[test]
    fn default_target_is_last_column() {
        let m = parse_multiseries(SAMPLE, None).unwrap();
        assert_eq!(m.target_index(), 1);
    }

    #[test]
    fn integer_timestamps_accepted() {
        let csv = "ts,v\n100,1.0\n160,2.0\n220,3.0\n";
        let m = parse_multiseries(csv, None).unwrap();
        assert_eq!(m.target().start(), 100);
        assert_eq!(m.target().interval(), 60);
    }

    #[test]
    fn timestamp_parsing() {
        assert_eq!(parse_timestamp("1970-01-01 00:00:00"), Some(0));
        assert_eq!(parse_timestamp("1970-01-02 00:00"), Some(86_400));
        assert_eq!(parse_timestamp("2016-07-01 00:15:00"), Some(1_467_332_100));
        assert_eq!(parse_timestamp("42"), Some(42));
        assert_eq!(parse_timestamp("not-a-date"), None);
        assert_eq!(parse_timestamp("2016-13-01 00:00:00"), None);
    }

    #[test]
    fn errors_reported_with_lines() {
        assert!(matches!(parse_multiseries("", None), Err(CsvError::Empty)));
        assert!(matches!(parse_multiseries("date,v\n", None), Err(CsvError::Empty)));
        let bad_num = "date,v\n0,1.0\n60,oops\n";
        assert!(matches!(parse_multiseries(bad_num, None), Err(CsvError::BadRow(3, _))));
        let bad_ts = "date,v\nxx,1.0\n";
        assert!(matches!(parse_multiseries(bad_ts, None), Err(CsvError::BadTimestamp(2, _))));
        let irregular = "date,v\n0,1.0\n60,2.0\n180,3.0\n";
        assert!(matches!(parse_multiseries(irregular, None), Err(CsvError::Irregular(_))));
        assert!(matches!(parse_multiseries(SAMPLE, Some("nope")), Err(CsvError::MissingColumn(_))));
    }

    #[test]
    fn roundtrip_through_to_csv() {
        let m = parse_multiseries(SAMPLE, Some("OT")).unwrap();
        let text = to_csv(&m);
        let back = parse_multiseries(&text, Some("OT")).unwrap();
        assert_eq!(back.len(), m.len());
        assert_eq!(back.target().values(), m.target().values());
        assert_eq!(back.target().start(), m.target().start());
    }

    #[test]
    fn civil_days_reference_values() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }
}
