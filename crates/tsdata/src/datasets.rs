//! Synthetic recreations of the paper's six datasets.
//!
//! The real datasets (ETTm1/2, Solar, Weather, ElecDem, Wind) are not
//! redistributable here, so each is regenerated from [`crate::generators`]
//! building blocks and calibrated to the descriptive statistics the paper
//! reports in Table 1 (length, sampling interval, mean, min, max, Q1, Q3 and
//! hence rIQD), plus the qualitative structure the paper's analyses rely on:
//! daily/weekly seasonality, night-time zeros for Solar, the tiny relative
//! spread of Weather, and the 2-second high-autocorrelation Wind signal.
//! See DESIGN.md §1 for the substitution argument.

use rand::RngExt;

use crate::generators::{calibrate, rng, CalibrationTarget, Component, SignalSpec};
use crate::series::{MultiSeries, RegularTimeSeries};
use crate::stats::percentile;

/// The six evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Electrical transformer temperature, 15-minute sampling (variant 1).
    ETTm1,
    /// Electrical transformer temperature, 15-minute sampling (variant 2).
    ETTm2,
    /// Photovoltaic plant power output, 10-minute sampling, 137 plants.
    Solar,
    /// Meteorological indicators, 10-minute sampling, 21 channels.
    Weather,
    /// Half-hourly electricity demand of Victoria, Australia.
    ElecDem,
    /// Wind-turbine active power, 2-second sampling, 10 channels.
    Wind,
}

/// All six datasets in the paper's order.
pub const ALL_DATASETS: [DatasetKind; 6] = [
    DatasetKind::ETTm1,
    DatasetKind::ETTm2,
    DatasetKind::Solar,
    DatasetKind::Weather,
    DatasetKind::ElecDem,
    DatasetKind::Wind,
];

/// Table-1 row: the statistics each generator is calibrated against.
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Number of points.
    pub len: usize,
    /// Sampling interval in seconds.
    pub interval_s: i64,
    /// Human-readable frequency (Table 1 "FREQ" column).
    pub freq: &'static str,
    /// Mean of the target variable.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// First quartile.
    pub q1: f64,
    /// Third quartile.
    pub q3: f64,
    /// Relative inter-quartile difference, percent.
    pub riqd: f64,
}

impl DatasetKind {
    /// The paper's Table-1 statistics for this dataset.
    pub fn paper_stats(self) -> PaperStats {
        match self {
            DatasetKind::ETTm1 => PaperStats {
                name: "ETTm1",
                len: 69_680,
                interval_s: 15 * 60,
                freq: "15min",
                mean: 13.32,
                min: -4.0,
                max: 46.0,
                q1: 7.0,
                q3: 18.0,
                riqd: 82.0,
            },
            DatasetKind::ETTm2 => PaperStats {
                name: "ETTm2",
                len: 69_680,
                interval_s: 15 * 60,
                freq: "15min",
                mean: 26.60,
                min: -3.0,
                max: 58.0,
                q1: 16.0,
                q3: 36.0,
                riqd: 75.0,
            },
            DatasetKind::Solar => PaperStats {
                name: "Solar",
                len: 52_560,
                interval_s: 10 * 60,
                freq: "10min",
                mean: 6.35,
                min: 0.0,
                max: 34.0,
                q1: 0.0,
                q3: 12.0,
                riqd: 200.0,
            },
            DatasetKind::Weather => PaperStats {
                name: "Weather",
                len: 52_704,
                interval_s: 10 * 60,
                freq: "10min",
                mean: 427.66,
                min: 305.0,
                max: 524.0,
                q1: 415.0,
                q3: 437.0,
                riqd: 5.0,
            },
            DatasetKind::ElecDem => PaperStats {
                name: "ElecDem",
                len: 230_736,
                interval_s: 30 * 60,
                freq: "30min",
                mean: 6_740.0,
                min: 3_498.0,
                max: 12_865.0,
                q1: 5_751.0,
                q3: 7_658.0,
                riqd: 28.0,
            },
            DatasetKind::Wind => PaperStats {
                name: "Wind",
                len: 432_000,
                interval_s: 2,
                freq: "2sec",
                mean: 363.69,
                min: -68.0,
                max: 2_030.0,
                q1: 108.0,
                q3: 550.0,
                riqd: 121.0,
            },
        }
    }

    /// Dataset name.
    pub fn name(self) -> &'static str {
        self.paper_stats().name
    }

    /// Samples per day at this dataset's sampling interval.
    pub fn samples_per_day(self) -> f64 {
        86_400.0 / self.paper_stats().interval_s as f64
    }

    /// Channel count used by the paper's source data.
    pub fn paper_channels(self) -> usize {
        match self {
            DatasetKind::ETTm1 | DatasetKind::ETTm2 => 7,
            DatasetKind::Solar => 137,
            DatasetKind::Weather => 21,
            DatasetKind::ElecDem => 1,
            DatasetKind::Wind => 10,
        }
    }

    /// Reduced channel count used by the default (laptop-scale) repro runs.
    pub fn default_channels(self) -> usize {
        match self {
            DatasetKind::ETTm1 | DatasetKind::ETTm2 => 7,
            DatasetKind::Solar => 8,
            DatasetKind::Weather => 7,
            DatasetKind::ElecDem => 1,
            DatasetKind::Wind => 5,
        }
    }

    /// Name of the paper's forecasting target variable.
    pub fn target_name(self) -> &'static str {
        match self {
            DatasetKind::ETTm1 | DatasetKind::ETTm2 => "OT",
            DatasetKind::Solar => "PV_000",
            DatasetKind::Weather => "CO2",
            DatasetKind::ElecDem => "demand",
            DatasetKind::Wind => "active_power",
        }
    }
}

/// Generation options: length/channel overrides for fast test and bench
/// runs, plus the RNG seed.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Number of points; `None` uses the paper's full length.
    pub len: Option<usize>,
    /// Number of channels; `None` uses [`DatasetKind::default_channels`].
    pub channels: Option<usize>,
    /// RNG seed; every call with the same options is bit-identical.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { len: None, channels: None, seed: 0x5EED }
    }
}

impl GenOptions {
    /// Shorthand for a truncated dataset.
    pub fn with_len(len: usize) -> Self {
        GenOptions { len: Some(len), ..Default::default() }
    }
}

/// Generates the dataset as a calibrated multivariate series with the target
/// channel marked.
///
/// ```
/// use tsdata::datasets::{generate, DatasetKind, GenOptions};
/// let data = generate(DatasetKind::ETTm1, GenOptions::with_len(500));
/// assert_eq!(data.len(), 500);
/// assert_eq!(data.names()[data.target_index()], "OT");
/// assert_eq!(data.target().interval(), 900); // 15 minutes
/// ```
pub fn generate(kind: DatasetKind, opts: GenOptions) -> MultiSeries {
    let stats = kind.paper_stats();
    let n = opts.len.unwrap_or(stats.len).max(8);
    let channels = opts.channels.unwrap_or_else(|| kind.default_channels()).max(1);
    let mut r = rng(opts.seed ^ dataset_salt(kind));

    let target_values = generate_target(kind, n, &mut r);
    let mut names = vec![kind.target_name().to_string()];
    let mut series = vec![make_series(stats.interval_s, target_values.clone())];

    for ch in 1..channels {
        let own = generate_target(kind, n, &mut r);
        // Correlate auxiliary channels with the target, as real multivariate
        // sensor data is: shared physical driver plus per-channel variation.
        let mix: Vec<f64> =
            target_values.iter().zip(&own).map(|(t, o)| 0.6 * t + 0.4 * o).collect();
        names.push(channel_name(kind, ch));
        series.push(make_series(stats.interval_s, mix));
    }

    MultiSeries::new(names, series, 0).expect("generated channels are aligned by construction")
}

/// Generates only the target channel (univariate), calibrated.
pub fn generate_univariate(kind: DatasetKind, opts: GenOptions) -> RegularTimeSeries {
    let stats = kind.paper_stats();
    let n = opts.len.unwrap_or(stats.len).max(8);
    let mut r = rng(opts.seed ^ dataset_salt(kind));
    make_series(stats.interval_s, generate_target(kind, n, &mut r))
}

fn dataset_salt(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::ETTm1 => 0x01,
        DatasetKind::ETTm2 => 0x02,
        DatasetKind::Solar => 0x03,
        DatasetKind::Weather => 0x04,
        DatasetKind::ElecDem => 0x05,
        DatasetKind::Wind => 0x06,
    }
}

fn channel_name(kind: DatasetKind, ch: usize) -> String {
    match kind {
        DatasetKind::ETTm1 | DatasetKind::ETTm2 => {
            ["OT", "HUFL", "HULL", "MUFL", "MULL", "LUFL", "LULL"]
                .get(ch)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("load_{ch}"))
        }
        DatasetKind::Solar => format!("PV_{ch:03}"),
        DatasetKind::Weather => ["CO2", "T", "p", "rh", "wv", "rain", "SWDR"]
            .get(ch)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("met_{ch}")),
        DatasetKind::ElecDem => format!("aux_{ch}"),
        DatasetKind::Wind => ["active_power", "rotor_speed", "wind_speed", "pitch", "nacelle_temp"]
            .get(ch)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("turbine_{ch}")),
    }
}

fn make_series(interval: i64, values: Vec<f64>) -> RegularTimeSeries {
    // Fixed epoch start keeps timestamps deterministic across runs.
    RegularTimeSeries::new(1_672_531_200, interval, values).expect("non-empty generated series")
}

/// Decimal places each dataset's sensor reports — real meter data is
/// quantized, which is what lets lossless compressors (gzip on the raw
/// data, Gorilla) find repeated values.
fn decimals(kind: DatasetKind) -> u32 {
    match kind {
        // Oil temperature is reported in hundredths of a degree.
        DatasetKind::ETTm1 | DatasetKind::ETTm2 => 2,
        // PV output in tenths of a MW.
        DatasetKind::Solar => 1,
        // CO2 in tenths of a ppm.
        DatasetKind::Weather => 1,
        // Demand in whole MW.
        DatasetKind::ElecDem => 0,
        // Turbine active power in whole kW.
        DatasetKind::Wind => 0,
    }
}

fn quantize(values: &mut [f64], decimals: u32) {
    let k = 10f64.powi(decimals as i32);
    for v in values.iter_mut() {
        *v = (*v * k).round() / k;
    }
}

fn generate_target(kind: DatasetKind, n: usize, r: &mut rand::rngs::StdRng) -> Vec<f64> {
    let mut v = generate_target_raw(kind, n, r);
    quantize(&mut v, decimals(kind));
    v
}

fn generate_target_raw(kind: DatasetKind, n: usize, r: &mut rand::rngs::StdRng) -> Vec<f64> {
    let stats = kind.paper_stats();
    let day = kind.samples_per_day();
    let target = CalibrationTarget {
        mean: stats.mean,
        q1: stats.q1,
        q3: stats.q3,
        min: stats.min,
        max: stats.max,
    };
    match kind {
        DatasetKind::ETTm1 => {
            // Oil temperature: strong daily cycle, weekly modulation, slow
            // drift, moderately rough AR noise.
            let spec = SignalSpec::new()
                .with(Component::Seasonal { period: day, amplitude: 1.0, phase: 0.3 })
                .with(Component::Seasonal { period: 7.0 * day, amplitude: 0.5, phase: 1.1 })
                .with(Component::RandomWalk { sigma: 0.02, revert: 0.0005 })
                .with(Component::ArNoise { phi: 0.96, sigma: 0.06 })
                // Sensor glitches / load transients: rare heavy-tailed
                // outliers, which the PEBLC methods must preserve when they
                // exceed the bound (paper §1) — these keep segment counts
                // realistic at large error bounds.
                .with(Component::Spikes { prob: 0.008, scale: 1.0 });
            let mut v = spec.generate(n, r);
            calibrate(&mut v, target);
            v
        }
        DatasetKind::ETTm2 => {
            // Smoother variant with a longer seasonal memory.
            let spec = SignalSpec::new()
                .with(Component::Seasonal { period: day, amplitude: 0.8, phase: 0.0 })
                .with(Component::Seasonal { period: 7.0 * day, amplitude: 0.9, phase: 0.4 })
                .with(Component::RandomWalk { sigma: 0.015, revert: 0.0003 })
                .with(Component::ArNoise { phi: 0.97, sigma: 0.04 })
                .with(Component::Spikes { prob: 0.005, scale: 0.8 });
            let mut v = spec.generate(n, r);
            calibrate(&mut v, target);
            v
        }
        DatasetKind::Solar => {
            // Daytime bell with night-time zeros; cloud cover modulates
            // amplitude. Calibrated multiplicatively so the zeros (and thus
            // Q1 = 0, rIQD = 200%) survive.
            let cloud = SignalSpec::new()
                .with(Component::Constant(0.75))
                .with(Component::RandomWalk { sigma: 0.01, revert: 0.02 })
                .generate(n, r);
            let mut v = Vec::with_capacity(n);
            for (i, &c) in cloud.iter().enumerate() {
                let phase = (i as f64 % day) / day; // 0..1 through the day
                                                    // Daylight from 0.25 to 0.75 of the day; sin bell over it.
                let bell = if (0.25..0.75).contains(&phase) {
                    ((phase - 0.25) / 0.5 * std::f64::consts::PI).sin()
                } else {
                    0.0
                };
                let noise = 1.0 + 0.12 * crate::generators::gaussian(r);
                let x = (bell * c.clamp(0.05, 1.5) * noise).max(0.0);
                v.push(x);
            }
            // Multiplicative calibration to hit Q3 while keeping zeros.
            let mut sorted = v.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let q3 = percentile(&sorted, 0.75).max(1e-9);
            let scale = stats.q3 / q3;
            for x in v.iter_mut() {
                *x = (*x * scale).clamp(stats.min, stats.max);
            }
            v
        }
        DatasetKind::Weather => {
            // CO2 concentration: tight band around the mean (rIQD 5%), slow
            // diurnal cycle plus mean-reverting drift.
            let spec = SignalSpec::new()
                .with(Component::Seasonal { period: day, amplitude: 0.6, phase: 0.9 })
                .with(Component::RandomWalk { sigma: 0.03, revert: 0.002 })
                .with(Component::ArNoise { phi: 0.8, sigma: 0.12 })
                .with(Component::Spikes { prob: 0.0008, scale: 2.0 });
            let mut v = spec.generate(n, r);
            calibrate(&mut v, target);
            v
        }
        DatasetKind::ElecDem => {
            // Electricity demand: daily + weekly + annual seasonality with
            // amplitude-modulated daily peaks.
            let year = 365.25 * day;
            let spec = SignalSpec::new()
                .with(Component::ModulatedSeasonal {
                    period: day,
                    amplitude: 1.0,
                    mod_period: year,
                    depth: 0.35,
                })
                .with(Component::Seasonal { period: 7.0 * day, amplitude: 0.35, phase: 0.2 })
                .with(Component::Seasonal { period: year, amplitude: 0.5, phase: 2.0 })
                .with(Component::ArNoise { phi: 0.85, sigma: 0.15 });
            let mut v = spec.generate(n, r);
            calibrate(&mut v, target);
            v
        }
        DatasetKind::Wind => {
            // Active power: near-unit-root wind speed pushed through a
            // cubic power curve that saturates at rated power, with gust
            // spikes and small negative idle consumption.
            let wind = SignalSpec::new()
                .with(Component::Constant(7.0))
                .with(Component::RandomWalk { sigma: 0.06, revert: 0.001 })
                .with(Component::ArNoise { phi: 0.98, sigma: 0.08 })
                .with(Component::Seasonal { period: day, amplitude: 1.5, phase: 0.0 })
                .generate(n, r);
            let mut v: Vec<f64> = wind
                .iter()
                .map(|&w| {
                    let w = w.max(0.0);
                    let cut_in = 3.0;
                    let rated = 12.0;
                    if w < cut_in {
                        // Idle turbine draws a little power from the grid.
                        -0.02 - 0.01 * r.random::<f64>()
                    } else if w < rated {
                        let x = (w - cut_in) / (rated - cut_in);
                        x * x * x
                    } else {
                        1.0
                    }
                })
                .collect();
            calibrate(
                &mut v,
                CalibrationTarget {
                    mean: stats.mean,
                    q1: stats.q1,
                    q3: stats.q3,
                    min: stats.min,
                    max: stats.max,
                },
            );
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    const TEST_LEN: usize = 20_000;

    fn tolerance_check(kind: DatasetKind) {
        let s = generate_univariate(kind, GenOptions::with_len(TEST_LEN));
        let stats = kind.paper_stats();
        let got = summarize(s.values());
        let span = stats.max - stats.min;
        assert!(
            (got.mean - stats.mean).abs() < 0.12 * span,
            "{}: mean {} vs paper {}",
            stats.name,
            got.mean,
            stats.mean
        );
        assert!(
            (got.q1 - stats.q1).abs() < 0.12 * span,
            "{}: q1 {} vs paper {}",
            stats.name,
            got.q1,
            stats.q1
        );
        assert!(
            (got.q3 - stats.q3).abs() < 0.12 * span,
            "{}: q3 {} vs paper {}",
            stats.name,
            got.q3,
            stats.q3
        );
        assert!(got.min >= stats.min - 1e-9, "{}: min {}", stats.name, got.min);
        assert!(got.max <= stats.max + 1e-9, "{}: max {}", stats.name, got.max);
    }

    #[test]
    fn ettm1_calibrated() {
        tolerance_check(DatasetKind::ETTm1);
    }

    #[test]
    fn ettm2_calibrated() {
        tolerance_check(DatasetKind::ETTm2);
    }

    #[test]
    fn solar_calibrated() {
        tolerance_check(DatasetKind::Solar);
    }

    #[test]
    fn weather_calibrated() {
        tolerance_check(DatasetKind::Weather);
    }

    #[test]
    fn elecdem_calibrated() {
        tolerance_check(DatasetKind::ElecDem);
    }

    #[test]
    fn wind_calibrated() {
        tolerance_check(DatasetKind::Wind);
    }

    #[test]
    fn solar_has_night_zeros() {
        let s = generate_univariate(DatasetKind::Solar, GenOptions::with_len(TEST_LEN));
        let zeros = s.values().iter().filter(|&&v| v == 0.0).count();
        // Half the day is night; Q1 must be 0 as in the paper.
        assert!(zeros as f64 > 0.25 * TEST_LEN as f64, "only {zeros} zeros");
        let got = summarize(s.values());
        assert_eq!(got.q1, 0.0);
    }

    #[test]
    fn weather_riqd_is_small() {
        let s = generate_univariate(DatasetKind::Weather, GenOptions::with_len(TEST_LEN));
        let got = summarize(s.values());
        assert!(got.riqd < 15.0, "Weather rIQD {} should be small", got.riqd);
    }

    #[test]
    fn riqd_ordering_matches_paper() {
        // Paper: Solar (200%) > Wind (121%) > ETTm1 (82%) > ETTm2 (75%)
        //        > ElecDem (28%) > Weather (5%)
        let riqd =
            |k| summarize(generate_univariate(k, GenOptions::with_len(TEST_LEN)).values()).riqd;
        let solar = riqd(DatasetKind::Solar);
        let wind = riqd(DatasetKind::Wind);
        let ettm1 = riqd(DatasetKind::ETTm1);
        let elec = riqd(DatasetKind::ElecDem);
        let weather = riqd(DatasetKind::Weather);
        assert!(solar > wind, "solar {solar} wind {wind}");
        assert!(wind > ettm1, "wind {wind} ettm1 {ettm1}");
        assert!(ettm1 > elec, "ettm1 {ettm1} elec {elec}");
        assert!(elec > weather, "elec {elec} weather {weather}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetKind::ETTm1, GenOptions::with_len(500));
        let b = generate(DatasetKind::ETTm1, GenOptions::with_len(500));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_univariate(DatasetKind::ETTm1, GenOptions::with_len(500));
        let b = generate_univariate(
            DatasetKind::ETTm1,
            GenOptions { len: Some(500), channels: None, seed: 999 },
        );
        assert_ne!(a.values(), b.values());
    }

    #[test]
    fn channel_counts_and_target() {
        let m = generate(DatasetKind::Solar, GenOptions::with_len(300));
        assert_eq!(m.num_channels(), DatasetKind::Solar.default_channels());
        assert_eq!(m.names()[0], "PV_000");
        assert_eq!(m.target_index(), 0);
        let m2 = generate(
            DatasetKind::Weather,
            GenOptions { len: Some(300), channels: Some(3), seed: 1 },
        );
        assert_eq!(m2.num_channels(), 3);
    }

    #[test]
    fn full_length_default() {
        // Only check the cheap metadata path, not a full generation.
        assert_eq!(DatasetKind::ElecDem.paper_stats().len, 230_736);
        assert_eq!(DatasetKind::Wind.paper_stats().interval_s, 2);
        assert_eq!(DatasetKind::ETTm1.samples_per_day(), 96.0);
        assert_eq!(DatasetKind::ElecDem.samples_per_day(), 48.0);
    }

    #[test]
    fn aux_channels_correlate_with_target() {
        let m = generate(DatasetKind::ETTm1, GenOptions::with_len(4000));
        let t = m.target().values();
        let aux = m.channels()[1].values();
        let r = crate::metrics::pearson(t, aux);
        assert!(r > 0.3, "aux channel correlation {r} too low");
    }
}
