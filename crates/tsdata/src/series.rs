//! Core time-series data model.
//!
//! The paper (Definitions 1–3) works exclusively with *regular* time series:
//! a start timestamp, a constant sampling interval, and a list of values.
//! [`RegularTimeSeries`] is the central type of the workspace; the irregular
//! [`TimeSeries`] exists for ingestion and for validating regularity.

use std::fmt;

/// A single observation: a Unix timestamp in seconds and a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPoint {
    /// Unix timestamp in seconds.
    pub timestamp: i64,
    /// Observed value.
    pub value: f64,
}

/// Errors produced when constructing or manipulating series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesError {
    /// The series has no data points.
    Empty,
    /// Timestamps are not strictly increasing at the given index.
    NonMonotonic(usize),
    /// The gap between points at the given index differs from the first gap.
    Irregular(usize),
    /// A zero or negative sampling interval was supplied.
    InvalidInterval(i64),
    /// Requested segment bounds are out of range or inverted.
    BadRange { start: usize, end: usize, len: usize },
    /// Two series that must be aligned have different lengths.
    LengthMismatch { left: usize, right: usize },
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::Empty => write!(f, "time series is empty"),
            SeriesError::NonMonotonic(i) => {
                write!(f, "timestamps are not strictly increasing at index {i}")
            }
            SeriesError::Irregular(i) => {
                write!(f, "sampling interval changes at index {i}")
            }
            SeriesError::InvalidInterval(iv) => {
                write!(f, "invalid sampling interval {iv} (must be > 0)")
            }
            SeriesError::BadRange { start, end, len } => {
                write!(f, "segment range {start}..{end} is invalid for length {len}")
            }
            SeriesError::LengthMismatch { left, right } => {
                write!(f, "series lengths differ: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for SeriesError {}

/// An irregular time series: a list of points indexed in time order
/// (Definition 1). Used only at ingestion boundaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    points: Vec<DataPoint>,
}

impl TimeSeries {
    /// Builds a series from points, validating that timestamps strictly
    /// increase.
    pub fn new(points: Vec<DataPoint>) -> Result<Self, SeriesError> {
        for i in 1..points.len() {
            if points[i].timestamp <= points[i - 1].timestamp {
                return Err(SeriesError::NonMonotonic(i));
            }
        }
        Ok(TimeSeries { points })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying points.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// Checks Definition 2 (constant gap) and converts into a
    /// [`RegularTimeSeries`].
    pub fn into_regular(self) -> Result<RegularTimeSeries, SeriesError> {
        if self.points.is_empty() {
            return Err(SeriesError::Empty);
        }
        if self.points.len() == 1 {
            // A single point is trivially regular; pick interval 1.
            return RegularTimeSeries::new(self.points[0].timestamp, 1, vec![self.points[0].value]);
        }
        let interval = self.points[1].timestamp - self.points[0].timestamp;
        if interval <= 0 {
            return Err(SeriesError::InvalidInterval(interval));
        }
        for i in 2..self.points.len() {
            if self.points[i].timestamp - self.points[i - 1].timestamp != interval {
                return Err(SeriesError::Irregular(i));
            }
        }
        let start = self.points[0].timestamp;
        let values = self.points.into_iter().map(|p| p.value).collect();
        RegularTimeSeries::new(start, interval, values)
    }
}

/// A regular time series (Definition 2): `values[i]` was observed at
/// `start + i * interval` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct RegularTimeSeries {
    start: i64,
    interval: i64,
    values: Vec<f64>,
}

impl RegularTimeSeries {
    /// Creates a regular series. `interval` is in seconds and must be
    /// positive; `values` must be non-empty.
    pub fn new(start: i64, interval: i64, values: Vec<f64>) -> Result<Self, SeriesError> {
        if values.is_empty() {
            return Err(SeriesError::Empty);
        }
        if interval <= 0 {
            return Err(SeriesError::InvalidInterval(interval));
        }
        Ok(RegularTimeSeries { start, interval, values })
    }

    /// First timestamp (seconds).
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Sampling interval (seconds).
    pub fn interval(&self) -> i64 {
        self.interval
    }

    /// Observed values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to values (used by in-place transformations).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty (never true for a constructed series).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of the `i`-th point.
    pub fn timestamp(&self, i: usize) -> i64 {
        self.start + self.interval * i as i64
    }

    /// Iterates `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = DataPoint> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| DataPoint { timestamp: self.timestamp(i), value: v })
    }

    /// A segment `x_s(i, j)` (Definition 3): points with indices in
    /// `start..end` (half-open). The segment keeps correct absolute
    /// timestamps.
    pub fn segment(&self, start: usize, end: usize) -> Result<RegularTimeSeries, SeriesError> {
        if start >= end || end > self.values.len() {
            return Err(SeriesError::BadRange { start, end, len: self.values.len() });
        }
        RegularTimeSeries::new(
            self.timestamp(start),
            self.interval,
            self.values[start..end].to_vec(),
        )
    }

    /// Returns a copy with the same time axis but different values.
    /// This is the transformation `T` of Definition 5 applied pointwise.
    pub fn with_values(&self, values: Vec<f64>) -> Result<RegularTimeSeries, SeriesError> {
        if values.len() != self.values.len() {
            return Err(SeriesError::LengthMismatch {
                left: self.values.len(),
                right: values.len(),
            });
        }
        RegularTimeSeries::new(self.start, self.interval, values)
    }
}

/// Iterator-based read access to a regular series.
///
/// The store's chunk-backed views and the legacy in-memory
/// [`RegularTimeSeries`] both implement this, so windowing and evaluation
/// code can read either without materialising a full `Vec<f64>` first.
/// Implementations must yield exactly [`SeriesSource::len`] values in time
/// order, with the `i`-th value observed at `start + i * interval`.
pub trait SeriesSource {
    /// Number of points.
    fn len(&self) -> usize;

    /// Whether the source has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First timestamp (seconds).
    fn start(&self) -> i64;

    /// Sampling interval (seconds).
    fn interval(&self) -> i64;

    /// Streams the values in time order.
    fn iter_values(&self) -> Box<dyn Iterator<Item = f64> + '_>;

    /// Streams `(timestamp, value)` pairs in time order.
    fn iter_points(&self) -> Box<dyn Iterator<Item = DataPoint> + '_> {
        let start = self.start();
        let interval = self.interval();
        Box::new(
            self.iter_values()
                .enumerate()
                .map(move |(i, v)| DataPoint { timestamp: start + interval * i as i64, value: v }),
        )
    }

    /// Collects the source into an owned in-memory series. Reading code
    /// should prefer the iterators; this exists for the boundary into
    /// slice-based APIs (codecs, model fitting).
    fn materialize(&self) -> Result<RegularTimeSeries, SeriesError> {
        RegularTimeSeries::new(self.start(), self.interval(), self.iter_values().collect())
    }
}

impl SeriesSource for RegularTimeSeries {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn start(&self) -> i64 {
        self.start
    }

    fn interval(&self) -> i64 {
        self.interval
    }

    fn iter_values(&self) -> Box<dyn Iterator<Item = f64> + '_> {
        Box::new(self.values.iter().copied())
    }
}

/// A multivariate regular time series: several aligned channels sharing one
/// time axis, plus the index of the paper's target variable.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    /// Channel names, parallel to `channels`.
    names: Vec<String>,
    /// Aligned channels; all share start/interval/length.
    channels: Vec<RegularTimeSeries>,
    /// Index of the forecasting target channel.
    target: usize,
}

impl MultiSeries {
    /// Builds a multivariate series from aligned channels.
    pub fn new(
        names: Vec<String>,
        channels: Vec<RegularTimeSeries>,
        target: usize,
    ) -> Result<Self, SeriesError> {
        if channels.is_empty() {
            return Err(SeriesError::Empty);
        }
        let (s, iv, n) = (channels[0].start(), channels[0].interval(), channels[0].len());
        for c in &channels[1..] {
            if c.len() != n {
                return Err(SeriesError::LengthMismatch { left: n, right: c.len() });
            }
            if c.start() != s || c.interval() != iv {
                return Err(SeriesError::Irregular(0));
            }
        }
        if names.len() != channels.len() {
            return Err(SeriesError::LengthMismatch { left: names.len(), right: channels.len() });
        }
        if target >= channels.len() {
            return Err(SeriesError::BadRange {
                start: target,
                end: target + 1,
                len: channels.len(),
            });
        }
        Ok(MultiSeries { names, channels, target })
    }

    /// Wraps a single channel as a univariate `MultiSeries`.
    pub fn univariate(name: &str, series: RegularTimeSeries) -> Self {
        MultiSeries { names: vec![name.to_string()], channels: vec![series], target: 0 }
    }

    /// Channel count.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Points per channel.
    pub fn len(&self) -> usize {
        self.channels[0].len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Channel names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All channels.
    pub fn channels(&self) -> &[RegularTimeSeries] {
        &self.channels
    }

    /// Index of the target channel.
    pub fn target_index(&self) -> usize {
        self.target
    }

    /// The target channel.
    pub fn target(&self) -> &RegularTimeSeries {
        &self.channels[self.target]
    }

    /// Applies a per-channel transformation (e.g. compress + decompress),
    /// keeping names and target.
    pub fn map_channels<F>(&self, f: F) -> Result<MultiSeries, SeriesError>
    where
        F: FnMut(&RegularTimeSeries) -> RegularTimeSeries,
    {
        let channels: Vec<_> = self.channels.iter().map(f).collect();
        MultiSeries::new(self.names.clone(), channels, self.target)
    }

    /// Fallible sibling of [`MultiSeries::map_channels`]: stops at the
    /// first channel error instead of transforming the remaining
    /// channels. Use this when the transformation is expensive (e.g. a
    /// codec round-trip) and a failure anywhere poisons the whole result.
    pub fn try_map_channels<F, E>(&self, mut f: F) -> Result<MultiSeries, E>
    where
        F: FnMut(&RegularTimeSeries) -> Result<RegularTimeSeries, E>,
        E: From<SeriesError>,
    {
        let mut channels = Vec::with_capacity(self.channels.len());
        for c in &self.channels {
            channels.push(f(c)?);
        }
        Ok(MultiSeries::new(self.names.clone(), channels, self.target)?)
    }

    /// A row-slice over all channels: indices `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> Result<MultiSeries, SeriesError> {
        let channels =
            self.channels.iter().map(|c| c.segment(start, end)).collect::<Result<Vec<_>, _>>()?;
        MultiSeries::new(self.names.clone(), channels, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(ts: &[(i64, f64)]) -> Vec<DataPoint> {
        ts.iter().map(|&(timestamp, value)| DataPoint { timestamp, value }).collect()
    }

    #[test]
    fn timeseries_rejects_non_monotonic() {
        let err = TimeSeries::new(pts(&[(0, 1.0), (10, 2.0), (10, 3.0)])).unwrap_err();
        assert_eq!(err, SeriesError::NonMonotonic(2));
    }

    #[test]
    fn timeseries_into_regular_roundtrip() {
        let ts = TimeSeries::new(pts(&[(100, 1.0), (160, 2.0), (220, 3.0)])).unwrap();
        let r = ts.into_regular().unwrap();
        assert_eq!(r.start(), 100);
        assert_eq!(r.interval(), 60);
        assert_eq!(r.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(r.timestamp(2), 220);
    }

    #[test]
    fn irregular_series_detected() {
        let ts = TimeSeries::new(pts(&[(0, 1.0), (60, 2.0), (150, 3.0)])).unwrap();
        assert_eq!(ts.into_regular().unwrap_err(), SeriesError::Irregular(2));
    }

    #[test]
    fn single_point_is_regular() {
        let ts = TimeSeries::new(pts(&[(42, 7.0)])).unwrap();
        let r = ts.into_regular().unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.start(), 42);
    }

    #[test]
    fn regular_rejects_empty_and_bad_interval() {
        assert_eq!(RegularTimeSeries::new(0, 60, vec![]).unwrap_err(), SeriesError::Empty);
        assert_eq!(
            RegularTimeSeries::new(0, 0, vec![1.0]).unwrap_err(),
            SeriesError::InvalidInterval(0)
        );
        assert_eq!(
            RegularTimeSeries::new(0, -5, vec![1.0]).unwrap_err(),
            SeriesError::InvalidInterval(-5)
        );
    }

    #[test]
    fn segment_preserves_timestamps() {
        let r = RegularTimeSeries::new(1000, 15, (0..10).map(f64::from).collect()).unwrap();
        let s = r.segment(3, 7).unwrap();
        assert_eq!(s.start(), 1045);
        assert_eq!(s.values(), &[3.0, 4.0, 5.0, 6.0]);
        assert!(r.segment(5, 5).is_err());
        assert!(r.segment(5, 11).is_err());
    }

    #[test]
    fn with_values_checks_length() {
        let r = RegularTimeSeries::new(0, 1, vec![1.0, 2.0]).unwrap();
        assert!(r.with_values(vec![9.0, 8.0]).is_ok());
        assert!(r.with_values(vec![9.0]).is_err());
    }

    #[test]
    fn iter_yields_timestamped_points() {
        let r = RegularTimeSeries::new(10, 5, vec![1.0, 2.0, 3.0]).unwrap();
        let collected: Vec<_> = r.iter().collect();
        assert_eq!(collected[1], DataPoint { timestamp: 15, value: 2.0 });
    }

    #[test]
    fn series_source_matches_inherent_accessors() {
        let r = RegularTimeSeries::new(10, 5, vec![1.0, 2.0, 3.0]).unwrap();
        let src: &dyn SeriesSource = &r;
        assert_eq!(src.len(), 3);
        assert_eq!((src.start(), src.interval()), (10, 5));
        assert_eq!(src.iter_values().collect::<Vec<_>>(), vec![1.0, 2.0, 3.0]);
        assert_eq!(
            src.iter_points().collect::<Vec<_>>(),
            r.iter().collect::<Vec<_>>(),
            "trait points must match the inherent iterator"
        );
        assert_eq!(src.materialize().unwrap(), r);
    }

    #[test]
    fn multiseries_validates_alignment() {
        let a = RegularTimeSeries::new(0, 60, vec![1.0, 2.0]).unwrap();
        let b = RegularTimeSeries::new(0, 60, vec![3.0, 4.0]).unwrap();
        let c = RegularTimeSeries::new(0, 30, vec![3.0, 4.0]).unwrap();
        assert!(MultiSeries::new(vec!["a".into(), "b".into()], vec![a.clone(), b], 1).is_ok());
        assert!(MultiSeries::new(vec!["a".into(), "c".into()], vec![a.clone(), c], 0).is_err());
        assert!(MultiSeries::new(vec!["a".into()], vec![a], 3).is_err());
    }

    #[test]
    fn multiseries_slice_and_map() {
        let a = RegularTimeSeries::new(0, 60, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let m = MultiSeries::univariate("t", a);
        let s = m.slice(1, 3).unwrap();
        assert_eq!(s.target().values(), &[2.0, 3.0]);
        let doubled = m
            .map_channels(|c| c.with_values(c.values().iter().map(|v| v * 2.0).collect()).unwrap())
            .unwrap();
        assert_eq!(doubled.target().values(), &[2.0, 4.0, 6.0, 8.0]);
    }
}
