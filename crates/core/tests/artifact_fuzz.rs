//! Deterministic fuzz sweep over the model-artifact binary format
//! (DESIGN.md §10): `decode_state` must be total — mutated artifact bytes
//! produce `Err(ArtifactError)`, never a panic and never an allocation
//! sized by a hostile header field. Mutations come from the shared
//! [`compression::mutate`] harness, so a CI failure replays from the case
//! label's seed alone.

use compression::mutate::{sweep, ALL_MUTATIONS};
use evalcore::artifact::{crc32, decode_state, encode_state};
use neural::state::StateDict;
use neural::tensor::Tensor;

/// The per-format floor the CI fuzz smoke job guarantees.
const MIN_CASES: usize = 1_000;

/// Valid artifacts of different shapes: empty dict, scalar-heavy dict,
/// one large tensor (deflate-compressed body), and special float values.
fn corpus() -> Vec<Vec<u8>> {
    let empty = StateDict::new();

    let mut scalars = StateDict::new();
    for i in 0..20 {
        scalars.insert(&format!("scalar.{i}"), Tensor::new(1, 1, vec![i as f64 * 1.25]));
    }

    let mut big = StateDict::new();
    big.insert("weights", Tensor::zeros(64, 64));
    big.insert("bias", Tensor::row(&[0.5; 64]));

    let mut specials = StateDict::new();
    specials.insert("s", Tensor::row(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e300]));

    [empty, scalars, big, specials]
        .iter()
        .map(|d| encode_state(d).expect("corpus encodes"))
        .collect()
}

#[test]
fn mutated_artifacts_never_panic() {
    let corpus = corpus();
    let rounds = MIN_CASES.div_ceil(ALL_MUTATIONS.len() * corpus.len());
    let total = sweep(&corpus, 0x0A57_FAC7, rounds, |buf, label| {
        if let Ok(dict) = decode_state(buf) {
            // Vanishingly rare (the CRC must still match), but anything
            // that decodes must re-encode without panicking.
            let reencoded = encode_state(&dict)
                .unwrap_or_else(|e| panic!("decoded dict must re-encode ({label}): {e}"));
            let back = decode_state(&reencoded)
                .unwrap_or_else(|e| panic!("re-encoded dict must decode ({label}): {e}"));
            assert_eq!(back.len(), dict.len(), "entry count drifted: {label}");
        }
    });
    assert!(total >= MIN_CASES, "only {total} artifact cases");
}

/// Every strict truncation of a valid artifact is rejected (the header
/// promises exact body and payload lengths).
#[test]
fn every_truncation_rejected() {
    let bytes = corpus().remove(1);
    for cut in 0..bytes.len() {
        assert!(decode_state(&bytes[..cut]).is_err(), "truncation at {cut} decoded");
    }
}

/// A payload tensor claiming u32::MAX × u32::MAX scalars is rejected by
/// the payload decoder's capacity guard, not by an allocation attempt.
/// The CRC is recomputed over the tampered payload so the hostile shape
/// actually reaches `decode_payload` instead of tripping the checksum.
#[test]
fn hostile_tensor_shape_rejected() {
    let mut dict = StateDict::new();
    dict.insert("t", Tensor::new(1, 2, vec![1.0, 2.0]));
    let mut bytes = encode_state(&dict).expect("encodes");
    // The artifact stores this dict uncompressed (tiny payload); the
    // payload is an MSB-first bitstream, byte-aligned: count(32 bits),
    // then name_len(16) + name + rows(32) + cols(32) per entry.
    assert_eq!(bytes[6] & 1, 0, "tiny artifact must be stored uncompressed");
    let rows_at = 28 + 4 + 2 + 1;
    bytes[rows_at..rows_at + 8].copy_from_slice(&[0xFF; 8]);
    let crc = crc32(&bytes[28..]);
    bytes[24..28].copy_from_slice(&crc.to_le_bytes());
    assert!(decode_state(&bytes).is_err());
}
