//! The deterministic chaos suite: seeded fault schedules (worker kills,
//! stalls, slow workers, callback panics) injected into the sharded
//! work-stealing engine must never change what a run produces — outcome
//! vectors and failure coordinates stay byte-identical to a clean
//! single-threaded run, no task is lost, and queue occupancy stays
//! under the configured bound. The schedules are replayable (Lcg64 by
//! task index), so every failure here is reproducible from its seed.

use evalcore::results::forecast_csv;
use evalcore::scenario::ScenarioError;
use evalcore::sched::{ChaosEvent, ChaosSchedule};
use evalcore::{Engine, ForecastTask, GridConfig, GridContext, GridTask, TaskCoord, TaskOutcome};
use forecast::model::ModelKind;
use proptest::prelude::*;
use tsdata::datasets::{DatasetKind, ALL_DATASETS};

/// A cheap deterministic task whose coordinates cycle through all
/// datasets (so shard keys vary) and whose behaviour is scripted by
/// index: most succeed, some fail, some panic.
struct CheapTask {
    index: usize,
}

impl CheapTask {
    fn many(n: usize) -> Vec<CheapTask> {
        (0..n).map(|index| CheapTask { index }).collect()
    }
}

impl GridTask for CheapTask {
    type Output = u64;

    fn coord(&self) -> TaskCoord {
        TaskCoord {
            seed: Some(self.index as u64),
            ..TaskCoord::dataset(ALL_DATASETS[self.index % ALL_DATASETS.len()])
        }
    }

    fn run(&self, _ctx: &GridContext) -> Result<u64, ScenarioError> {
        match self.index % 11 {
            3 => Err(ScenarioError::NoWindows),
            7 => panic!("scripted task panic at {}", self.index),
            _ => Ok((self.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

fn cheap_ctx() -> GridContext {
    GridContext::new(GridConfig::smoke())
}

fn outcome_strings<R: std::fmt::Debug>(outcomes: &[TaskOutcome<R>]) -> Vec<String> {
    outcomes.iter().map(|o| format!("{o:?}")).collect()
}

/// Coordinates of every non-Ok task, in task order — the "which cells
/// failed" view a grid report surfaces.
fn failure_coords<T: GridTask>(tasks: &[T], outcomes: &[TaskOutcome<T::Output>]) -> Vec<String> {
    tasks
        .iter()
        .zip(outcomes)
        .filter(|(_, o)| !o.is_ok())
        .map(|(t, _)| t.coord().to_string())
        .collect()
}

#[test]
fn seeded_schedule_sweep_preserves_outcomes_and_loses_no_tasks() {
    const N: usize = 300;
    let ctx = cheap_ctx();
    let tasks = CheapTask::many(N);
    let clean = outcome_strings(&Engine::new(&ctx).threads(1).shards(1).run(&tasks));

    let mut total_events = 0usize;
    let mut total_kills = 0u64;
    for seed in [0xC4A05u64, 7, 2024, 0xDEAD_BEEF] {
        for (threads, shards) in [(2, 2), (4, 3), (8, 8)] {
            let schedule = ChaosSchedule::seeded(seed, N, 30);
            total_events += schedule.len();
            let (outcomes, stats) = Engine::new(&ctx)
                .threads(threads)
                .shards(shards)
                .chaos_schedule(schedule)
                .run_with_stats(&tasks);
            assert_eq!(outcomes.len(), N, "zero lost tasks (seed {seed}, {threads}t/{shards}s)");
            assert_eq!(
                outcome_strings(&outcomes),
                clean,
                "chaos run must be byte-identical to the clean run \
                 (seed {seed}, {threads} threads, {shards} shards)"
            );
            assert_eq!(stats.requeued, stats.worker_deaths, "every killed task was requeued");
            total_kills += stats.worker_deaths;
        }
    }
    assert!(total_events >= 1_000, "sweep must script ≥1k events, got {total_events}");
    assert!(total_kills >= 1, "the sweep must actually kill workers");
}

#[test]
fn every_chaos_event_kind_leaves_a_real_grid_csv_byte_identical() {
    // A real forecast grid (2 datasets × GBoost × 2 seeds = 4 tasks)
    // with one event of each kind scripted onto its four tasks: the
    // produced CSV must match the clean single-thread run exactly.
    let mut cfg = GridConfig::smoke();
    cfg.datasets = vec![DatasetKind::ETTm1, DatasetKind::ETTm2];
    cfg.models = vec![ModelKind::GBoost];
    cfg.seeds_simple = 2;
    let tasks = ForecastTask::enumerate(&cfg);
    assert_eq!(tasks.len(), 4);

    let clean_csv = {
        let ctx = GridContext::new(cfg.clone());
        let report = Engine::new(&ctx).threads(1).run_report(&tasks);
        assert!(report.failures.is_empty());
        forecast_csv(&report.records.into_iter().flatten().collect::<Vec<_>>())
    };

    let schedule = ChaosSchedule::scripted([
        (0, ChaosEvent::Kill),
        (1, ChaosEvent::StallMs(3)),
        (2, ChaosEvent::SlowMs(3)),
        (3, ChaosEvent::CallbackPanic),
    ]);
    let ctx = GridContext::new(cfg.clone());
    let engine = Engine::new(&ctx).threads(4).shards(3).chaos_schedule(schedule);
    let (outcomes, stats) = engine.run_with_stats(&tasks);
    assert!(outcomes.iter().all(|o| o.is_ok()), "chaos must not fail grid tasks");
    assert_eq!(stats.worker_deaths, 1);
    assert_eq!(stats.callback_panics, 1);
    let records: Vec<_> = outcomes.into_iter().filter_map(TaskOutcome::ok).flatten().collect();
    assert_eq!(forecast_csv(&records), clean_csv, "chaos CSV must match the clean CSV");
}

#[test]
fn config_chaos_seed_threads_through_engine_new() {
    // GridConfig::chaos_seed (the `repro --chaos SEED` path) must reach
    // the engine and still produce identical outputs.
    let ctx = cheap_ctx();
    let tasks = CheapTask::many(80);
    let clean = outcome_strings(&Engine::new(&ctx).threads(1).shards(1).run(&tasks));
    let mut cfg = GridConfig::smoke();
    cfg.chaos_seed = Some(41);
    cfg.threads = 4;
    let chaos_ctx = GridContext::new(cfg);
    assert!(!ChaosSchedule::seeded(41, 80, 20).is_empty(), "seed 41 schedules events");
    let outcomes = Engine::new(&chaos_ctx).run(&tasks);
    assert_eq!(outcome_strings(&outcomes), clean);
}

#[test]
fn slow_worker_schedule_keeps_queue_occupancy_bounded() {
    // Every fourth task slows its worker, so the submitter outruns the
    // pool and leans on backpressure: peak occupancy must stay under
    // shards × capacity while every task still runs.
    const N: usize = 200;
    let ctx = cheap_ctx();
    let tasks = CheapTask::many(N);
    let schedule = ChaosSchedule::scripted((0..N).step_by(4).map(|i| (i, ChaosEvent::SlowMs(1))));
    let (shards, capacity) = (2, 4);
    let (outcomes, stats) = Engine::new(&ctx)
        .threads(2)
        .shards(shards)
        .queue_capacity(capacity)
        .chaos_schedule(schedule)
        .run_with_stats(&tasks);
    assert_eq!(outcomes.len(), N);
    assert!(
        stats.peak_queue_depth <= shards * capacity,
        "peak occupancy {} exceeds the bound {}",
        stats.peak_queue_depth,
        shards * capacity
    );
    assert!(stats.peak_queue_depth >= 1, "the sampled peak must observe queued work");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same chaos seed ⇒ identical outcome vector and identical failure
    /// coordinates, across 1/2/8 threads and several shard counts.
    #[test]
    fn chaos_runs_are_deterministic_across_geometries(
        seed in any::<u64>(),
        intensity in 0usize..50,
    ) {
        const N: usize = 60;
        let ctx = cheap_ctx();
        let tasks = CheapTask::many(N);
        let mut reference: Option<(Vec<String>, Vec<String>)> = None;
        for (threads, shards) in [(1usize, 1usize), (2, 3), (8, 4)] {
            let (outcomes, _) = Engine::new(&ctx)
                .threads(threads)
                .shards(shards)
                .chaos_schedule(ChaosSchedule::seeded(seed, N, intensity))
                .run_with_stats(&tasks);
            prop_assert_eq!(outcomes.len(), N);
            let view = (outcome_strings(&outcomes), failure_coords(&tasks, &outcomes));
            match &reference {
                None => reference = Some(view),
                Some(first) => {
                    prop_assert_eq!(&view.0, &first.0, "outcomes ({} threads)", threads);
                    prop_assert_eq!(&view.1, &first.1, "failure coords ({} threads)", threads);
                }
            }
        }
    }
}
