//! Fault-injection tests for the task engine: a panicking task and a
//! failing task on a real forecast grid must surface as structured
//! failures at exactly their coordinates while every other task still
//! produces records, and the assembled outcome must be byte-identical
//! across thread counts.

use evalcore::results::forecast_csv;
use evalcore::scenario::ScenarioError;
use evalcore::{Engine, ForecastTask, GridConfig, GridContext, GridTask, TaskCoord, TaskFailure};
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;

#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    Fail,
    Panic,
}

/// A forecast task with an optional injected fault.
struct FaultyTask {
    inner: ForecastTask,
    fault: Fault,
}

impl GridTask for FaultyTask {
    type Output = Vec<evalcore::ForecastRecord>;

    fn coord(&self) -> TaskCoord {
        self.inner.coord()
    }

    fn run(&self, ctx: &GridContext) -> Result<Self::Output, ScenarioError> {
        match self.fault {
            Fault::Panic => panic!("injected panic"),
            Fault::Fail => Err(ScenarioError::NoWindows),
            Fault::None => self.inner.run(ctx),
        }
    }
}

/// A small real grid: 2 datasets x 1 model x 2 seeds = 4 tasks.
fn config() -> GridConfig {
    let mut cfg = GridConfig::smoke();
    cfg.datasets = vec![DatasetKind::ETTm1, DatasetKind::ETTm2];
    cfg.models = vec![ModelKind::GBoost];
    cfg.seeds_simple = 2;
    cfg
}

fn faulty_tasks(cfg: &GridConfig) -> Vec<FaultyTask> {
    let tasks = ForecastTask::enumerate(cfg);
    assert_eq!(tasks.len(), 4, "grid shape");
    tasks
        .into_iter()
        .enumerate()
        .map(|(i, inner)| {
            let fault = match i {
                1 => Fault::Fail,
                2 => Fault::Panic,
                _ => Fault::None,
            };
            FaultyTask { inner, fault }
        })
        .collect()
}

#[test]
fn injected_faults_hit_exactly_their_coordinates() {
    let cfg = config();
    let ctx = GridContext::new(cfg.clone());
    let tasks = faulty_tasks(&cfg);
    let report = Engine::new(&ctx).run_report(&tasks);

    // Exactly the injected coordinates fail, in task order.
    assert_eq!(report.failures.len(), 2);
    let failed: &TaskFailure = &report.failures[0];
    assert_eq!(failed.coord, tasks[1].coord());
    assert!(!failed.panicked);
    assert!(failed.error.contains("no evaluation windows"), "{}", failed.error);
    let panicked: &TaskFailure = &report.failures[1];
    assert_eq!(panicked.coord, tasks[2].coord());
    assert!(panicked.panicked);
    assert!(panicked.error.contains("injected panic"), "{}", panicked.error);

    // Every other task produced a full record batch: baseline plus one
    // record per (method, eps).
    assert_eq!(report.records.len(), 2);
    let per_task = 1 + cfg.methods.len() * cfg.error_bounds.len();
    for (batch, task) in report.records.iter().zip([&tasks[0], &tasks[3]]) {
        assert_eq!(batch.len(), per_task);
        assert!(batch.iter().all(|r| r.dataset == task.inner.dataset));
        assert!(batch.iter().all(|r| r.seed == task.inner.seed));
    }
}

#[test]
fn panicking_progress_callback_does_not_abort_a_real_grid() {
    // Regression for the on_done escape: the progress callback used to
    // run outside the worker's catch_unwind, so one panicking callback
    // unwound the worker and the engine aborted through the scope join.
    // On a real forecast grid the run must now complete with every
    // record intact and the panic merely counted.
    let cfg = config();
    let ctx = GridContext::new(cfg.clone());
    let tasks = ForecastTask::enumerate(&cfg);
    let (outcomes, stats) = Engine::new(&ctx)
        .threads(2)
        .on_task_done(|ev| {
            if ev.index == 1 {
                panic!("scripted callback panic at task {}", ev.index);
            }
        })
        .run_with_stats(&tasks);
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes.iter().all(|o| o.is_ok()), "all grid tasks still succeed");
    assert_eq!(stats.callback_panics, 1);
}

#[test]
fn outcomes_identical_across_thread_counts() {
    let cfg = config();
    let tasks = faulty_tasks(&cfg);

    let run_with = |threads: usize| {
        let ctx = GridContext::new(cfg.clone());
        let report = Engine::new(&ctx).threads(threads).run_report(&tasks);
        let records: Vec<_> = report.records.into_iter().flatten().collect();
        let failures: Vec<(String, String, bool)> = report
            .failures
            .iter()
            .map(|f| (f.coord.to_string(), f.error.clone(), f.panicked))
            .collect();
        (forecast_csv(&records), failures)
    };

    let (csv1, fail1) = run_with(1);
    let (csv4, fail4) = run_with(4);
    assert_eq!(csv1, csv4, "records must assemble identically for any thread count");
    assert_eq!(fail1, fail4, "failures must assemble identically for any thread count");
    assert!(csv1.lines().count() > 1, "sanity: surviving tasks produced records");
}
