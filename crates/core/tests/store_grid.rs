//! Store-backed grid runs must be indistinguishable from legacy in-memory
//! runs: same records, byte-identical CSVs, and one staging ingest per
//! `(dataset, subset)` regardless of how many transforms the grid asks
//! for. This is the Rust-level twin of the CI store-smoke job, which
//! `cmp`s full repro CSV outputs across the two modes.

use evalcore::cache::{GridContext, Subset};
use evalcore::grid::{run_compression_grid_ctx, run_forecast_grid_ctx, GridConfig};
use evalcore::results::{compression_csv, forecast_csv};
use forecast::model::ModelKind;

fn config(store_backed: bool) -> GridConfig {
    let mut cfg = GridConfig::smoke();
    cfg.models = vec![ModelKind::GBoost];
    cfg.store_backed = store_backed;
    cfg
}

#[test]
fn store_backed_compression_grid_is_byte_identical() {
    let legacy = run_compression_grid_ctx(&GridContext::new(config(false)));
    let stored = run_compression_grid_ctx(&GridContext::new(config(true)));
    assert_eq!(compression_csv(&legacy), compression_csv(&stored));
}

#[test]
fn store_backed_forecast_grid_is_byte_identical() {
    let legacy_ctx = GridContext::new(config(false));
    let stored_ctx = GridContext::new(config(true));
    assert!(legacy_ctx.store_backend().is_none());

    let legacy = run_forecast_grid_ctx(&legacy_ctx);
    let stored = run_forecast_grid_ctx(&stored_ctx);
    assert_eq!(forecast_csv(&legacy), forecast_csv(&stored));

    // The grid transformed (methods × bounds) combinations of the test
    // subset, but staged it into the store exactly once.
    let backend = stored_ctx.store_backend().expect("store-backed context");
    let cfg = stored_ctx.config.clone();
    assert!(stored_ctx.transforms.misses() >= cfg.methods.len() * cfg.error_bounds.len());
    let channels = 1; // smoke config pins channels = 1
    assert_eq!(backend.store().num_series(), channels);
    let id = evalcore::storeback::series_id(cfg.datasets[0], Subset::Test, 0);
    assert!(backend.store().series_len(id).unwrap() > 0);
}
