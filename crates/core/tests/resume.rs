//! End-to-end checkpoint/resume tests: a forecast grid pointed at an
//! artifact store fits every model once, and a second run over the same
//! store loads every fit back instead of retraining — with byte-identical
//! assembled results. A damaged store must degrade to a refit, never to a
//! failed run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use evalcore::results::forecast_csv;
use evalcore::{Engine, ForecastTask, GridConfig, GridContext, RetrainTask};
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;

fn temp_store(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "resume-test-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small real grid: 2 datasets x 2 models x 1 seed = 4 fits.
fn config(store: &Path) -> GridConfig {
    let mut cfg = GridConfig::smoke();
    cfg.datasets = vec![DatasetKind::ETTm1, DatasetKind::ETTm2];
    cfg.models = vec![ModelKind::GBoost, ModelKind::DLinear];
    cfg.seeds_simple = 1;
    cfg.seeds_deep = 1;
    cfg.artifacts = Some(store.to_path_buf());
    cfg
}

fn run_grid(cfg: &GridConfig) -> (String, (usize, usize)) {
    let ctx = GridContext::new(cfg.clone());
    let tasks = ForecastTask::enumerate(cfg);
    let report = Engine::new(&ctx).run_report(&tasks);
    assert!(report.failures.is_empty(), "grid must succeed: {:?}", report.failures);
    let records: Vec<_> = report.records.into_iter().flatten().collect();
    (forecast_csv(&records), ctx.fit_counts())
}

#[test]
fn second_run_loads_every_fit_and_reproduces_records() {
    let store = temp_store("grid");
    let cfg = config(&store);

    let (cold_csv, (cold_loaded, cold_fitted)) = run_grid(&cfg);
    assert_eq!(cold_loaded, 0, "an empty store has nothing to load");
    assert_eq!(cold_fitted, 4, "every grid cell fits once");

    let (warm_csv, (warm_loaded, warm_fitted)) = run_grid(&cfg);
    assert_eq!(warm_fitted, 0, "a resumed run must refit nothing");
    assert_eq!(warm_loaded, 4, "every fit comes back from the store");
    assert_eq!(cold_csv, warm_csv, "loaded models must reproduce records byte-identically");

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn config_change_invalidates_the_checkpoint() {
    let store = temp_store("key");
    let cfg = config(&store);
    let (_, (_, cold_fitted)) = run_grid(&cfg);
    assert_eq!(cold_fitted, 4);

    // A different data seed is a different experiment: nothing may be
    // reused from the store even though model/dataset names match.
    let mut other = cfg.clone();
    other.data_seed += 1;
    let (_, (other_loaded, other_fitted)) = run_grid(&other);
    assert_eq!(other_loaded, 0, "a changed config must miss the store");
    assert_eq!(other_fitted, 4);

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn corrupt_artifacts_degrade_to_a_refit() {
    let store = temp_store("corrupt");
    let cfg = config(&store);
    let (cold_csv, (_, cold_fitted)) = run_grid(&cfg);
    assert_eq!(cold_fitted, 4);

    // Flip a payload byte in every stored artifact: the checksum (or the
    // decoder) must reject each file and the run must refit instead of
    // failing or silently loading damaged weights.
    let mut corrupted = 0;
    for entry in walk(&store) {
        let mut bytes = std::fs::read(&entry).expect("artifact reads");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&entry, bytes).expect("artifact rewrites");
        corrupted += 1;
    }
    assert_eq!(corrupted, 4, "one artifact per grid cell");

    let (warm_csv, (warm_loaded, warm_fitted)) = run_grid(&cfg);
    assert_eq!(warm_loaded, 0, "corrupt artifacts must not load");
    assert_eq!(warm_fitted, 4, "every cell falls back to fitting");
    assert_eq!(cold_csv, warm_csv, "refit results match the original run");

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn truncated_artifacts_degrade_to_a_refit() {
    let store = temp_store("truncated");
    let cfg = config(&store);
    let (cold_csv, (_, cold_fitted)) = run_grid(&cfg);
    assert_eq!(cold_fitted, 4);

    // Cut each artifact mid-body (a torn write): the header length check
    // must reject every file and the run must refit, never panic or load
    // a partial state dict.
    let mut truncated = 0;
    for entry in walk(&store) {
        let bytes = std::fs::read(&entry).expect("artifact reads");
        std::fs::write(&entry, &bytes[..bytes.len() * 2 / 3]).expect("artifact rewrites");
        truncated += 1;
    }
    assert_eq!(truncated, 4, "one artifact per grid cell");

    let (warm_csv, (warm_loaded, warm_fitted)) = run_grid(&cfg);
    assert_eq!(warm_loaded, 0, "truncated artifacts must not load");
    assert_eq!(warm_fitted, 4, "every cell falls back to fitting");
    assert_eq!(cold_csv, warm_csv, "refit results match the original run");

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn retrain_grid_resumes_and_shares_the_baseline_fit() {
    let store = temp_store("retrain");
    let mut cfg = config(&store);
    cfg.datasets = vec![DatasetKind::ETTm1];
    cfg.models = vec![ModelKind::GBoost];
    cfg.error_bounds = vec![0.1, 0.4];

    // Cold: the baseline fit plus one retrained model per (method, eps).
    let per_task_fits = 1 + cfg.methods.len() * cfg.error_bounds.len();
    let ctx = GridContext::new(cfg.clone());
    let tasks = RetrainTask::enumerate(&cfg);
    assert_eq!(tasks.len(), 1);
    let report = Engine::new(&ctx).run_report(&tasks);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    let cold_records: Vec<_> = report.records.into_iter().flatten().collect();
    assert_eq!(ctx.fit_counts(), (0, per_task_fits));

    // Warm: everything loads, including the baseline shared with the
    // forecast grid's artifact key.
    let ctx2 = GridContext::new(cfg.clone());
    let report2 = Engine::new(&ctx2).run_report(&tasks);
    assert!(report2.failures.is_empty(), "{:?}", report2.failures);
    let warm_records: Vec<_> = report2.records.into_iter().flatten().collect();
    assert_eq!(ctx2.fit_counts(), (per_task_fits, 0));
    assert_eq!(forecast_csv(&cold_records), forecast_csv(&warm_records));

    // The forecast grid reuses the retrain grid's raw baseline artifact.
    let ctx3 = GridContext::new(cfg.clone());
    let forecast_tasks = ForecastTask::enumerate(&cfg);
    assert_eq!(forecast_tasks.len(), 1);
    let report3 = Engine::new(&ctx3).run_report(&forecast_tasks);
    assert!(report3.failures.is_empty(), "{:?}", report3.failures);
    assert_eq!(ctx3.fit_counts(), (1, 0), "baseline fit is shared across grids");

    let _ = std::fs::remove_dir_all(&store);
}

/// Recursively lists the artifact payload (`.state`) files under the
/// store root, skipping the `.key` manifest sidecars that live next to
/// them.
fn walk(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("store dir reads") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("state") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}
