//! Property tests for the transform cache: a cached transform must be
//! bit-identical to calling `compressor.transform` directly, for any
//! series, method, and error bound.

use std::sync::Arc;

use compression::ALL_METHODS;
use evalcore::cache::{transform_with_stats, Subset, TransformCache, TransformKey};
use evalcore::scenario::transform_series;
use proptest::prelude::*;
use tsdata::datasets::DatasetKind;
use tsdata::series::{MultiSeries, RegularTimeSeries};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_transform_bit_identical_to_direct(
        vals in prop::collection::vec(-50.0..50.0f64, 40..250),
        eps in 0.0..0.6f64,
        midx in 0usize..3,
    ) {
        let method = ALL_METHODS[midx];
        let series = MultiSeries::univariate(
            "y",
            RegularTimeSeries::new(0, 60, vals).expect("non-empty values"),
        );

        let direct = transform_series(&series, method.compressor().as_ref(), eps)
            .expect("lossy methods are total on finite data");

        let cache = TransformCache::new();
        let key = TransformKey::new(DatasetKind::ETTm1, Subset::Test, method, eps);
        let cached = cache
            .get_or_compute(key, || {
                transform_with_stats(&series, method.compressor().as_ref(), eps)
            })
            .expect("same transform succeeds");

        // Bit-identical series: the cache stores exactly what the codec
        // produced, with no re-quantization on the way in or out.
        prop_assert_eq!(cached.series.target().values(), direct.target().values());
        prop_assert!(cached.stats.size_bytes > 0);
        prop_assert!(cached.stats.num_segments > 0);

        // A second lookup is a hit and returns the same allocation.
        let again = cache
            .get_or_compute(key, || panic!("cached key must not recompute"))
            .expect("hit");
        prop_assert!(Arc::ptr_eq(&again.series, &cached.series));
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);
    }
}
