//! Compression advisor — the paper's §5 direction made concrete: "ML
//! models designed to predict the impact of lossy time series compression
//! on various analytical tasks ... can guide the selection or optimization
//! of compression methods based on the expected impact on analytical
//! outcomes."
//!
//! [`CompressionAdvisor`] trains the same GBoost TFE-predictor the paper
//! uses for its SHAP analysis (characteristic differences → TFE) on an
//! evaluated grid, and then, for a *new* series, predicts the TFE of every
//! `(method, ε)` candidate and recommends the one with the highest
//! compression ratio whose predicted TFE stays within a budget.

use analysis::features::{extract, FeatureOptions, NUM_FEATURES};
use compression::{raw_compressed_size, Method};
use forecast::gboost::{GbmConfig, GbmRegressor};
use tsdata::metrics::compression_ratio;
use tsdata::series::RegularTimeSeries;

use crate::experiments::characteristics_exp::CharacteristicsExperiment;

/// A `(method, ε)` recommendation with its predicted impact.
#[derive(Debug, Clone, Copy)]
pub struct Recommendation {
    /// Recommended method.
    pub method: Method,
    /// Recommended error bound.
    pub epsilon: f64,
    /// Predicted TFE (fraction; 0.05 = 5% accuracy loss).
    pub predicted_tfe: f64,
    /// Measured compression ratio on the probe series.
    pub cr: f64,
}

/// Errors from advising.
#[derive(Debug)]
pub enum AdvisorError {
    /// Not enough training rows to fit the predictor.
    TooFewRows(usize),
    /// Compression of the probe series failed.
    Codec(compression::CodecError),
}

impl std::fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvisorError::TooFewRows(n) => {
                write!(f, "advisor needs >= 8 grid rows, got {n}")
            }
            AdvisorError::Codec(e) => write!(f, "advisor compression: {e}"),
        }
    }
}

impl std::error::Error for AdvisorError {}

impl From<compression::CodecError> for AdvisorError {
    fn from(e: compression::CodecError) -> Self {
        AdvisorError::Codec(e)
    }
}

/// The trained TFE predictor plus recommendation logic.
pub struct CompressionAdvisor {
    model: GbmRegressor,
    features: FeatureOptions,
}

impl CompressionAdvisor {
    /// Trains on the rows of an evaluated characteristics experiment
    /// (feature differences → mean TFE across models).
    pub fn train(
        experiment: &CharacteristicsExperiment,
        features: FeatureOptions,
    ) -> Result<Self, AdvisorError> {
        let rows = &experiment.rows;
        if rows.len() < 8 {
            return Err(AdvisorError::TooFewRows(rows.len()));
        }
        let mut x = Vec::with_capacity(rows.len() * NUM_FEATURES);
        let mut y = Vec::with_capacity(rows.len());
        for r in rows {
            x.extend_from_slice(&r.diffs);
            y.push(r.tfe);
        }
        let model = GbmRegressor::fit(
            &x,
            &y,
            NUM_FEATURES,
            GbmConfig { n_estimators: 120, ..Default::default() },
        );
        Ok(CompressionAdvisor { model, features })
    }

    /// Predicts the TFE of compressing `series` with `(method, epsilon)`.
    pub fn predict_tfe(
        &self,
        series: &RegularTimeSeries,
        method: Method,
        epsilon: f64,
    ) -> Result<f64, AdvisorError> {
        let original = extract(series.values(), self.features);
        let (decompressed, _) = method.compressor().transform(series, epsilon)?;
        let transformed = extract(decompressed.values(), self.features);
        Ok(self.model.predict(&transformed.diff(&original)))
    }

    /// Scans every `(method, ε)` candidate and returns the one with the
    /// highest CR whose predicted TFE is within `tfe_budget`; `None` when
    /// no candidate fits the budget.
    pub fn recommend(
        &self,
        series: &RegularTimeSeries,
        methods: &[Method],
        error_bounds: &[f64],
        tfe_budget: f64,
    ) -> Result<Option<Recommendation>, AdvisorError> {
        let raw = raw_compressed_size(series);
        let original = extract(series.values(), self.features);
        let mut best: Option<Recommendation> = None;
        for &method in methods {
            let compressor = method.compressor();
            for &epsilon in error_bounds {
                let (decompressed, frame) = compressor.transform(series, epsilon)?;
                let transformed = extract(decompressed.values(), self.features);
                let predicted_tfe = self.model.predict(&transformed.diff(&original));
                if predicted_tfe > tfe_budget {
                    continue;
                }
                let cr = compression_ratio(raw, frame.size_bytes());
                if best.as_ref().is_none_or(|b| cr > b.cr) {
                    best = Some(Recommendation { method, epsilon, predicted_tfe, cr });
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{characteristics_exp, forecasting_exp};
    use crate::grid::GridConfig;
    use forecast::model::ModelKind;
    use tsdata::datasets::{generate_univariate, DatasetKind, GenOptions};

    fn trained_advisor() -> (CompressionAdvisor, GridConfig) {
        let mut cfg = GridConfig::smoke();
        cfg.len = Some(1_600);
        cfg.error_bounds = vec![0.01, 0.05, 0.1, 0.3, 0.6];
        cfg.models = vec![ModelKind::GBoost];
        let exp = forecasting_exp::run(&cfg);
        let chars = characteristics_exp::run(&exp);
        let features = FeatureOptions { period: Some(96), shift_window: 48, cap: Some(4_000) };
        (CompressionAdvisor::train(&chars, features).expect("enough rows"), cfg)
    }

    #[test]
    fn advisor_trains_and_predicts_sensible_magnitudes() {
        let (advisor, _) = trained_advisor();
        let probe = generate_univariate(
            DatasetKind::ETTm1,
            GenOptions { len: Some(1_600), channels: None, seed: 777 },
        );
        let small = advisor.predict_tfe(&probe, Method::Pmc, 0.01).expect("predicts");
        let large = advisor.predict_tfe(&probe, Method::Pmc, 0.6).expect("predicts");
        assert!(small.is_finite() && large.is_finite());
        assert!(
            small < large + 0.1,
            "predicted TFE should not collapse at high eps: {small} vs {large}"
        );
    }

    #[test]
    fn recommendation_respects_budget_and_maximizes_cr() {
        let (advisor, cfg) = trained_advisor();
        let probe = generate_univariate(
            DatasetKind::ETTm1,
            GenOptions { len: Some(1_600), channels: None, seed: 778 },
        );
        let rec = advisor
            .recommend(&probe, &cfg.methods, &cfg.error_bounds, 0.10)
            .expect("runs")
            .expect("a candidate fits a 10% budget");
        assert!(rec.predicted_tfe <= 0.10);
        assert!(rec.cr > 1.0);
        // A looser budget can only improve (or keep) the achievable CR.
        let loose = advisor
            .recommend(&probe, &cfg.methods, &cfg.error_bounds, 0.50)
            .expect("runs")
            .expect("candidates exist");
        assert!(loose.cr >= rec.cr);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let (advisor, cfg) = trained_advisor();
        let probe = generate_univariate(
            DatasetKind::ETTm1,
            GenOptions { len: Some(1_600), channels: None, seed: 779 },
        );
        let rec = advisor.recommend(&probe, &cfg.methods, &cfg.error_bounds, -10.0).expect("runs");
        assert!(rec.is_none(), "a negative TFE budget can never be met");
    }

    #[test]
    fn too_few_rows_rejected() {
        let chars = CharacteristicsExperiment {
            rows: Vec::new(),
            shap_importance: Vec::new(),
            correlations: Vec::new(),
            r2: 0.0,
        };
        let features = FeatureOptions::default();
        assert!(matches!(
            CompressionAdvisor::train(&chars, features),
            Err(AdvisorError::TooFewRows(0))
        ));
    }
}
