//! Figure 1 — PMC, SWING and SZ output on a segment of ETTm1/ETTm2 at
//! error bounds 0.05 and 0.1, compared to the original series. Rendered as
//! value listings plus an ASCII sparkline per curve.

use compression::{Method, ALL_METHODS};
use tsdata::datasets::{generate_univariate, DatasetKind, GenOptions};

use crate::grid::run_parallel;

/// One decompressed curve of the figure.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Method that produced the curve.
    pub method: Method,
    /// Error bound used.
    pub epsilon: f64,
    /// Decompressed values.
    pub values: Vec<f64>,
}

/// The reproduced figure for one dataset.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Source dataset.
    pub dataset: DatasetKind,
    /// Original segment values.
    pub original: Vec<f64>,
    /// Decompressed curves per (method, ε).
    pub curves: Vec<Curve>,
}

/// Extracts a segment and compresses it with every method at the figure's
/// two error bounds.
pub fn run(dataset: DatasetKind, segment_len: usize, seed: u64) -> Fig1 {
    let _span = telemetry::span("experiment.fig1", &[]);
    let series = generate_univariate(
        dataset,
        GenOptions { len: Some(segment_len.max(64) * 4), channels: None, seed },
    );
    let segment =
        series.segment(segment_len, 2 * segment_len).expect("generated series covers the segment");
    // One (method, ε) curve per task, scheduled on the worker pool.
    let cells: Vec<(Method, f64)> =
        ALL_METHODS.iter().flat_map(|&m| [0.05, 0.1].map(|eps| (m, eps))).collect();
    let curves = run_parallel(cells.len(), cells.len(), |i| {
        let (method, epsilon) = cells[i];
        let (d, _) =
            method.compressor().transform(&segment, epsilon).expect("segment compresses cleanly");
        Curve { method, epsilon, values: d.into_values() }
    });
    Fig1 { dataset, original: segment.into_values(), curves }
}

/// Renders a value range as an ASCII sparkline.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: &[char] = &['.', ':', '-', '=', '+', '*', '#', '@'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

impl Fig1 {
    /// Renders the figure as sparklines.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 1: compression output vs original ({}, {} points)\n",
            self.dataset.name(),
            self.original.len()
        );
        out.push_str(&format!("{:>14}  {}\n", "OR", sparkline(&self.original)));
        for c in &self.curves {
            out.push_str(&format!(
                "{:>14}  {}\n",
                format!("{}@{}", c.method.name(), c.epsilon),
                sparkline(&c.values)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::metrics::rmse;

    #[test]
    fn produces_six_curves_within_bounds() {
        let fig = run(DatasetKind::ETTm1, 128, 3);
        assert_eq!(fig.curves.len(), 6);
        for c in &fig.curves {
            assert_eq!(c.values.len(), fig.original.len());
            assert!(
                compression::find_bound_violation(&fig.original, &c.values, c.epsilon, 1e-9)
                    .is_none(),
                "{}@{} violates bound",
                c.method.name(),
                c.epsilon
            );
        }
    }

    #[test]
    fn higher_epsilon_deviates_more() {
        let fig = run(DatasetKind::ETTm2, 128, 4);
        for method in ALL_METHODS {
            let at = |eps: f64| {
                let c = fig
                    .curves
                    .iter()
                    .find(|c| c.method == method && c.epsilon == eps)
                    .expect("curve exists");
                rmse(&fig.original, &c.values)
            };
            assert!(at(0.1) >= at(0.05) * 0.5, "{}: unexpected TE inversion", method.name());
        }
    }

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(s.len(), 3);
        assert!(s.starts_with('.'));
        assert!(s.contains('@'));
    }

    #[test]
    fn render_mentions_all_methods() {
        let s = run(DatasetKind::ETTm1, 96, 5).render();
        for m in ["PMC", "SWING", "SZ", "OR"] {
            assert!(s.contains(m));
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = run(DatasetKind::ETTm1, 96, 9);
        let b = run(DatasetKind::ETTm1, 96, 9);
        assert_eq!(a.original, b.original);
    }
}
