//! Table 5 — inflection-point ("elbow") analysis (§4.3.2): for every
//! (dataset, method, model), Kneedle locates the TE at which TFE starts
//! rising rapidly; the table reports the median EB/TE/CR/TFE at the elbow
//! across models, plus the average over datasets.

use analysis::kneedle::{kneedle, Shape};
use compression::Method;
use tsdata::datasets::DatasetKind;

use super::fmt::{f, TextTable};
use super::forecasting_exp::ForecastExperiment;
use crate::results::median;

/// Elbow metrics for one (dataset, method): medians across models.
#[derive(Debug, Clone, Copy)]
pub struct ElbowCell {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Method.
    pub method: Method,
    /// Median error bound at the elbow.
    pub eb: f64,
    /// Median TE at the elbow.
    pub te: f64,
    /// Median CR at the elbow.
    pub cr: f64,
    /// Median TFE at the elbow.
    pub tfe: f64,
}

/// The Table-5 reproduction.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Cells per (dataset, method).
    pub cells: Vec<ElbowCell>,
}

/// Locates elbows on the TFE-vs-TE curves of an evaluated grid.
pub fn run(exp: &ForecastExperiment) -> Table5 {
    let _span = telemetry::span("experiment.elbows", &[]);
    let mut cells = Vec::new();
    for &dataset in &exp.config.datasets {
        for &method in &exp.config.methods {
            let mut ebs = Vec::new();
            let mut tes = Vec::new();
            let mut crs = Vec::new();
            let mut tfes = Vec::new();
            for &model in &exp.config.models {
                // Build the (TE, TFE) curve over error bounds.
                let mut curve: Vec<(f64, f64, f64)> = exp
                    .config
                    .error_bounds
                    .iter()
                    .filter_map(|&e| {
                        let te = exp.te_of(dataset, method, e)?;
                        let tfe = exp.tfe_of(dataset, model, method, e)?;
                        Some((e, te, tfe))
                    })
                    .collect();
                curve.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite TE"));
                curve.dedup_by(|a, b| (a.1 - b.1).abs() < 1e-12);
                if curve.len() < 3 {
                    continue;
                }
                let xs: Vec<f64> = curve.iter().map(|c| c.1).collect();
                let ys: Vec<f64> = curve.iter().map(|c| c.2).collect();
                let Some(k) = kneedle(&xs, &ys, Shape::ConvexIncreasing, 1.0) else {
                    continue;
                };
                let (eb, te, tfe) = curve[k];
                ebs.push(eb);
                tes.push(te);
                tfes.push(tfe);
                if let Some(cr) = exp.cr_of(dataset, method, eb) {
                    crs.push(cr);
                }
            }
            if ebs.is_empty() {
                continue;
            }
            cells.push(ElbowCell {
                dataset,
                method,
                eb: median(&ebs),
                te: median(&tes),
                cr: median(&crs),
                tfe: median(&tfes),
            });
        }
    }
    Table5 { cells }
}

impl Table5 {
    /// Per-method averages across datasets (the paper's AVG column).
    pub fn averages(&self) -> Vec<(Method, f64, f64, f64, f64)> {
        let methods: Vec<Method> = {
            let mut ms: Vec<Method> = self.cells.iter().map(|c| c.method).collect();
            ms.dedup();
            let mut unique = Vec::new();
            for m in ms {
                if !unique.contains(&m) {
                    unique.push(m);
                }
            }
            unique
        };
        methods
            .into_iter()
            .map(|m| {
                let group: Vec<&ElbowCell> = self.cells.iter().filter(|c| c.method == m).collect();
                let n = group.len() as f64;
                (
                    m,
                    group.iter().map(|c| c.eb).sum::<f64>() / n,
                    group.iter().map(|c| c.te).sum::<f64>() / n,
                    group.iter().map(|c| c.cr).sum::<f64>() / n,
                    group.iter().map(|c| c.tfe).sum::<f64>() / n,
                )
            })
            .collect()
    }

    /// Per-dataset elbow EB caps for Figure 6 (mean over methods).
    pub fn eb_caps(&self) -> Vec<(DatasetKind, f64)> {
        let mut datasets: Vec<DatasetKind> = Vec::new();
        for c in &self.cells {
            if !datasets.contains(&c.dataset) {
                datasets.push(c.dataset);
            }
        }
        datasets
            .into_iter()
            .map(|d| {
                let ebs: Vec<f64> =
                    self.cells.iter().filter(|c| c.dataset == d).map(|c| c.eb).collect();
                (d, ebs.iter().sum::<f64>() / ebs.len() as f64)
            })
            .collect()
    }

    /// Renders the table with the AVG column.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Method", "Dataset", "EB", "TE", "CR", "TFE"]);
        for c in &self.cells {
            t.row(vec![
                c.method.name().to_string(),
                c.dataset.name().to_string(),
                f(c.eb, 2),
                f(c.te, 3),
                f(c.cr, 1),
                f(c.tfe, 3),
            ]);
        }
        let mut out = format!("Table 5: elbows' median EB, TE, CR and TFE\n{}", t.render());
        out.push_str("\nAverages across datasets:\n");
        for (m, eb, te, cr, tfe) in self.averages() {
            out.push_str(&format!(
                "  {:<6} EB={} TE={} CR={} TFE={}\n",
                m.name(),
                f(eb, 2),
                f(te, 3),
                f(cr, 2),
                f(tfe, 3)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use forecast::model::ModelKind;

    #[test]
    fn elbows_found_on_smoke_grid() {
        let mut cfg = GridConfig::smoke();
        cfg.error_bounds = vec![0.01, 0.05, 0.1, 0.2, 0.4, 0.8];
        cfg.models = vec![ModelKind::GBoost];
        let exp = super::super::forecasting_exp::run(&cfg);
        let t5 = run(&exp);
        assert!(!t5.cells.is_empty(), "no elbows detected");
        for c in &t5.cells {
            assert!(c.eb > 0.0 && c.eb <= 0.8);
            assert!(c.cr > 0.0);
        }
        let avg = t5.averages();
        assert!(!avg.is_empty());
        let caps = t5.eb_caps();
        assert_eq!(caps.len(), 1);
        assert!(t5.render().contains("Table 5"));
    }
}
