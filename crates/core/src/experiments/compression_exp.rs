//! Figure 2 (TE and CR per error bound, with the GORILLA baseline),
//! Figure 3 (segment counts), and Table 3 (linear regression CR = θ1·TE +
//! θ0 with standard errors) — the RQ1 experiments.

use analysis::regress::{linear_fit, LinFit};
use compression::Method;
use tsdata::datasets::DatasetKind;

use super::fmt::{f, TextTable};
use crate::cache::GridContext;
use crate::engine::Engine;
use crate::grid::GridConfig;
use crate::results::{failure_summary, CompressionRecord, TaskFailure};

/// The combined RQ1 experiment output.
#[derive(Debug, Clone)]
pub struct CompressionExperiment {
    /// Per-cell measurements (Figures 2 and 3).
    pub records: Vec<CompressionRecord>,
    /// Gorilla CR per dataset (Figure 2 baseline).
    pub gorilla: Vec<(DatasetKind, f64)>,
    /// Table 3 regressions per (dataset, method).
    pub regressions: Vec<(DatasetKind, Method, LinFit)>,
    /// Grid cells that failed or panicked (the renders note them).
    pub failures: Vec<TaskFailure>,
}

/// Runs the compression grid through the task engine and fits the
/// Table-3 regressions. Both the grid and the Gorilla baseline draw
/// datasets from one shared [`GridContext`], so each dataset is
/// generated exactly once; failed cells are recorded, not fatal.
pub fn run(config: &GridConfig) -> CompressionExperiment {
    let _span = telemetry::span("experiment.compression", &[]);
    let ctx = GridContext::new(config.clone());
    let engine = Engine::new(&ctx);
    let grid_report = engine.compression_report();
    let gorilla_report = engine.gorilla_report();
    let records = grid_report.records;
    let gorilla = gorilla_report.records;
    let mut failures = grid_report.failures;
    failures.extend(gorilla_report.failures);
    let mut regressions = Vec::new();
    for &dataset in &config.datasets {
        for &method in &config.methods {
            let cells: Vec<&CompressionRecord> =
                records.iter().filter(|r| r.dataset == dataset && r.method == method).collect();
            if cells.len() < 3 {
                continue;
            }
            let te: Vec<f64> = cells.iter().map(|c| c.te_nrmse).collect();
            let cr: Vec<f64> = cells.iter().map(|c| c.cr).collect();
            if let Ok(fit) = linear_fit(&te, &cr) {
                regressions.push((dataset, method, fit));
            }
        }
    }
    CompressionExperiment { records, gorilla, regressions, failures }
}

impl CompressionExperiment {
    /// A partial-grid note listing failed cells, or the empty string.
    pub fn failure_note(&self) -> String {
        match failure_summary(&self.failures) {
            Some(s) => format!("\nPartial grid: {s}\n"),
            None => String::new(),
        }
    }

    /// Figure 2: TE (NRMSE) and CR per error bound per method per dataset.
    pub fn render_fig2(&self) -> String {
        let mut t = TextTable::new(&["Dataset", "Method", "EB", "TE(NRMSE)", "CR"]);
        for r in &self.records {
            t.row(vec![
                r.dataset.name().to_string(),
                r.method.name().to_string(),
                f(r.epsilon, 2),
                f(r.te_nrmse, 4),
                f(r.cr, 2),
            ]);
        }
        let mut out = format!("Figure 2: TE and CR per error bound\n{}", t.render());
        out.push_str("\nGORILLA CR baseline per dataset:\n");
        for (d, cr) in &self.gorilla {
            out.push_str(&format!("  {:<8} {}\n", d.name(), f(*cr, 2)));
        }
        out.push_str(&self.failure_note());
        out
    }

    /// Figure 3: segment counts per error bound.
    pub fn render_fig3(&self) -> String {
        let mut t = TextTable::new(&["Dataset", "Method", "EB", "Segments"]);
        for r in &self.records {
            t.row(vec![
                r.dataset.name().to_string(),
                r.method.name().to_string(),
                f(r.epsilon, 2),
                r.segments.to_string(),
            ]);
        }
        format!("Figure 3: segment counts per error bound\n{}", t.render())
    }

    /// Table 3: CR = θ1·TE + θ0 coefficients and standard errors.
    pub fn render_table3(&self) -> String {
        let mut t = TextTable::new(&[
            "Dataset",
            "Method",
            "theta1",
            "SE(theta1)",
            "theta0",
            "SE(theta0)",
            "R2",
        ]);
        for (d, m, fit) in &self.regressions {
            t.row(vec![
                d.name().to_string(),
                m.name().to_string(),
                f(fit.slope, 1),
                f(fit.se_slope, 1),
                f(fit.intercept, 2),
                f(fit.se_intercept, 2),
                f(fit.r2, 3),
            ]);
        }
        format!("Table 3: linear regression CR = theta1*TE + theta0\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::datasets::ALL_DATASETS;

    fn cfg() -> GridConfig {
        let mut c = GridConfig::smoke();
        c.datasets = vec![DatasetKind::ETTm1, DatasetKind::Weather, DatasetKind::Solar];
        c.len = Some(3000);
        c.error_bounds = vec![0.01, 0.05, 0.1, 0.2, 0.4, 0.8];
        c
    }

    #[test]
    fn rq1_shape_holds() {
        let exp = run(&cfg());
        // RQ1.2: SZ has the highest CR at the lowest error bound on ETTm1.
        let cr_at = |m: Method, eps: f64, d: DatasetKind| {
            exp.records
                .iter()
                .find(|r| r.method == m && (r.epsilon - eps).abs() < 1e-9 && r.dataset == d)
                .expect("cell exists")
                .cr
        };
        let d = DatasetKind::ETTm1;
        assert!(
            cr_at(Method::Sz, 0.01, d) > cr_at(Method::Swing, 0.01, d),
            "SZ should beat SWING at eps 0.01"
        );
        // PMC beats SWING through the elbow region (paper §4.2; at the
        // extreme eps = 0.8 our smoother synthetic series lets Swing fit
        // very long lines, documented in EXPERIMENTS.md).
        for eps in [0.05, 0.1, 0.2, 0.4] {
            assert!(
                cr_at(Method::Pmc, eps, d) > cr_at(Method::Swing, eps, d),
                "PMC should beat SWING at eps {eps}"
            );
        }
        // Lossy beats Gorilla at moderate bounds.
        let gorilla = exp.gorilla.iter().find(|(g, _)| *g == d).expect("present").1;
        assert!(cr_at(Method::Pmc, 0.2, d) > gorilla);
    }

    #[test]
    fn weather_cr_anomaly() {
        // Paper §4.2: Weather's tiny rIQD yields extreme CRs at small eps;
        // Solar's 200% rIQD keeps CR modest even at 0.8.
        let exp = run(&cfg());
        let cr = |d: DatasetKind, m: Method, eps: f64| {
            exp.records
                .iter()
                .find(|r| r.dataset == d && r.method == m && (r.epsilon - eps).abs() < 1e-9)
                .expect("cell exists")
                .cr
        };
        assert!(
            cr(DatasetKind::Weather, Method::Pmc, 0.2)
                > 4.0 * cr(DatasetKind::Solar, Method::Pmc, 0.2),
            "weather {} vs solar {}",
            cr(DatasetKind::Weather, Method::Pmc, 0.2),
            cr(DatasetKind::Solar, Method::Pmc, 0.2)
        );
    }

    #[test]
    fn table3_slopes_positive_where_relationship_linear() {
        let exp = run(&cfg());
        // On high-rIQD datasets (ETTm1), CR grows with TE.
        let fit = exp
            .regressions
            .iter()
            .find(|(d, m, _)| *d == DatasetKind::ETTm1 && *m == Method::Pmc)
            .map(|(_, _, f)| f)
            .expect("fit exists");
        assert!(fit.slope > 0.0, "slope {}", fit.slope);
    }

    #[test]
    fn renders_contain_all_sections() {
        let mut c = GridConfig::smoke();
        c.len = Some(1200);
        c.error_bounds = vec![0.05, 0.2, 0.5];
        let exp = run(&c);
        assert!(exp.render_fig2().contains("GORILLA"));
        assert!(exp.render_fig3().contains("Segments"));
        assert!(exp.render_table3().contains("theta1"));
        let _ = ALL_DATASETS;
    }
}
