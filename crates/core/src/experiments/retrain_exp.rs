//! Figure 7 and the §4.4.1 decomposition analysis: Arima and DLinear
//! retrained on decompressed ETTm1/ETTm2 data, plus the trend/remainder
//! RMSE comparison that explains DLinear's sensitivity.

use forecast::dlinear::decompose;
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;
use tsdata::metrics::{rmse, tfe};

use super::fmt::{f, TextTable};
use crate::cache::GridContext;
use crate::engine::Engine;
use crate::grid::GridConfig;
use crate::results::{failure_summary, mean, ForecastRecord, TaskFailure};
use tsdata::metrics::MetricSet;

/// One Figure-7 point: TFE of a retrained model.
#[derive(Debug, Clone, Copy)]
pub struct RetrainPoint {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Model.
    pub model: ModelKind,
    /// Method name.
    pub method: &'static str,
    /// Error bound.
    pub epsilon: f64,
    /// TFE of the retrained model vs the raw-trained baseline.
    pub tfe: f64,
}

/// Figure 7 output.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// All evaluated points.
    pub points: Vec<RetrainPoint>,
}

/// Runs the retraining experiment. The paper uses Arima and DLinear on
/// ETTm1 and ETTm2 with error bounds up to ~0.2. Internally this drives
/// the engine's retrain grid, so train/val/test transforms are shared
/// across models through the grid's [`GridContext`] cache (the figure
/// uses a single fit per cell — seed 40).
pub fn run(config: &GridConfig, models: &[ModelKind], error_bounds: &[f64]) -> Fig7 {
    let _span = telemetry::span("experiment.retrain", &[]);
    let mut cfg = config.clone();
    cfg.models = models.to_vec();
    cfg.error_bounds = error_bounds.to_vec();
    cfg.seeds_deep = 1;
    cfg.seeds_simple = 1;
    let ctx = GridContext::new(cfg);
    let records = Engine::new(&ctx).retrain_report().into_records_logged("fig7 retrain grid");

    let baseline = |dataset: DatasetKind, model: ModelKind| {
        records
            .iter()
            .find(|r| r.dataset == dataset && r.model == model && r.method.is_none())
            .map(|r| r.metrics.rmse)
    };
    let mut points = Vec::new();
    for r in &records {
        let Some(method) = r.method else { continue };
        let Some(base) = baseline(r.dataset, r.model) else { continue };
        points.push(RetrainPoint {
            dataset: r.dataset,
            model: r.model,
            method: method.name(),
            epsilon: r.epsilon,
            tfe: tfe(base, r.metrics.rmse),
        });
    }
    Fig7 { points }
}

impl Fig7 {
    /// Mean TFE per (dataset, model, ε), averaged across methods.
    pub fn mean_tfe(&self, dataset: DatasetKind, model: ModelKind, epsilon: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|p| {
                p.dataset == dataset && p.model == model && (p.epsilon - epsilon).abs() < 1e-9
            })
            .map(|p| p.tfe)
            .collect();
        (!vals.is_empty()).then(|| mean(&vals))
    }

    /// Renders the figure data.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Dataset", "Model", "Method", "EB", "TFE"]);
        for p in &self.points {
            t.row(vec![
                p.dataset.name().to_string(),
                p.model.name().to_string(),
                p.method.to_string(),
                f(p.epsilon, 2),
                f(p.tfe, 4),
            ]);
        }
        format!("Figure 7: TFE when training on decompressed data\n{}", t.render())
    }
}

/// The full §4.4.1 retraining grid as an experiment: every configured
/// `(dataset, model, seed, method, ε)` cell retrained on decompressed
/// data, with per-task failures recorded (the `repro` CLI's `retrain`
/// experiment).
#[derive(Debug, Clone)]
pub struct RetrainGrid {
    /// Raw per-seed records (baseline rows have `method: None`).
    pub records: Vec<ForecastRecord>,
    /// Tasks that failed or panicked.
    pub failures: Vec<TaskFailure>,
}

/// Runs the configured retrain grid through a caller-supplied [`Engine`]
/// (lets the CLI attach progress/cancellation hooks).
pub fn run_grid_with(engine: &Engine<'_>) -> RetrainGrid {
    let report = engine.retrain_report();
    RetrainGrid { records: report.records, failures: report.failures }
}

/// Runs the configured retrain grid with a default engine.
pub fn run_grid(config: &GridConfig) -> RetrainGrid {
    let ctx = GridContext::new(config.clone());
    let engine = Engine::new(&ctx);
    run_grid_with(&engine)
}

impl RetrainGrid {
    /// Baseline metrics for a `(dataset, model, seed)`.
    fn baseline(&self, dataset: DatasetKind, model: ModelKind, seed: u64) -> Option<MetricSet> {
        self.records
            .iter()
            .find(|r| {
                r.dataset == dataset && r.model == model && r.seed == seed && r.method.is_none()
            })
            .map(|r| r.metrics)
    }

    /// Renders the grid: per-cell RMSE and TFE against the raw-trained
    /// baseline, plus a partial-grid note when tasks were lost.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Dataset", "Model", "Seed", "Method", "EB", "RMSE", "TFE"]);
        for r in &self.records {
            let Some(method) = r.method else { continue };
            let tfe_cell = self
                .baseline(r.dataset, r.model, r.seed)
                .map(|b| f(tfe(b.rmse, r.metrics.rmse), 4))
                .unwrap_or_else(|| "-".to_string());
            t.row(vec![
                r.dataset.name().to_string(),
                r.model.name().to_string(),
                r.seed.to_string(),
                method.name().to_string(),
                f(r.epsilon, 2),
                f(r.metrics.rmse, 4),
                tfe_cell,
            ]);
        }
        let mut out = format!("Retrain grid (4.4.1 at grid scale)\n{}", t.render());
        if let Some(s) = failure_summary(&self.failures) {
            out.push_str(&format!("\nPartial grid: {s}\n"));
        }
        out
    }
}

/// §4.4.1 decomposition analysis: RMSE between the trend (and remainder)
/// components of the original and decompressed series, averaged across
/// methods. Returns `(trend_rmse, remainder_rmse)`.
pub fn decomposition_impact(
    config: &GridConfig,
    dataset: DatasetKind,
    epsilon: f64,
    kernel: usize,
) -> (f64, f64) {
    let data = config.dataset(dataset);
    let target = data.target();
    // Scale to the unit the paper reports (standardized series).
    let scaler = tsdata::scaler::StandardScaler::fit_single(target.values());
    let scaled = scaler.transform(0, target.values());
    let (trend_o, rem_o) = decompose(&scaled, kernel);
    let mut trend_rmses = Vec::new();
    let mut rem_rmses = Vec::new();
    for method in &config.methods {
        let Ok((d, _)) = method.compressor().transform(target, epsilon) else { continue };
        let d_scaled = scaler.transform(0, d.values());
        let (trend_d, rem_d) = decompose(&d_scaled, kernel);
        trend_rmses.push(rmse(&trend_o, &trend_d));
        rem_rmses.push(rmse(&rem_o, &rem_d));
    }
    (mean(&trend_rmses), mean(&rem_rmses))
}

/// Renders the decomposition analysis for the paper's two datasets.
pub fn render_decomposition(config: &GridConfig) -> String {
    let mut t = TextTable::new(&["Dataset", "EB", "trend RMSE", "remainder RMSE"]);
    for (dataset, eb) in [(DatasetKind::ETTm1, 0.2), (DatasetKind::ETTm2, 0.1)] {
        let (tr, rem) = decomposition_impact(config, dataset, eb, 25);
        t.row(vec![dataset.name().to_string(), f(eb, 1), f(tr, 3), f(rem, 3)]);
    }
    format!(
        "Decomposition impact (4.4.1): RMSE of trend/remainder, original vs decompressed\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GridConfig {
        let mut c = GridConfig::smoke();
        c.datasets = vec![DatasetKind::ETTm1];
        c.len = Some(1500);
        c
    }

    #[test]
    fn retrain_experiment_runs() {
        let c = cfg();
        let fig = run(&c, &[ModelKind::GBoost], &[0.1, 0.3]);
        // 1 dataset x 1 model x 3 methods x 2 eps
        assert_eq!(fig.points.len(), 6);
        assert!(fig.mean_tfe(DatasetKind::ETTm1, ModelKind::GBoost, 0.1).is_some());
        assert!(fig.render().contains("Figure 7"));
    }

    #[test]
    fn retrain_grid_cli_experiment_renders() {
        let mut c = cfg();
        c.error_bounds = vec![0.1];
        c.models = vec![ModelKind::GBoost];
        let grid = run_grid(&c);
        assert!(grid.failures.is_empty());
        assert_eq!(grid.records.len(), 4); // baseline + 3 methods x 1 eps
        let s = grid.render();
        assert!(s.contains("Retrain grid"));
        assert!(s.contains("TFE"));
        assert!(!s.contains("Partial grid"));
    }

    #[test]
    fn remainder_hit_harder_than_trend() {
        // §4.4.1: compression affects short-term fluctuations (remainder)
        // more than the overall trend.
        let c = cfg();
        let (trend, remainder) = decomposition_impact(&c, DatasetKind::ETTm1, 0.2, 25);
        assert!(trend >= 0.0 && remainder >= 0.0);
        assert!(remainder > trend, "remainder RMSE {remainder} should exceed trend RMSE {trend}");
        assert!(render_decomposition(&c).contains("remainder"));
    }
}
