//! Table 2 (baseline accuracy), Figure 4 (TFE vs TE with 95% CIs across
//! models), Figure 6 (average TFE per model), and Table 7 (best models by
//! NRMSE and by TFE) — the RQ2/RQ3 forecasting experiments.

use compression::Method;
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;
use tsdata::metrics::{tfe, MetricSet};

use super::fmt::{f, TextTable};
use crate::cache::GridContext;
use crate::engine::Engine;
use crate::grid::GridConfig;
use crate::results::{
    average_over_seeds, ci95_half_width, failure_summary, mean, CompressionRecord, ForecastRecord,
    TaskFailure,
};

/// Combined forecasting-grid output.
#[derive(Debug, Clone)]
pub struct ForecastExperiment {
    /// Grid configuration used (for dataset/method/model lists).
    pub config: GridConfig,
    /// Seed-averaged forecast records.
    pub forecast: Vec<ForecastRecord>,
    /// Compression measurements (for the TE axis of Figure 4).
    pub compression: Vec<CompressionRecord>,
    /// Tasks (from either grid) that failed or panicked; the renders
    /// append a partial-grid note when non-empty.
    pub failures: Vec<TaskFailure>,
}

/// Runs both grids through one [`Engine`] over a shared [`GridContext`]
/// (datasets are generated once, transforms memoized across tasks) and
/// averages forecast metrics over seeds. Failed tasks are collected into
/// [`ForecastExperiment::failures`] rather than aborting the run.
pub fn run(config: &GridConfig) -> ForecastExperiment {
    let _span = telemetry::span("experiment.forecasting", &[]);
    let ctx = GridContext::new(config.clone());
    let engine = Engine::new(&ctx);
    let forecast_report = engine.forecast_report();
    let compression_report = engine.compression_report();
    let mut failures = forecast_report.failures;
    failures.extend(compression_report.failures);
    ForecastExperiment {
        config: config.clone(),
        forecast: average_over_seeds(&forecast_report.records),
        compression: compression_report.records,
        failures,
    }
}

impl ForecastExperiment {
    /// A partial-grid note listing failed tasks, or the empty string when
    /// every task completed. Appended to the renders so a report built
    /// from a degraded grid says so.
    pub fn failure_note(&self) -> String {
        match failure_summary(&self.failures) {
            Some(s) => format!("\nPartial grid: {s}\n"),
            None => String::new(),
        }
    }

    /// Baseline metrics for a (dataset, model).
    pub fn baseline(&self, dataset: DatasetKind, model: ModelKind) -> Option<MetricSet> {
        self.forecast
            .iter()
            .find(|r| r.dataset == dataset && r.model == model && r.method.is_none())
            .map(|r| r.metrics)
    }

    /// TFE (RMSE-based, Eq. 2) for a transformed cell.
    pub fn tfe_of(
        &self,
        dataset: DatasetKind,
        model: ModelKind,
        method: Method,
        epsilon: f64,
    ) -> Option<f64> {
        let base = self.baseline(dataset, model)?;
        let rec = self.forecast.iter().find(|r| {
            r.dataset == dataset
                && r.model == model
                && r.method == Some(method)
                && (r.epsilon - epsilon).abs() < 1e-9
        })?;
        Some(tfe(base.rmse, rec.metrics.rmse))
    }

    /// TE (NRMSE) of a compression cell.
    pub fn te_of(&self, dataset: DatasetKind, method: Method, epsilon: f64) -> Option<f64> {
        self.compression
            .iter()
            .find(|r| {
                r.dataset == dataset && r.method == method && (r.epsilon - epsilon).abs() < 1e-9
            })
            .map(|r| r.te_nrmse)
    }

    /// CR of a compression cell.
    pub fn cr_of(&self, dataset: DatasetKind, method: Method, epsilon: f64) -> Option<f64> {
        self.compression
            .iter()
            .find(|r| {
                r.dataset == dataset && r.method == method && (r.epsilon - epsilon).abs() < 1e-9
            })
            .map(|r| r.cr)
    }

    /// Table 2: baseline accuracy per model per dataset.
    pub fn render_table2(&self) -> String {
        let mut t = TextTable::new(&[
            "Model", "Metric", "ETTm1", "ETTm2", "Solar", "Weather", "ElecDem", "Wind",
        ]);
        for &model in &self.config.models {
            for (name, pick) in [("R", 0usize), ("RSE", 1), ("RMSE", 2), ("NRMSE", 3)] {
                let mut cells = vec![model.name().to_string(), name.to_string()];
                for &d in &[
                    DatasetKind::ETTm1,
                    DatasetKind::ETTm2,
                    DatasetKind::Solar,
                    DatasetKind::Weather,
                    DatasetKind::ElecDem,
                    DatasetKind::Wind,
                ] {
                    cells.push(match self.baseline(d, model) {
                        Some(m) => {
                            let v = match pick {
                                0 => m.r,
                                1 => m.rse,
                                2 => m.rmse,
                                _ => m.nrmse,
                            };
                            f(v, 3)
                        }
                        None => "-".to_string(),
                    });
                }
                t.row(cells);
            }
        }
        format!("Table 2: baseline results (scaled metrics)\n{}{}", t.render(), self.failure_note())
    }

    /// Figure 4 data: per (dataset, method, ε) — TE, mean TFE across
    /// models, and the 95% CI half-width.
    pub fn fig4_points(&self) -> Vec<(DatasetKind, Method, f64, f64, f64, f64)> {
        let mut out = Vec::new();
        for &d in &self.config.datasets {
            for &m in &self.config.methods {
                for &e in &self.config.error_bounds {
                    let Some(te) = self.te_of(d, m, e) else { continue };
                    let tfes: Vec<f64> = self
                        .config
                        .models
                        .iter()
                        .filter_map(|&model| self.tfe_of(d, model, m, e))
                        .collect();
                    if tfes.is_empty() {
                        continue;
                    }
                    out.push((d, m, e, te, mean(&tfes), ci95_half_width(&tfes)));
                }
            }
        }
        out
    }

    /// Figure 4 rendering.
    pub fn render_fig4(&self) -> String {
        let mut t = TextTable::new(&["Dataset", "Method", "EB", "TE", "mean TFE", "95% CI"]);
        for (d, m, e, te, tfe, ci) in self.fig4_points() {
            t.row(vec![
                d.name().to_string(),
                m.name().to_string(),
                f(e, 2),
                f(te, 4),
                f(tfe, 4),
                format!("±{}", f(ci, 4)),
            ]);
        }
        format!(
            "Figure 4: TFE vs TE (mean ± 95% CI across models)\n{}{}",
            t.render(),
            self.failure_note()
        )
    }

    /// Figure 6 data: mean TFE per (dataset, model), averaged over methods
    /// and error bounds up to `cap` per dataset.
    pub fn fig6_means(&self, caps: &[(DatasetKind, f64)]) -> Vec<(DatasetKind, ModelKind, f64)> {
        let mut out = Vec::new();
        for &d in &self.config.datasets {
            let cap = caps.iter().find(|(k, _)| *k == d).map(|(_, c)| *c).unwrap_or(0.2);
            for &model in &self.config.models {
                let tfes: Vec<f64> = self
                    .config
                    .methods
                    .iter()
                    .flat_map(|&m| {
                        self.config
                            .error_bounds
                            .iter()
                            .filter(|&&e| e <= cap + 1e-9)
                            .filter_map(move |&e| self.tfe_of(d, model, m, e))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                if !tfes.is_empty() {
                    out.push((d, model, mean(&tfes)));
                }
            }
        }
        out
    }

    /// Figure 6 rendering.
    pub fn render_fig6(&self, caps: &[(DatasetKind, f64)]) -> String {
        let mut t = TextTable::new(&["Dataset", "Model", "mean TFE"]);
        for (d, m, v) in self.fig6_means(caps) {
            t.row(vec![d.name().to_string(), m.name().to_string(), f(v, 4)]);
        }
        format!("Figure 6: average TFE per forecasting model\n{}", t.render())
    }

    /// Table 7: best model per dataset by baseline NRMSE and by mean TFE.
    pub fn table7(&self, caps: &[(DatasetKind, f64)]) -> Vec<(DatasetKind, ModelKind, ModelKind)> {
        let fig6 = self.fig6_means(caps);
        self.config
            .datasets
            .iter()
            .filter_map(|&d| {
                let best_nrmse = self
                    .config
                    .models
                    .iter()
                    .filter_map(|&m| self.baseline(d, m).map(|b| (m, b.nrmse)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))?
                    .0;
                let best_tfe = fig6
                    .iter()
                    .filter(|(k, _, _)| *k == d)
                    .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))?
                    .1;
                Some((d, best_nrmse, best_tfe))
            })
            .collect()
    }

    /// Table 7 rendering.
    pub fn render_table7(&self, caps: &[(DatasetKind, f64)]) -> String {
        let mut t = TextTable::new(&["Dataset", "best by NRMSE", "best by TFE"]);
        for (d, by_nrmse, by_tfe) in self.table7(caps) {
            t.row(vec![
                d.name().to_string(),
                by_nrmse.name().to_string(),
                by_tfe.name().to_string(),
            ]);
        }
        format!("Table 7: best models based on NRMSE and TFE\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_experiment() -> ForecastExperiment {
        let mut cfg = GridConfig::smoke();
        cfg.error_bounds = vec![0.05, 0.4];
        cfg.models = vec![ModelKind::GBoost, ModelKind::Arima];
        run(&cfg)
    }

    #[test]
    fn end_to_end_tables_render() {
        let exp = small_experiment();
        let d = DatasetKind::ETTm1;
        assert!(exp.baseline(d, ModelKind::GBoost).is_some());
        assert!(exp.tfe_of(d, ModelKind::GBoost, Method::Pmc, 0.05).is_some());
        assert!(exp.te_of(d, Method::Pmc, 0.4).is_some());
        let caps = [(d, 0.4)];
        assert!(exp.render_table2().contains("GBoost"));
        assert!(exp.render_fig4().contains("TFE"));
        assert!(exp.render_fig6(&caps).contains("Arima"));
        assert!(exp.render_table7(&caps).contains("best by"));
        assert_eq!(exp.table7(&caps).len(), 1);
    }

    #[test]
    fn fig4_points_cover_grid() {
        let exp = small_experiment();
        let pts = exp.fig4_points();
        // 1 dataset x 3 methods x 2 eps
        assert_eq!(pts.len(), 6);
        for (_, _, _, te, tfe, _) in pts {
            assert!(te >= 0.0);
            assert!(tfe.is_finite());
        }
    }
}
