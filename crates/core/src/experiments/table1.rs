//! Table 1 — descriptive statistics of the six datasets (LEN, FREQ, MEAN,
//! MIN, MAX, Q1, Q3, rIQD), computed on the synthetic recreations and
//! printed next to the paper's reference values.

use tsdata::datasets::{generate_univariate, DatasetKind, GenOptions, ALL_DATASETS};
use tsdata::stats::{summarize, Summary};

use super::fmt::{f, TextTable};
use crate::grid::run_parallel;

/// One Table-1 row: measured statistics of the generated dataset plus the
/// paper's published values for comparison.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Statistics measured on the generated series.
    pub measured: Summary,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per dataset.
    pub rows: Vec<Table1Row>,
}

/// Computes Table 1. `len` overrides the series length (`None` = the
/// paper's full lengths).
pub fn run(len: Option<usize>, seed: u64) -> Table1 {
    let _span = telemetry::span("experiment.table1", &[]);
    // One generation+summary task per dataset, scheduled on the worker
    // pool (rows come back in dataset order regardless of threads).
    let rows = run_parallel(ALL_DATASETS.len(), ALL_DATASETS.len(), |i| {
        let dataset = ALL_DATASETS[i];
        let series = generate_univariate(dataset, GenOptions { len, channels: None, seed });
        Table1Row { dataset, measured: summarize(series.values()) }
    });
    Table1 { rows }
}

impl Table1 {
    /// Renders measured-vs-paper statistics.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "Dataset",
            "LEN",
            "FREQ",
            "MEAN",
            "MIN",
            "MAX",
            "Q1",
            "Q3",
            "rIQD",
            "| paper: MEAN",
            "Q1",
            "Q3",
            "rIQD",
        ]);
        for row in &self.rows {
            let p = row.dataset.paper_stats();
            let m = &row.measured;
            t.row(vec![
                p.name.to_string(),
                m.len.to_string(),
                p.freq.to_string(),
                f(m.mean, 2),
                f(m.min, 1),
                f(m.max, 1),
                f(m.q1, 1),
                f(m.q3, 1),
                format!("{}%", f(m.riqd, 0)),
                format!("| {}", f(p.mean, 2)),
                f(p.q1, 1),
                f(p.q3, 1),
                format!("{}%", f(p.riqd, 0)),
            ]);
        }
        format!("Table 1: dataset statistics (measured vs paper)\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_datasets_and_renders() {
        let t = run(Some(4000), 7);
        assert_eq!(t.rows.len(), 6);
        let s = t.render();
        for name in ["ETTm1", "ETTm2", "Solar", "Weather", "ElecDem", "Wind"] {
            assert!(s.contains(name), "missing {name}");
        }
    }

    #[test]
    fn riqd_ordering_reproduced() {
        // The qualitative Table-1 finding the analysis leans on: Weather's
        // tiny rIQD vs Solar's huge one.
        let t = run(Some(8000), 7);
        let get = |k: DatasetKind| {
            t.rows.iter().find(|r| r.dataset == k).expect("all datasets present").measured.riqd
        };
        assert!(get(DatasetKind::Solar) > 150.0);
        assert!(get(DatasetKind::Weather) < 20.0);
        assert!(get(DatasetKind::Solar) > get(DatasetKind::Weather));
    }
}
