//! Plain-text table rendering for the experiment reproductions.

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[c]));
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// Rounds to `d` decimals for display.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("alpha"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(-0.5, 3), "-0.500");
    }
}
