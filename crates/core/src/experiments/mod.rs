//! Reproductions of every table and figure in the paper's evaluation
//! (see DESIGN.md §3 for the experiment index).

pub mod characteristics_exp;
pub mod compression_exp;
pub mod elbows_exp;
pub mod fig1;
pub mod fmt;
pub mod forecasting_exp;
pub mod retrain_exp;
pub mod table1;
