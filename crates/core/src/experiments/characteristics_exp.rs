//! The characteristics analyses of §4.3.1 and §4.3.3:
//!
//! * **Figure 5** — a GBoost model is trained to predict TFE from the 42
//!   characteristic differences (decompressed − original), and TreeSHAP
//!   ranks the characteristics.
//! * **Table 4** — Spearman correlation of each characteristic difference
//!   to TFE.
//! * **Table 6** — mean (sd) relative difference (%) of the five key
//!   characteristics (MKLS, MLS, SACF1, MVS, URPP) over cells with
//!   TFE ≤ 0.1.

use analysis::correlation::spearman;
use analysis::features::{extract, FeatureOptions, FeatureVector, FEATURE_NAMES, NUM_FEATURES};
use analysis::shap::mean_abs_shap;
use compression::Method;
use forecast::gboost::{GbmConfig, GbmRegressor};
use tsdata::datasets::DatasetKind;

use super::fmt::{f, TextTable};
use super::forecasting_exp::ForecastExperiment;
use crate::cache::{GridContext, Subset};
use crate::engine::{Engine, GridTask, TaskCoord};
use crate::results::mean;
use crate::scenario::ScenarioError;

/// The five characteristics of Table 6.
pub const TABLE6_FEATURES: [&str; 5] =
    ["max_kl_shift", "max_level_shift", "seas_acf1", "max_var_shift", "unitroot_pp"];

/// One analysed cell.
#[derive(Debug, Clone)]
pub struct CharRow {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Method.
    pub method: Method,
    /// Error bound.
    pub epsilon: f64,
    /// Characteristic differences (decompressed − original).
    pub diffs: [f64; NUM_FEATURES],
    /// Relative differences in percent.
    pub rel_diffs: [f64; NUM_FEATURES],
    /// Mean TFE across models.
    pub tfe: f64,
}

/// The combined characteristics experiment.
#[derive(Debug, Clone)]
pub struct CharacteristicsExperiment {
    /// Per-cell rows.
    pub rows: Vec<CharRow>,
    /// Mean |SHAP| per characteristic (Figure 5 ranking input).
    pub shap_importance: Vec<(String, f64)>,
    /// Spearman correlation of each characteristic difference to TFE.
    pub correlations: Vec<(String, f64)>,
    /// The TFE-predictor's training R².
    pub r2: f64,
}

/// A per-(dataset, method, ε) cell scheduled on the task engine: the
/// decompressed series comes from the shared [`GridContext`] transform
/// cache and its characteristics are diffed against the pre-extracted
/// original feature vector.
struct CellTask<'a> {
    dataset: DatasetKind,
    method: Method,
    epsilon: f64,
    original: &'a FeatureVector,
    opts: FeatureOptions,
    tfe: f64,
}

impl GridTask for CellTask<'_> {
    type Output = CharRow;

    fn coord(&self) -> TaskCoord {
        TaskCoord {
            method: Some(self.method),
            epsilon: Some(self.epsilon),
            ..TaskCoord::dataset(self.dataset)
        }
    }

    fn run(&self, ctx: &GridContext) -> Result<CharRow, ScenarioError> {
        let t = ctx.transform(self.dataset, Subset::Full, self.method, self.epsilon)?;
        let transformed = extract(t.series.target().values(), self.opts);
        Ok(CharRow {
            dataset: self.dataset,
            method: self.method,
            epsilon: self.epsilon,
            diffs: transformed.diff(self.original),
            rel_diffs: transformed.relative_diff_pct(self.original),
            tfe: self.tfe,
        })
    }
}

/// Runs the analysis on an already-evaluated grid.
pub fn run(exp: &ForecastExperiment) -> CharacteristicsExperiment {
    let _span = telemetry::span("experiment.characteristics", &[]);
    let ctx = GridContext::new(exp.config.clone());

    // Original (uncompressed) feature vectors per dataset.
    let mut originals: Vec<(DatasetKind, FeatureVector, FeatureOptions)> = Vec::new();
    for &dataset in &exp.config.datasets {
        let Ok(data) = ctx.try_dataset(dataset) else { continue };
        let target = data.series.target();
        let period = dataset.samples_per_day() as usize;
        let opts = FeatureOptions {
            period: (period >= 2 && target.len() >= 2 * period).then_some(period),
            shift_window: 48.min(target.len() / 4).max(2),
            cap: Some(8_000),
        };
        originals.push((dataset, extract(target.values(), opts), opts));
    }

    // Enumerate the analysable cells — those with at least one TFE on the
    // evaluated grid — and schedule them on the engine; a cell whose
    // transform fails is logged and skipped rather than aborting.
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for (dataset, original, opts) in &originals {
        for &method in &exp.config.methods {
            for &epsilon in &exp.config.error_bounds {
                let tfes: Vec<f64> = exp
                    .config
                    .models
                    .iter()
                    .filter_map(|&m| exp.tfe_of(*dataset, m, method, epsilon))
                    .collect();
                if tfes.is_empty() {
                    continue;
                }
                tasks.push(CellTask {
                    dataset: *dataset,
                    method,
                    epsilon,
                    original,
                    opts: *opts,
                    tfe: mean(&tfes),
                });
            }
        }
    }
    let rows: Vec<CharRow> =
        Engine::new(&ctx).run_report(&tasks).into_records_logged("characteristics cells");

    // GBoost TFE predictor + TreeSHAP importance.
    let n = rows.len();
    let (shap_importance, r2) = if n >= 8 {
        let mut x = Vec::with_capacity(n * NUM_FEATURES);
        let mut y = Vec::with_capacity(n);
        for r in &rows {
            x.extend_from_slice(&r.diffs);
            y.push(r.tfe);
        }
        let model = GbmRegressor::fit(
            &x,
            &y,
            NUM_FEATURES,
            GbmConfig { n_estimators: 80, ..Default::default() },
        );
        let my = mean(&y);
        let mut sse = 0.0;
        let mut sst = 0.0;
        for (i, &target) in y.iter().enumerate() {
            let p = model.predict(&x[i * NUM_FEATURES..(i + 1) * NUM_FEATURES]);
            sse += (target - p) * (target - p);
            sst += (target - my) * (target - my);
        }
        let r2 = if sst < 1e-12 { 1.0 } else { (1.0 - sse / sst).max(0.0) };
        let importance = mean_abs_shap(&model, &x, n);
        let ranked: Vec<(String, f64)> =
            FEATURE_NAMES.iter().zip(importance).map(|(name, v)| (name.to_string(), v)).collect();
        (ranked, r2)
    } else {
        (FEATURE_NAMES.iter().map(|n| (n.to_string(), 0.0)).collect(), 0.0)
    };

    // Spearman correlations.
    let tfes: Vec<f64> = rows.iter().map(|r| r.tfe).collect();
    let correlations: Vec<(String, f64)> = (0..NUM_FEATURES)
        .map(|i| {
            let xs: Vec<f64> = rows.iter().map(|r| r.diffs[i]).collect();
            (FEATURE_NAMES[i].to_string(), if n >= 3 { spearman(&xs, &tfes) } else { 0.0 })
        })
        .collect();

    CharacteristicsExperiment { rows, shap_importance, correlations, r2 }
}

impl CharacteristicsExperiment {
    /// Figure 5: characteristics ranked by mean |SHAP|.
    pub fn top_shap(&self, k: usize) -> Vec<(String, f64)> {
        let mut v = self.shap_importance.clone();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        v.truncate(k);
        v
    }

    /// Table 4: characteristics ranked by |Spearman correlation| to TFE.
    pub fn top_correlations(&self, k: usize) -> Vec<(String, f64)> {
        let mut v = self.correlations.clone();
        v.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
        v.truncate(k);
        v
    }

    /// Table 6: mean (sd) of relative differences (%) of the five key
    /// characteristics over rows with TFE ≤ 0.1, per (dataset, method).
    #[allow(clippy::type_complexity)]
    pub fn table6(&self) -> Vec<(DatasetKind, Method, [(f64, f64); 5])> {
        let mut keys: Vec<(DatasetKind, Method)> = Vec::new();
        for r in &self.rows {
            if !keys.contains(&(r.dataset, r.method)) {
                keys.push((r.dataset, r.method));
            }
        }
        keys.into_iter()
            .filter_map(|(d, m)| {
                let group: Vec<&CharRow> = self
                    .rows
                    .iter()
                    .filter(|r| r.dataset == d && r.method == m && r.tfe <= 0.1)
                    .collect();
                if group.is_empty() {
                    return None;
                }
                let mut stats = [(0.0, 0.0); 5];
                for (slot, name) in TABLE6_FEATURES.iter().enumerate() {
                    let idx = FEATURE_NAMES
                        .iter()
                        .position(|n| n == name)
                        .expect("table-6 names are canonical");
                    // Clamp the zero-reference sentinel so means stay
                    // readable.
                    let vals: Vec<f64> = group.iter().map(|r| r.rel_diffs[idx].min(1e4)).collect();
                    let mu = mean(&vals);
                    let sd = (vals.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>()
                        / vals.len() as f64)
                        .sqrt();
                    stats[slot] = (mu, sd);
                }
                Some((d, m, stats))
            })
            .collect()
    }

    /// Figure 5 rendering.
    pub fn render_fig5(&self, k: usize) -> String {
        let mut t = TextTable::new(&["Rank", "Characteristic", "mean |SHAP|"]);
        for (i, (name, v)) in self.top_shap(k).into_iter().enumerate() {
            t.row(vec![(i + 1).to_string(), name, f(v, 5)]);
        }
        format!(
            "Figure 5: top characteristics by SHAP (GBoost TFE-predictor R2 = {})\n{}",
            f(self.r2, 3),
            t.render()
        )
    }

    /// Table 4 rendering.
    pub fn render_table4(&self, k: usize) -> String {
        let mut t = TextTable::new(&["Characteristic", "Spearman to TFE"]);
        for (name, v) in self.top_correlations(k) {
            t.row(vec![name, f(v, 2)]);
        }
        format!("Table 4: top characteristics by correlation to TFE\n{}", t.render())
    }

    /// Table 6 rendering.
    pub fn render_table6(&self) -> String {
        let mut t = TextTable::new(&["Dataset", "Method", "MKLS", "MLS", "SACF1", "MVS", "URPP"]);
        for (d, m, stats) in self.table6() {
            let mut cells = vec![d.name().to_string(), m.name().to_string()];
            for (mu, sd) in stats {
                cells.push(format!("{} ({})", f(mu, 1), f(sd, 1)));
            }
            t.row(cells);
        }
        format!(
            "Table 6: mean (sd) relative difference (%) of key characteristics, TFE <= 0.1\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use forecast::model::ModelKind;

    #[test]
    fn characteristics_pipeline_end_to_end() {
        let mut cfg = GridConfig::smoke();
        cfg.error_bounds = vec![0.01, 0.05, 0.1, 0.3, 0.6];
        cfg.models = vec![ModelKind::GBoost];
        let exp = super::super::forecasting_exp::run(&cfg);
        let chars = run(&exp);
        // 1 dataset x 3 methods x 5 eps = 15 rows
        assert_eq!(chars.rows.len(), 15);
        for r in &chars.rows {
            assert!(r.tfe.is_finite());
            assert!(r.diffs.iter().all(|d| d.is_finite()));
        }
        let top = chars.top_shap(10);
        assert_eq!(top.len(), 10);
        assert!(top[0].1 >= top[9].1);
        let corr = chars.top_correlations(10);
        assert!(corr[0].1.abs() <= 1.0);
        assert!(chars.render_fig5(5).contains("SHAP"));
        assert!(chars.render_table4(5).contains("Spearman"));
        let t6 = chars.render_table6();
        assert!(t6.contains("MKLS"));
    }
}
