//! Store-backed transforms: the grid's `T(subset | C, ε)` served from the
//! chunked store instead of in-memory `Vec`s (DESIGN.md §12).
//!
//! Each `(dataset, subset)` is ingested into the [`TsStore`] exactly once,
//! losslessly (Gorilla chunks), on first use. A transform then *streams*
//! the chunk-backed [`store::StoreSeries`] through the online PMC/Swing encoders
//! ([`compression::compress_source`]) — the sealed staging chunks are
//! decoded one at a time and re-encoded under `(method, ε)` without ever
//! materialising the channel (SZ, being block-based, is the documented
//! exception and materialises). Because the streaming encoders produce
//! the same frames as the batch codecs, a store-backed grid run emits
//! byte-identical CSVs to the legacy path — CI asserts exactly that.

use std::collections::HashSet;

use compression::codec::{CompressedSeries, PeblcCompressor};
use compression::Method;
use parking_lot::Mutex;
use store::{ChunkCodec, SeriesId, StoreConfig, TsStore};
use tsdata::datasets::DatasetKind;
use tsdata::series::{MultiSeries, SeriesSource};

use crate::cache::{FrameStats, Subset};
use crate::scenario::ScenarioError;

fn subset_index(subset: Subset) -> u64 {
    match subset {
        Subset::Full => 0,
        Subset::Train => 1,
        Subset::Val => 2,
        Subset::Test => 3,
    }
}

/// Deterministic id for one ingested channel:
/// `dataset << 16 | subset << 8 | channel`.
pub fn series_id(dataset: DatasetKind, subset: Subset, channel: usize) -> SeriesId {
    SeriesId((dataset as u64) << 16 | subset_index(subset) << 8 | channel as u64)
}

/// The grid's handle on the chunked store: ingest-once staging plus
/// streaming re-encoding transforms.
#[derive(Debug)]
pub struct StoreBackend {
    store: TsStore,
    ingested: Mutex<HashSet<(DatasetKind, u64)>>,
}

impl Default for StoreBackend {
    fn default() -> Self {
        StoreBackend::new(StoreConfig::default())
    }
}

impl StoreBackend {
    /// Creates a backend over an empty store with the given seal policy.
    pub fn new(config: StoreConfig) -> Self {
        StoreBackend { store: TsStore::new(config), ingested: Mutex::new(HashSet::new()) }
    }

    /// The underlying store (read-only access for diagnostics/benches).
    pub fn store(&self) -> &TsStore {
        &self.store
    }

    /// Stages every channel of `data` as lossless Gorilla chunks, exactly
    /// once per `(dataset, subset)`; later calls are no-ops. The lock
    /// covers the whole ingest so concurrent first requests cannot race a
    /// half-ingested subset.
    pub fn ensure_ingested(
        &self,
        dataset: DatasetKind,
        subset: Subset,
        data: &MultiSeries,
    ) -> Result<(), ScenarioError> {
        let mut done = self.ingested.lock();
        if !done.insert((dataset, subset_index(subset))) {
            return Ok(());
        }
        for (channel, series) in data.channels().iter().enumerate() {
            self.store
                .ingest(series_id(dataset, subset, channel), ChunkCodec::Gorilla, 0.0, series)
                .map_err(ScenarioError::from)?;
        }
        Ok(())
    }

    /// `T(subset | method, ε)` served from the store: each staged channel
    /// is streamed through the `(method, ε)` encoder and decompressed,
    /// yielding the same `(series, stats)` the legacy
    /// [`transform_with_stats`](crate::cache::transform_with_stats) path
    /// produces — bit for bit, since the streaming encoders match the
    /// batch frames.
    pub fn transform_with_stats(
        &self,
        dataset: DatasetKind,
        subset: Subset,
        data: &MultiSeries,
        method: Method,
        epsilon: f64,
    ) -> Result<(MultiSeries, FrameStats), ScenarioError> {
        self.ensure_ingested(dataset, subset, data)?;
        let compressor = method.compressor();
        let mut stats = FrameStats::default();
        let mut channels = Vec::with_capacity(data.num_channels());
        for channel in 0..data.num_channels() {
            let view = self
                .store
                .read(series_id(dataset, subset, channel))
                .map_err(ScenarioError::from)?;
            let frame = compression::compress_source(&view, method, epsilon)?;
            if channel == data.target_index() {
                stats =
                    FrameStats { size_bytes: frame.size_bytes(), num_segments: frame.num_segments };
            }
            mirror_codec_counters(compressor.as_ref(), view.len(), &frame);
            channels.push(compressor.decompress(&frame)?);
        }
        let out = MultiSeries::new(data.names().to_vec(), channels, data.target_index())?;
        Ok((out, stats))
    }
}

/// The legacy path's `PeblcCompressor::transform` records
/// `codec_bytes_{in,out}_total`; the store path compresses through
/// [`compression::compress_source`] directly, so it mirrors the same
/// counters to keep `--metrics` summaries comparable between modes.
fn mirror_codec_counters(
    compressor: &dyn PeblcCompressor,
    points: usize,
    frame: &CompressedSeries,
) {
    let label = [("method", compressor.name())];
    telemetry::counter_add("codec_bytes_in_total", &label, (points * 8) as u64);
    telemetry::counter_add("codec_bytes_out_total", &label, frame.size_bytes() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::transform_with_stats;
    use compression::ALL_METHODS;
    use tsdata::series::RegularTimeSeries;

    fn dataset(n: usize) -> MultiSeries {
        let a: Vec<f64> = (0..n)
            .map(|i| 12.0 + 4.0 * (i as f64 / 30.0 * std::f64::consts::TAU).sin() + (i % 5) as f64)
            .collect();
        let b: Vec<f64> = a.iter().map(|v| v * 0.25 - 2.0).collect();
        MultiSeries::new(
            vec!["a".into(), "b".into()],
            vec![
                RegularTimeSeries::new(0, 900, a).unwrap(),
                RegularTimeSeries::new(0, 900, b).unwrap(),
            ],
            1,
        )
        .unwrap()
    }

    #[test]
    fn store_transform_bit_identical_to_legacy() {
        let backend = StoreBackend::default();
        let data = dataset(700);
        for method in ALL_METHODS {
            for eps in [0.01, 0.1, 0.4] {
                let (legacy, legacy_stats) =
                    transform_with_stats(&data, method.compressor().as_ref(), eps).unwrap();
                let (stored, stored_stats) = backend
                    .transform_with_stats(DatasetKind::ETTm1, Subset::Test, &data, method, eps)
                    .unwrap();
                for (l, s) in legacy.channels().iter().zip(stored.channels()) {
                    let lb: Vec<u64> = l.values().iter().map(|v| v.to_bits()).collect();
                    let sb: Vec<u64> = s.values().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(lb, sb, "{} eps={eps}", method.name());
                }
                assert_eq!(legacy_stats, stored_stats, "{} eps={eps}", method.name());
            }
        }
        // One staging pass regardless of how many transforms ran.
        assert_eq!(backend.store().num_series(), 2);
    }

    #[test]
    fn ids_are_unique_across_the_grid() {
        let mut seen = HashSet::new();
        for &dataset in &tsdata::datasets::ALL_DATASETS {
            for subset in [Subset::Full, Subset::Train, Subset::Val, Subset::Test] {
                for channel in 0..32 {
                    assert!(seen.insert(series_id(dataset, subset, channel)));
                }
            }
        }
    }
}
