//! Versioned, checksummed model artifacts and the content-addressed
//! on-disk store behind `repro --artifacts` / `--resume`.
//!
//! A fitted model's [`StateDict`] (named f64 tensors, see
//! `forecast::Forecaster::save_state`) is serialized to a self-describing
//! binary format hand-rolled over the workspace's own substrates — the
//! [`compression::bitstream`] bit codec for the payload and
//! [`compression::deflate`] for optional body compression — because the
//! workspace is hermetic (no serde). Layout:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "TSMA"
//!      4     2  format version (little-endian u16, currently 1)
//!      6     2  flags  (bit 0: body is deflate-compressed)
//!      8     8  uncompressed payload length (LE u64)
//!     16     8  stored body length (LE u64)
//!     24     4  CRC32 (IEEE) of the *uncompressed* payload (LE u32)
//!     28     …  body
//! ```
//!
//! The payload is a MSB-first bit stream: entry count (u32), then per
//! entry a u16 name length + UTF-8 name bytes, u32 rows, u32 cols, and
//! `rows × cols` IEEE-754 bit patterns (u64 each). Every field is a
//! whole number of bytes, so the stream stays byte-aligned.
//!
//! [`ArtifactStore`] addresses artifacts by *content of the key*, not of
//! the artifact: an [`ArtifactKey`] captures everything that determines a
//! fitted model (dataset generation parameters, model kind, training
//! seed, profile, window geometry, and the lossy transform applied to the
//! training data, if any). The key's canonical string is FNV-1a-hashed
//! into a sharded path `root/<hh>/<hash16>.state`, so a second run with
//! the same configuration finds every model the first run fitted.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use compression::bitstream::{BitReader, BitWriter};
use compression::deflate;
use compression::reader::ByteReader;
use neural::state::StateDict;
use neural::tensor::Tensor;

/// File magic: **T**ime **S**eries **M**odel **A**rtifact.
pub const MAGIC: [u8; 4] = *b"TSMA";

/// Current artifact format version. Readers reject anything else.
pub const FORMAT_VERSION: u16 = 1;

/// Header flag bit 0: the body is deflate-compressed.
const FLAG_DEFLATE: u16 = 1;

/// Fixed header size in bytes (see the module docs for the layout).
const HEADER_LEN: usize = 28;

/// Errors from encoding, decoding, or storing artifacts.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem operation failed.
    Io(std::io::Error),
    /// The bytes are not a well-formed artifact (bad magic, truncation,
    /// malformed payload, unknown flags, …).
    Format(String),
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// The version this reader supports.
        supported: u16,
    },
    /// The payload does not match its stored checksum (bit rot or a
    /// truncated/overwritten file).
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        stored: u32,
        /// CRC32 of the payload actually read.
        computed: u32,
    },
    /// The state dictionary itself cannot be represented (oversized name
    /// or entry count).
    State(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io: {e}"),
            ArtifactError::Format(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "artifact format version {found} (this build reads {supported})")
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: header {stored:#010x}, payload {computed:#010x}"
            ),
            ArtifactError::State(msg) => write!(f, "unencodable state: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

// The CRC implementation moved to `compression::crc` so the store's chunk
// headers share it; re-exported here to keep the artifact API stable.
pub use compression::crc::crc32;

fn encode_payload(state: &StateDict) -> Result<Vec<u8>, ArtifactError> {
    if state.len() > u32::MAX as usize {
        return Err(ArtifactError::State(format!("{} entries exceed u32", state.len())));
    }
    // Everything written below is byte-aligned, so the exact payload size
    // is known up front: 32-bit count, then per entry a 16-bit name length,
    // the name bytes, two 32-bit dims, and 64 bits per tensor element.
    let payload_bits: usize = 32
        + state
            .entries()
            .map(|(name, tensor)| 16 + name.len() * 8 + 64 + tensor.data().len() * 64)
            .sum::<usize>();
    let mut w = BitWriter::with_capacity(payload_bits);
    w.write_bits(state.len() as u64, 32);
    for (name, tensor) in state.entries() {
        let bytes = name.as_bytes();
        if bytes.len() > u16::MAX as usize {
            return Err(ArtifactError::State(format!("name of {} bytes exceeds u16", bytes.len())));
        }
        w.write_bits(bytes.len() as u64, 16);
        for &b in bytes {
            w.write_bits(b as u64, 8);
        }
        let (rows, cols) = tensor.shape();
        if rows > u32::MAX as usize || cols > u32::MAX as usize {
            return Err(ArtifactError::State(format!("tensor {name} shape exceeds u32")));
        }
        w.write_bits(rows as u64, 32);
        w.write_bits(cols as u64, 32);
        for &v in tensor.data() {
            w.write_bits(v.to_bits(), 64);
        }
    }
    Ok(w.into_bytes())
}

fn truncated<T>(what: &str) -> Result<T, ArtifactError> {
    Err(ArtifactError::Format(format!("payload truncated reading {what}")))
}

fn decode_payload(payload: &[u8]) -> Result<StateDict, ArtifactError> {
    let mut r = BitReader::new(payload);
    let Ok(n) = r.read_bits(32) else { return truncated("entry count") };
    let mut dict = StateDict::new();
    for i in 0..n {
        let Ok(name_len) = r.read_bits(16) else { return truncated("name length") };
        // Each name byte costs 8 payload bits; reject a hostile length
        // before reserving for bytes the stream cannot hold.
        if name_len as usize > r.remaining() / 8 {
            return truncated("name bytes");
        }
        let mut bytes = Vec::with_capacity(name_len as usize);
        for _ in 0..name_len {
            let Ok(b) = r.read_bits(8) else { return truncated("name bytes") };
            bytes.push(b as u8);
        }
        let name = String::from_utf8(bytes)
            .map_err(|_| ArtifactError::Format(format!("entry {i} name is not UTF-8")))?;
        if dict.contains(&name) {
            return Err(ArtifactError::Format(format!("duplicate entry name {name:?}")));
        }
        let (Ok(rows), Ok(cols)) = (r.read_bits(32), r.read_bits(32)) else {
            return truncated("tensor shape");
        };
        let (rows, cols) = (rows as usize, cols as usize);
        let scalars = rows
            .checked_mul(cols)
            .ok_or_else(|| ArtifactError::Format(format!("tensor {name} shape overflows")))?;
        // A scalar needs 64 payload bits, so an honest shape can never
        // exceed the remaining stream — reject before allocating.
        if scalars > r.remaining() / 64 {
            return Err(ArtifactError::Format(format!(
                "tensor {name} claims {scalars} scalars but only {} bits remain",
                r.remaining()
            )));
        }
        let mut data = Vec::with_capacity(scalars);
        for _ in 0..scalars {
            let Ok(bits) = r.read_bits(64) else { return truncated("tensor data") };
            data.push(f64::from_bits(bits));
        }
        dict.insert(&name, Tensor::new(rows, cols, data));
    }
    Ok(dict)
}

/// Serializes a state dictionary to the versioned artifact format. The
/// body is deflate-compressed when that actually shrinks it.
pub fn encode_state(state: &StateDict) -> Result<Vec<u8>, ArtifactError> {
    let payload = encode_payload(state)?;
    let crc = crc32(&payload);
    let deflated = deflate::compress(&payload);
    let (flags, body) =
        if deflated.len() < payload.len() { (FLAG_DEFLATE, &deflated) } else { (0, &payload) };
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(body);
    Ok(out)
}

/// Deserializes an artifact produced by [`encode_state`], validating
/// magic, version, flags, lengths, and the payload checksum.
pub fn decode_state(data: &[u8]) -> Result<StateDict, ArtifactError> {
    let mut r = ByteReader::new(data);
    let truncated_header = |_| {
        ArtifactError::Format(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            data.len()
        ))
    };
    let magic = r.read_bytes(4).map_err(truncated_header)?;
    if magic != MAGIC {
        return Err(ArtifactError::Format("bad magic (not a model artifact)".into()));
    }
    let version = r.read_u16_le().map_err(truncated_header)?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let flags = r.read_u16_le().map_err(truncated_header)?;
    if flags & !FLAG_DEFLATE != 0 {
        return Err(ArtifactError::Format(format!("unknown flag bits {flags:#06x}")));
    }
    let payload_len = r.read_u64_le().map_err(truncated_header)? as usize;
    let body_len = r.read_u64_le().map_err(truncated_header)? as usize;
    let stored_crc = r.read_u32_le().map_err(truncated_header)?;
    let body = r.rest();
    if body.len() != body_len {
        return Err(ArtifactError::Format(format!(
            "header says {body_len} body bytes, file has {}",
            body.len()
        )));
    }
    let payload = if flags & FLAG_DEFLATE != 0 {
        deflate::decompress(body).map_err(|e| ArtifactError::Format(format!("deflate: {e}")))?
    } else {
        body.to_vec()
    };
    if payload.len() != payload_len {
        return Err(ArtifactError::Format(format!(
            "header says {payload_len} payload bytes, decompressed to {}",
            payload.len()
        )));
    }
    let computed = crc32(&payload);
    if computed != stored_crc {
        return Err(ArtifactError::ChecksumMismatch { stored: stored_crc, computed });
    }
    decode_payload(&payload)
}

/// Everything that determines one fitted model, in key form. Two runs
/// with identical keys produce bit-identical fits (all fitting in this
/// workspace is seeded and deterministic), so the store can hand back the
/// first run's artifact to the second.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Training seed.
    pub seed: u64,
    /// Model size profile name.
    pub profile: String,
    /// Lossy method the *training* data went through (`None` = raw, the
    /// Algorithm-1 scenario; `Some` = the §4.4.1 retrain scenario).
    pub method: Option<String>,
    /// Error bound of the training transform, as its exact bit pattern.
    pub eps_bits: Option<u64>,
    /// Input window length.
    pub input_len: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Dataset length override.
    pub len: Option<usize>,
    /// Dataset channel override.
    pub channels: Option<usize>,
    /// Dataset generation seed.
    pub data_seed: u64,
}

impl ArtifactKey {
    /// The canonical string the on-disk address is derived from. Every
    /// field is spelled out, so any configuration difference changes the
    /// address and a stale artifact can never be mistaken for a match.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "dataset={};model={};seed={};profile={};k={};h={};dseed={}",
            self.dataset,
            self.model,
            self.seed,
            self.profile,
            self.input_len,
            self.horizon,
            self.data_seed
        );
        match &self.method {
            Some(m) => s.push_str(&format!(";method={m}")),
            None => s.push_str(";method=raw"),
        }
        match self.eps_bits {
            Some(bits) => s.push_str(&format!(";eps={bits:016x}")),
            None => s.push_str(";eps=none"),
        }
        match self.len {
            Some(n) => s.push_str(&format!(";len={n}")),
            None => s.push_str(";len=paper"),
        }
        match self.channels {
            Some(c) => s.push_str(&format!(";ch={c}")),
            None => s.push_str(";ch=default"),
        }
        s
    }

    fn hash64(&self) -> u64 {
        // FNV-1a over the canonical string.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in self.canonical().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Parses a [`ArtifactKey::canonical`] string back into a key — the
    /// inverse the manifest enumeration ([`ArtifactStore::list_keys`])
    /// uses to rediscover what a store holds without recomputing keys
    /// from experiment configs. Returns `None` for anything that is not
    /// a complete canonical string.
    pub fn parse_canonical(s: &str) -> Option<ArtifactKey> {
        let mut dataset = None;
        let mut model = None;
        let mut seed = None;
        let mut profile = None;
        let mut input_len = None;
        let mut horizon = None;
        let mut data_seed = None;
        let mut method = None;
        let mut eps_bits = None;
        let mut len = None;
        let mut channels = None;
        for field in s.split(';') {
            let (k, v) = field.split_once('=')?;
            match k {
                "dataset" => dataset = Some(v.to_string()),
                "model" => model = Some(v.to_string()),
                "seed" => seed = Some(v.parse().ok()?),
                "profile" => profile = Some(v.to_string()),
                "k" => input_len = Some(v.parse().ok()?),
                "h" => horizon = Some(v.parse().ok()?),
                "dseed" => data_seed = Some(v.parse().ok()?),
                "method" => method = Some(if v == "raw" { None } else { Some(v.to_string()) }),
                "eps" => {
                    eps_bits = Some(if v == "none" {
                        None
                    } else {
                        Some(u64::from_str_radix(v, 16).ok()?)
                    })
                }
                "len" => len = Some(if v == "paper" { None } else { Some(v.parse().ok()?) }),
                "ch" => channels = Some(if v == "default" { None } else { Some(v.parse().ok()?) }),
                _ => return None,
            }
        }
        Some(ArtifactKey {
            dataset: dataset?,
            model: model?,
            seed: seed?,
            profile: profile?,
            method: method?,
            eps_bits: eps_bits?,
            input_len: input_len?,
            horizon: horizon?,
            len: len?,
            channels: channels?,
            data_seed: data_seed?,
        })
    }
}

/// A content-addressed artifact store rooted at one directory. Addresses
/// are sharded by the first hash byte (`root/<hh>/<hash16>.state`) to
/// keep directories small on paper-scale grids.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    saves: AtomicUsize,
    loads: AtomicUsize,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ArtifactError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(ArtifactStore { root, saves: AtomicUsize::new(0), loads: AtomicUsize::new(0) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path an artifact for `key` lives at.
    pub fn path_for(&self, key: &ArtifactKey) -> PathBuf {
        let hash = key.hash64();
        self.root.join(format!("{:02x}", hash >> 56)).join(format!("{hash:016x}.state"))
    }

    /// Persists a state dictionary under `key`, atomically: the artifact
    /// is written to a temp file and renamed into place, so a killed run
    /// never leaves a half-written artifact at the final address.
    pub fn save(&self, key: &ArtifactKey, state: &StateDict) -> Result<(), ArtifactError> {
        let start = std::time::Instant::now();
        let result = self.save_inner(key, state);
        let outcome = if result.is_ok() { "ok" } else { "error" };
        telemetry::counter_add("artifact_saves_total", &[("result", outcome)], 1);
        telemetry::observe("artifact_save_seconds", &[], telemetry::secs(start.elapsed()));
        result
    }

    fn save_inner(&self, key: &ArtifactKey, state: &StateDict) -> Result<(), ArtifactError> {
        let path = self.path_for(key);
        let dir = path.parent().expect("artifact paths are always nested under the root");
        std::fs::create_dir_all(dir)?;
        let bytes = encode_state(state)?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        // Manifest sidecar: the canonical key next to the content-addressed
        // artifact, so `list_keys` can enumerate a store without the
        // experiment configs that produced it. Written after the artifact
        // (same atomic tmp+rename), so a sidecar never points at a
        // half-written state file.
        let keyfile = path.with_extension("key");
        let keytmp = path.with_extension("key.tmp");
        std::fs::write(&keytmp, key.canonical())?;
        std::fs::rename(&keytmp, &keyfile)?;
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Loads the artifact stored under `key`, or `Ok(None)` when no run
    /// has saved one yet. Decode failures (corruption, version skew)
    /// surface as errors so callers can decide to refit.
    pub fn load(&self, key: &ArtifactKey) -> Result<Option<StateDict>, ArtifactError> {
        let start = std::time::Instant::now();
        let result = self.load_inner(key);
        let outcome = match &result {
            Ok(Some(_)) => "hit",
            Ok(None) => "miss",
            Err(_) => "error",
        };
        telemetry::counter_add("artifact_loads_total", &[("result", outcome)], 1);
        telemetry::observe("artifact_load_seconds", &[], telemetry::secs(start.elapsed()));
        result
    }

    fn load_inner(&self, key: &ArtifactKey) -> Result<Option<StateDict>, ArtifactError> {
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let dict = decode_state(&bytes)?;
        self.loads.fetch_add(1, Ordering::Relaxed);
        Ok(Some(dict))
    }

    /// Enumerates every artifact key recorded in the store's manifest
    /// sidecars, in canonical-string order (deterministic across runs and
    /// filesystems). This is how the serving registry discovers a fitted
    /// fleet: before this API, keys had to be recomputed from the exact
    /// experiment configuration that produced the store.
    ///
    /// Sidecars that fail to parse (foreign files, partial writes from a
    /// killed pre-manifest run) are skipped with a warning rather than
    /// failing the enumeration; artifacts written before the manifest
    /// existed have no sidecar and are simply not discoverable this way.
    pub fn list_keys(&self) -> Result<Vec<ArtifactKey>, ArtifactError> {
        let mut keys = Vec::new();
        for shard in std::fs::read_dir(&self.root)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard)? {
                let path = entry?.path();
                if path.extension().and_then(|e| e.to_str()) != Some("key") {
                    continue;
                }
                let canonical = std::fs::read_to_string(&path)?;
                match ArtifactKey::parse_canonical(canonical.trim()) {
                    // Only list keys whose artifact actually exists: a
                    // sidecar can outlive its state file if someone prunes
                    // artifacts by hand.
                    Some(key) if self.path_for(&key).is_file() => keys.push(key),
                    Some(_) | None => {
                        eprintln!("[artifacts] skipping stale manifest entry {}", path.display())
                    }
                }
            }
        }
        keys.sort_by_key(|k| k.canonical());
        Ok(keys)
    }

    /// Number of artifacts saved through this handle.
    pub fn saves(&self) -> usize {
        self.saves.load(Ordering::Relaxed)
    }

    /// Number of artifacts successfully loaded through this handle.
    pub fn loads(&self) -> usize {
        self.loads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dict() -> StateDict {
        let mut d = StateDict::new();
        d.insert(
            "layer.w",
            Tensor::new(2, 3, vec![1.5, -2.25, 0.0, f64::MIN_POSITIVE, 1e300, -0.5]),
        );
        d.insert("layer.b", Tensor::row(&[0.125, 7.0, -9.75]));
        d.insert("meta", Tensor::new(1, 1, vec![42.0]));
        d
    }

    fn key(seed: u64) -> ArtifactKey {
        ArtifactKey {
            dataset: "ETTm1".into(),
            model: "GBoost".into(),
            seed,
            profile: "Fast".into(),
            method: None,
            eps_bits: None,
            input_len: 48,
            horizon: 12,
            len: Some(1600),
            channels: Some(1),
            data_seed: 0x5EED,
        }
    }

    fn temp_store() -> ArtifactStore {
        use std::sync::atomic::AtomicUsize;
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "artifact-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        ArtifactStore::open(dir).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_identical() {
        let dict = sample_dict();
        let bytes = encode_state(&dict).unwrap();
        let back = decode_state(&bytes).unwrap();
        assert_eq!(back.len(), dict.len());
        for ((n1, t1), (n2, t2)) in dict.entries().zip(back.entries()) {
            assert_eq!(n1, n2);
            assert_eq!(t1.shape(), t2.shape());
            let bits1: Vec<u64> = t1.data().iter().map(|v| v.to_bits()).collect();
            let bits2: Vec<u64> = t2.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits1, bits2, "{n1} data must round-trip bit-exactly");
        }
    }

    #[test]
    fn special_values_roundtrip() {
        let mut d = StateDict::new();
        d.insert("specials", Tensor::row(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0]));
        let back = decode_state(&encode_state(&d).unwrap()).unwrap();
        let bits: Vec<u64> =
            back.get("specials").unwrap().data().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn repetitive_payload_takes_deflate_path() {
        let mut d = StateDict::new();
        d.insert("zeros", Tensor::zeros(40, 40));
        let bytes = encode_state(&d).unwrap();
        let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
        assert_eq!(flags & FLAG_DEFLATE, FLAG_DEFLATE, "flags: {flags:#06x}");
        assert!(bytes.len() < 40 * 40 * 8, "deflate must shrink a zero tensor");
        let back = decode_state(&bytes).unwrap();
        assert_eq!(back.get("zeros").unwrap(), &Tensor::zeros(40, 40));
    }

    #[test]
    fn corrupt_body_is_rejected_by_checksum() {
        let bytes = encode_state(&sample_dict()).unwrap();
        // Flip one payload bit. On the deflate path the decompressor may
        // reject the stream first; either way the corruption must not
        // decode into a dict.
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 0x40;
        match decode_state(&evil) {
            Err(ArtifactError::ChecksumMismatch { .. }) | Err(ArtifactError::Format(_)) => {}
            other => panic!("corrupt artifact decoded: {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode_state(&sample_dict()).unwrap();
        bytes[4] = 0x63;
        bytes[5] = 0x00;
        match decode_state(&bytes) {
            Err(ArtifactError::UnsupportedVersion { found: 0x63, supported: FORMAT_VERSION }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let bytes = encode_state(&sample_dict()).unwrap();
        let mut evil = bytes.clone();
        evil[0] = b'X';
        assert!(matches!(decode_state(&evil), Err(ArtifactError::Format(_))));
        assert!(matches!(decode_state(&bytes[..10]), Err(ArtifactError::Format(_))));
        assert!(matches!(decode_state(&bytes[..bytes.len() - 3]), Err(ArtifactError::Format(_))));
    }

    #[test]
    fn store_roundtrips_and_misses_cleanly() {
        let store = temp_store();
        let k = key(40);
        assert!(store.load(&k).unwrap().is_none(), "empty store must miss");
        let dict = sample_dict();
        store.save(&k, &dict).unwrap();
        let back = store.load(&k).unwrap().expect("saved artifact must load");
        assert!(back.entries().eq(dict.entries()), "loaded dict must match saved dict");
        assert_eq!(store.saves(), 1);
        assert_eq!(store.loads(), 1);
        // A different key misses.
        assert!(store.load(&key(41)).unwrap().is_none());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn store_surfaces_corruption_as_error() {
        let store = temp_store();
        let k = key(40);
        store.save(&k, &sample_dict()).unwrap();
        let path = store.path_for(&k);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(&k).is_err(), "corrupt file must not load silently");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn canonical_string_parses_back_to_the_same_key() {
        let variants = vec![
            key(40),
            ArtifactKey { method: Some("PMC".into()), eps_bits: Some(0.1f64.to_bits()), ..key(41) },
            ArtifactKey { len: None, channels: None, ..key(42) },
            ArtifactKey { model: "Transformer".into(), profile: "Paper".into(), ..key(43) },
        ];
        for k in variants {
            let parsed = ArtifactKey::parse_canonical(&k.canonical()).expect("canonical parses");
            assert_eq!(parsed, k, "roundtrip for {}", k.canonical());
        }
    }

    #[test]
    fn malformed_canonical_strings_are_rejected() {
        for bad in [
            "",
            "dataset=ETTm1",
            "nonsense",
            "dataset=ETTm1;model=GBoost;seed=x;profile=Fast;k=48;h=12;dseed=1;method=raw;eps=none;len=paper;ch=default",
            "dataset=ETTm1;model=GBoost;seed=1;profile=Fast;k=48;h=12;dseed=1;method=raw;eps=zz;len=paper;ch=default",
            "dataset=ETTm1;model=GBoost;seed=1;profile=Fast;k=48;h=12;dseed=1;method=raw;eps=none;len=paper;ch=default;rogue=1",
        ] {
            assert!(ArtifactKey::parse_canonical(bad).is_none(), "parsed {bad:?}");
        }
    }

    #[test]
    fn list_keys_enumerates_a_populated_store() {
        let store = temp_store();
        assert!(store.list_keys().unwrap().is_empty(), "fresh store lists nothing");
        let mut saved: Vec<ArtifactKey> = vec![
            key(40),
            key(41),
            ArtifactKey { model: "DLinear".into(), ..key(40) },
            ArtifactKey {
                method: Some("SWING".into()),
                eps_bits: Some(0.05f64.to_bits()),
                ..key(40)
            },
        ];
        for k in &saved {
            store.save(k, &sample_dict()).unwrap();
        }
        // Re-saving the same key must not duplicate the listing.
        store.save(&saved[0], &sample_dict()).unwrap();
        let mut listed = store.list_keys().unwrap();
        saved.sort_by_key(|k| k.canonical());
        listed.sort_by_key(|k| k.canonical());
        assert_eq!(listed, saved);
        // Every listed key loads.
        for k in &listed {
            assert!(store.load(k).unwrap().is_some(), "{} must load", k.canonical());
        }
        // A hostile sidecar is skipped, not fatal; a sidecar whose state
        // file was pruned disappears from the listing.
        let shard = store.path_for(&saved[0]).parent().unwrap().to_path_buf();
        std::fs::write(shard.join("garbage.key"), "not a canonical string").unwrap();
        std::fs::remove_file(store.path_for(&saved[0])).unwrap();
        let listed = store.list_keys().unwrap();
        assert_eq!(listed.len(), saved.len() - 1);
        assert!(!listed.contains(&saved[0]));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn canonical_keys_distinguish_every_field() {
        let base = key(40);
        let mut variants = vec![base.clone()];
        variants.push(ArtifactKey { seed: 41, ..base.clone() });
        variants.push(ArtifactKey { model: "DLinear".into(), ..base.clone() });
        variants.push(ArtifactKey { method: Some("PMC".into()), ..base.clone() });
        variants.push(ArtifactKey {
            method: Some("PMC".into()),
            eps_bits: Some(0.1f64.to_bits()),
            ..base.clone()
        });
        variants.push(ArtifactKey { len: None, ..base.clone() });
        variants.push(ArtifactKey { data_seed: 7, ..base.clone() });
        let canon: Vec<String> = variants.iter().map(|k| k.canonical()).collect();
        for i in 0..canon.len() {
            for j in i + 1..canon.len() {
                assert_ne!(canon[i], canon[j], "keys {i} and {j} must differ");
            }
        }
    }
}
